"""Smoke tests: every example script runs end-to-end at tiny scale.

Examples are a deliverable, not decoration — each must execute cleanly
from a fresh interpreter with a small population argument.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "800")
        assert "degree distribution" in out
        assert "vertices" in out

    def test_epidemic_trace(self):
        out = run_example("epidemic_trace.py", "900")
        assert "attack rate" in out
        # either a full trace or the graceful no-transmissions path
        assert "patient zero" in out or "no transmissions" in out

    def test_distributed_run(self):
        out = run_example("distributed_run.py", "800", "4")
        assert "distributed run" in out
        assert "est. cross-rank moves" in out

    def test_ego_visualization(self, tmp_path):
        out = run_example("ego_visualization.py", "800", str(tmp_path))
        assert "open in Gephi" in out
        assert (tmp_path / "fig1_dense.gexf").exists()

    def test_intervention_study(self):
        out = run_example("intervention_study.py", "800")
        assert "close schools" in out
        assert "attack -" in out

    def test_year_run_short(self):
        # year_run at 500 persons is a few seconds of simulation
        out = run_example("year_run.py", "500")
        assert "annual network" in out
        assert "stable core" in out

    def test_scale_study(self):
        # needs >= 3 sweep points for the exponent fit: 2k, 4k, 8k
        out = run_example("scale_study.py", "8000")
        assert "empirical growth exponents" in out
