"""Tests for the distributed SEIR epidemic."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.distrib import (
    DistributedEpidemicSimulation,
    spatial_partition,
)
from repro.errors import SimulationError
from repro.sim import DiseaseState


@pytest.fixture(scope="module")
def pop():
    return repro.generate_population(repro.ScaleConfig(n_persons=600, seed=21))


def epi_config(pop, n_ranks, beta=0.02, hours=24 * 10, seeds=4):
    return repro.SimulationConfig(
        scale=pop.scale,
        duration_hours=hours,
        n_ranks=n_ranks,
        disease=repro.DiseaseConfig(
            transmissibility=beta, initial_infected=seeds
        ),
    )


@pytest.fixture(scope="module")
def run4(pop):
    part = spatial_partition(
        pop.places.coords(), pop.places.capacity.astype(float), 4
    )
    return DistributedEpidemicSimulation(pop, epi_config(pop, 4), part).run()


class TestConservation:
    def test_population_conserved_every_hour(self, pop, run4):
        assert (run4.seir_per_hour.sum(axis=1) == pop.n_persons).all()

    def test_susceptible_monotone_decreasing(self, run4):
        sus = run4.seir_per_hour[:, int(DiseaseState.SUSCEPTIBLE)]
        assert (np.diff(sus) <= 0).all()

    def test_recovered_monotone_increasing(self, run4):
        rec = run4.seir_per_hour[:, int(DiseaseState.RECOVERED)]
        assert (np.diff(rec) >= 0).all()

    def test_final_state_consistent_with_curve(self, run4):
        final_counts = np.bincount(run4.final_state, minlength=4)
        assert (final_counts == run4.seir_per_hour[-1]).all()


class TestEpidemiology:
    def test_outbreak_spreads(self, run4):
        assert run4.attack_rate > 0.05
        assert len(run4.transmissions) > 10

    def test_patient_zeros_marked(self, run4):
        assert len(run4.patient_zeros) == 4
        assert (run4.infected_at[run4.patient_zeros] == 0).all()

    def test_infected_at_matches_transmissions(self, run4):
        for t in run4.transmissions[:50]:
            assert run4.infected_at[t.infected] == t.hour
            assert t.infected != t.infector

    def test_transmissions_sorted_by_hour(self, run4):
        hours = [t.hour for t in run4.transmissions]
        assert hours == sorted(hours)


class TestRankInvariance:
    def test_conservation_holds_across_rank_counts(self, pop):
        """Different rank counts give different trajectories (per-rank RNG)
        but identical structural invariants."""
        rates = {}
        for n_ranks in (1, 3):
            part = spatial_partition(
                pop.places.coords(), pop.places.capacity.astype(float), n_ranks
            )
            res = DistributedEpidemicSimulation(
                pop, epi_config(pop, n_ranks), part
            ).run()
            assert (res.seir_per_hour.sum(axis=1) == pop.n_persons).all()
            rates[n_ranks] = res.attack_rate
        # both spread; magnitudes in the same ballpark (same β, same world)
        assert all(r > 0.02 for r in rates.values())

    def test_zero_beta_never_spreads(self, pop):
        part = spatial_partition(
            pop.places.coords(), pop.places.capacity.astype(float), 2
        )
        res = DistributedEpidemicSimulation(
            pop, epi_config(pop, 2, beta=0.0, hours=48), part
        ).run()
        assert res.attack_rate == pytest.approx(4 / pop.n_persons)
        assert len(res.transmissions) == 0


class TestValidation:
    def test_requires_disease_config(self, pop):
        part = spatial_partition(
            pop.places.coords(), pop.places.capacity.astype(float), 2
        )
        cfg = repro.SimulationConfig(scale=pop.scale, n_ranks=2)
        with pytest.raises(SimulationError):
            DistributedEpidemicSimulation(pop, cfg, part)

    def test_partition_mismatch(self, pop):
        bad = repro.PlacePartition(np.zeros(3, dtype=np.int32), 1)
        with pytest.raises(SimulationError):
            DistributedEpidemicSimulation(pop, epi_config(pop, 1), bad)
