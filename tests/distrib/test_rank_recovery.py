"""Rank failure detection (heartbeat) and supervised recovery."""

from __future__ import annotations

import hashlib
import time

import numpy as np
import pytest

from repro.config import ScaleConfig, SimulationConfig
from repro.distrib.dmodel import DistributedSimulation
from repro.distrib.partition import PlacePartition
from repro.distrib.simcluster import SimCluster
from repro.errors import CommError, RankDeadError, RankFailureError
from repro.synthpop import generate_population

SCALE = ScaleConfig(n_persons=350, seed=19)
HOURS = 48
N_RANKS = 3


@pytest.fixture(scope="module")
def pop():
    return generate_population(SCALE)


@pytest.fixture(scope="module")
def partition(pop):
    assignment = (np.arange(pop.n_places) % N_RANKS).astype(np.int32)
    return PlacePartition(assignment, N_RANKS)


def _config(**overrides):
    defaults = dict(
        scale=SCALE,
        duration_hours=HOURS,
        n_ranks=N_RANKS,
        checkpoint_every_hours=12,
        heartbeat_timeout=5.0,
        log_durability="wal",
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestHeartbeat:
    def test_dead_rank_detected_with_suspects(self):
        cluster = SimCluster(4, heartbeat_timeout=1.0)

        def rank_fn(comm):
            for i in range(8):
                if i == 4 and comm.rank == 2:
                    comm.die()
                comm.allreduce_sum(comm.rank)
            return comm.rank

        t0 = time.monotonic()
        with pytest.raises(RankFailureError) as exc_info:
            cluster.run(rank_fn)
        assert time.monotonic() - t0 < 10  # deadline, not the join timeout
        assert exc_info.value.suspects == [2]

    def test_single_rank_death(self):
        with pytest.raises(RankFailureError) as exc_info:
            SimCluster(1).run(lambda comm: comm.die())
        assert exc_info.value.suspects == [0]

    def test_die_is_silent_no_barrier_abort(self):
        """Siblings must NOT learn of the death via exception propagation;
        without a heartbeat the run stalls until the shared deadline."""
        cluster = SimCluster(2)  # no heartbeat armed

        def rank_fn(comm):
            if comm.rank == 1:
                comm.die()
            comm.barrier()  # rank 0 blocks here forever

        t0 = time.monotonic()
        with pytest.raises(CommError, match="deadline"):
            cluster.run(rank_fn, timeout=1.5)
        assert time.monotonic() - t0 >= 1.4

    def test_die_marks_communicator(self):
        held = {}

        def rank_fn(comm):
            held[comm.rank] = comm
            if comm.rank == 0:
                comm.die()

        with pytest.raises(RankFailureError):
            SimCluster(1).run(rank_fn)
        assert held[0].dead
        with pytest.raises(RankDeadError):
            held[0].die()

    def test_ordinary_error_still_propagates(self):
        def rank_fn(comm):
            if comm.rank == 1:
                raise ValueError("real bug")
            comm.barrier()

        with pytest.raises(CommError, match="real bug"):
            SimCluster(3, heartbeat_timeout=2.0).run(rank_fn)

    def test_rejects_bad_heartbeat(self):
        with pytest.raises(CommError, match="positive"):
            SimCluster(2, heartbeat_timeout=0.0)


class TestSharedDeadline:
    def test_join_timeout_is_shared_not_per_thread(self):
        """Four hung ranks must fail after ~timeout, not ~4 × timeout."""
        cluster = SimCluster(4)

        def rank_fn(comm):
            time.sleep(30)

        t0 = time.monotonic()
        with pytest.raises(CommError, match="deadline"):
            cluster.run(rank_fn, timeout=1.0)
        elapsed = time.monotonic() - t0
        assert elapsed < 3.0  # per-thread joins would take >= 4s


class TestSupervisedRecovery:
    def test_recovery_is_bit_for_bit(self, pop, partition, tmp_path):
        ref = DistributedSimulation(pop, _config(), partition).run(
            log_dir=tmp_path / "logs_ref", checkpoint_dir=tmp_path / "ck_ref"
        )
        assert ref.checkpoints_written == 3
        assert ref.restarts == 0

        state = {"killed": False}

        def hook(comm, hour):
            # kill rank 1 once, after the hour-24 checkpoint committed
            if hour == 30 and comm.rank == 1 and not state["killed"]:
                state["killed"] = True
                comm.die()

        rec = DistributedSimulation(pop, _config(), partition).run(
            log_dir=tmp_path / "logs_rec",
            checkpoint_dir=tmp_path / "ck_rec",
            fault_hook=hook,
            max_restarts=2,
        )
        assert state["killed"]
        assert rec.restarts == 1
        assert np.array_equal(ref.merged_records(), rec.merged_records())
        for name in sorted(p.name for p in (tmp_path / "logs_ref").glob("*.evl")):
            ha = hashlib.sha256(
                (tmp_path / "logs_ref" / name).read_bytes()
            ).hexdigest()
            hb = hashlib.sha256(
                (tmp_path / "logs_rec" / name).read_bytes()
            ).hexdigest()
            assert ha == hb, f"rank log {name} diverged after recovery"

    def test_failure_without_restarts_propagates(self, pop, partition, tmp_path):
        def hook(comm, hour):
            if hour == 30 and comm.rank == 0:
                comm.die()

        with pytest.raises(RankFailureError) as exc_info:
            DistributedSimulation(pop, _config(), partition).run(
                checkpoint_dir=tmp_path / "ck", fault_hook=hook
            )
        assert 0 in exc_info.value.suspects

    def test_recovery_before_first_checkpoint_restarts_from_scratch(
        self, pop, partition, tmp_path
    ):
        ref = DistributedSimulation(pop, _config(), partition).run()

        state = {"killed": False}

        def hook(comm, hour):
            if hour == 5 and comm.rank == 2 and not state["killed"]:
                state["killed"] = True
                comm.die()

        rec = DistributedSimulation(pop, _config(), partition).run(
            log_dir=tmp_path / "logs",
            checkpoint_dir=tmp_path / "ck",
            fault_hook=hook,
            max_restarts=1,
        )
        assert rec.restarts == 1
        assert np.array_equal(ref.merged_records(), rec.merged_records())

    def test_restart_budget_exhausted(self, pop, partition, tmp_path):
        def hook(comm, hour):  # unconditional: dies again after each restart
            if hour == 20 and comm.rank == 1:
                comm.die()

        with pytest.raises(RankFailureError):
            DistributedSimulation(pop, _config(), partition).run(
                checkpoint_dir=tmp_path / "ck",
                fault_hook=hook,
                max_restarts=2,
            )
