"""Place-sharded synthesis: the bit-identity property suite.

The whole sharding design rests on one algebraic fact: every log record
belongs to exactly one place, so the adjacency is additive over any
place partition — ``A = Σ_s A_s`` — and the canonical upper-triangular
CSR of a sum is unique.  These tests assert the strong form of that
contract: for every shard count × partition strategy, the sharded
pipeline's CSR triple (``data``/``indices``/``indptr``) is **exactly**
the single-process kernel's, including through the compiled masked
backend, layer masks, the sharded tile cache, and quarantine paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TileCache, synthesize_from_logs
from repro.core.plan import SynthesisPlan
from repro.distrib.shardsynth import (
    STRATEGIES,
    ShardedTileCache,
    log_horizon,
    plan_shards,
    shard_synthesize,
)
from repro.errors import SynthesisError
from repro.evlog import LogSet
from repro.evlog.multifile import rank_log_path
from repro.obs import MetricsRegistry, set_default_registry
from tests.core.test_kernel_equivalence import (
    N_PERSONS,
    N_PLACES,
    T0,
    T1,
    csr_identical,
    write_tricky_logs,
)

SHARD_COUNTS = (1, 2, 4, 7)


@pytest.fixture(scope="module")
def shard_logs(tmp_path_factory):
    """Six rank files with disjoint place ranges — shardable locality."""
    return write_tricky_logs(tmp_path_factory.mktemp("shard-logs"), seed=77)


@pytest.fixture(scope="module")
def reference(shard_logs):
    net, _ = synthesize_from_logs(
        shard_logs, N_PERSONS, T0, T1, kernel="intervals"
    )
    return net


class TestShardBitIdentity:
    """The tentpole contract: any partition, any shard count, same CSR."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_matches_single_process(
        self, shard_logs, reference, n_shards, strategy
    ):
        net, report = shard_synthesize(
            shard_logs, N_PERSONS, T0, T1,
            n_shards=n_shards, strategy=strategy,
        )
        assert csr_identical(net.adjacency, reference.adjacency)
        assert report.n_shards == n_shards
        assert report.strategy == strategy
        assert len(report.shard_records) == n_shards
        assert report.imbalance >= 1.0

    @pytest.mark.parametrize("n_shards", (2, 4))
    def test_masked_backend_identity(self, shard_logs, reference, n_shards):
        """The compiled masked SpGEMM shard leg is bit-identical too."""
        plan = SynthesisPlan(kernel="intervals", backend="masked")
        net, _ = shard_synthesize(
            shard_logs, N_PERSONS, T0, T1, n_shards=n_shards, plan=plan
        )
        assert csr_identical(net.adjacency, reference.adjacency)

    def test_reduce_is_order_independent(self, shard_logs, reference):
        """Spatial vs round-robin assign places in different orders; the
        canonical reduce erases the difference completely."""
        a, _ = shard_synthesize(
            shard_logs, N_PERSONS, T0, T1, n_shards=4, strategy="spatial"
        )
        b, _ = shard_synthesize(
            shard_logs, N_PERSONS, T0, T1, n_shards=4, strategy="round-robin"
        )
        assert csr_identical(a.adjacency, b.adjacency)


class TestShardPlan:
    def test_plan_reuse_and_subwindow(self, shard_logs, reference):
        plan = plan_shards(shard_logs, 4, T0, T1, strategy="refined")
        assert plan.n_shards == 4
        # full window through the precomputed plan
        net, _ = shard_synthesize(
            shard_logs, N_PERSONS, T0, T1, shard_plan=plan
        )
        assert csr_identical(net.adjacency, reference.adjacency)
        # sub-window reuses the partition, rebuilds descriptors
        sub, _ = shard_synthesize(
            shard_logs, N_PERSONS, T0 + 24, T1 - 24, shard_plan=plan
        )
        direct, _ = synthesize_from_logs(
            shard_logs, N_PERSONS, T0 + 24, T1 - 24, kernel="intervals"
        )
        assert csr_identical(sub.adjacency, direct.adjacency)

    def test_plan_rejects_wider_window(self, shard_logs):
        plan = plan_shards(shard_logs, 2, T0 + 24, T1 - 24)
        with pytest.raises(SynthesisError, match="cannot serve"):
            shard_synthesize(shard_logs, N_PERSONS, T0, T1, shard_plan=plan)

    def test_partition_covers_every_place_once(self, shard_logs):
        plan = plan_shards(shard_logs, 4, T0, T1, strategy="refined")
        counts = np.zeros(plan.n_places, dtype=int)
        for s in range(4):
            counts[plan.shard_places(s)] += 1
        assert np.all(counts == 1)
        assert plan.imbalance >= 1.0
        # work-weighted refinement should land well under 2x mean
        assert plan.imbalance < 2.0

    def test_file_skipping_uses_place_locality(self, shard_logs):
        """Rank logs are place-local, so spatial shards read fewer files
        than a broadcast would."""
        plan = plan_shards(shard_logs, 4, T0, T1, strategy="spatial")
        n_files = len(plan.paths)
        per_shard = [len(plan.shard_file_indices(s)) for s in range(4)]
        assert sum(per_shard) < 4 * n_files
        assert all(n >= 1 for n in per_shard)

    def test_digest_tracks_partition(self, shard_logs):
        a = plan_shards(shard_logs, 2, T0, T1, strategy="round-robin")
        b = plan_shards(shard_logs, 2, T0, T1, strategy="round-robin")
        c = plan_shards(shard_logs, 4, T0, T1, strategy="round-robin")
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_requires_interval_kernel(self, shard_logs):
        plan = SynthesisPlan(kernel="dense-hours")
        with pytest.raises(SynthesisError, match="interval"):
            shard_synthesize(
                shard_logs, N_PERSONS, T0, T1, n_shards=2, plan=plan
            )

    def test_log_horizon(self, shard_logs):
        assert log_horizon(LogSet(shard_logs)) >= T1


class TestShardQuarantine:
    def _corrupt(self, path):
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

    def test_quarantine_matches_single_process(self, tmp_path):
        logs = write_tricky_logs(tmp_path / "logs", seed=41)
        bad = rank_log_path(logs, 2)
        self._corrupt(bad)
        single, rep_s = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, kernel="intervals"
        )
        sharded, rep = shard_synthesize(logs, N_PERSONS, T0, T1, n_shards=3)
        assert rep_s.quarantined == [str(bad)]
        assert rep.quarantined == [str(bad)]
        assert csr_identical(single.adjacency, sharded.adjacency)

    def test_strict_raises(self, tmp_path):
        logs = write_tricky_logs(tmp_path / "logs", seed=42)
        self._corrupt(rank_log_path(logs, 1))
        plan = SynthesisPlan(kernel="intervals", strict=True)
        with pytest.raises(SynthesisError):
            shard_synthesize(logs, N_PERSONS, T0, T1, n_shards=2, plan=plan)


class TestShardMetrics:
    def test_registry_gets_shard_series(self, shard_logs):
        mine = MetricsRegistry()
        prev = set_default_registry(mine)
        try:
            _, report = shard_synthesize(
                shard_logs, N_PERSONS, T0, T1, n_shards=3
            )
        finally:
            set_default_registry(prev)
        snap = mine.snapshot()
        assert snap["counters"]["shard.records"] == report.n_records
        assert snap["counters"]["shard.nnz"] == sum(report.shard_nnz)
        assert snap["counters"]["shard.reduce_seconds"] >= 0.0
        assert snap["gauges"]["shard.count"] == 3
        assert snap["gauges"]["shard.imbalance"] == pytest.approx(
            report.imbalance
        )
        for s in range(3):
            assert snap["gauges"][f"shard.{s}.records"] == (
                report.shard_records[s]
            )

    def test_report_summary_mentions_every_shard(self, shard_logs):
        _, report = shard_synthesize(shard_logs, N_PERSONS, T0, T1, n_shards=2)
        text = report.summary()
        assert "shard 0" in text and "shard 1" in text
        assert f"{report.n_records:,}" in text


class TestShardedTileCache:
    @pytest.fixture(scope="class")
    def cache_plan(self, shard_logs):
        horizon = log_horizon(LogSet(shard_logs))
        return plan_shards(shard_logs, 3, 0, horizon, strategy="refined")

    def test_window_queries_bit_identical(
        self, shard_logs, reference, cache_plan
    ):
        with ShardedTileCache(shard_logs, N_PERSONS, cache_plan) as cache:
            net = cache.query_window(T0, T1)
            assert csr_identical(net.adjacency, reference.adjacency)
            # unaligned window, exercising partial tiles per shard
            got = cache.query_window(T0 + 7, T1 - 5)
            want, _ = synthesize_from_logs(
                shard_logs, N_PERSONS, T0 + 7, T1 - 5, kernel="intervals"
            )
            assert csr_identical(got.adjacency, want.adjacency)
            assert cache.reduce_seconds >= 0.0
            assert cache.stats.queries >= 1

    def test_matches_unsharded_cache(self, shard_logs, cache_plan):
        with ShardedTileCache(shard_logs, N_PERSONS, cache_plan) as sharded, \
                TileCache(shard_logs, N_PERSONS) as single:
            a = sharded.query_window(T0 + 1, T1 - 1)
            b = single.query_window(T0 + 1, T1 - 1)
            assert csr_identical(a.adjacency, b.adjacency)

    def test_place_mask_composes_with_shards(self, shard_logs, cache_plan):
        """A layer mask intersects each shard's mask; the reduced answer
        equals one masked unsharded cache."""
        mask = np.zeros(cache_plan.n_places, dtype=bool)
        mask[: N_PLACES // 2] = True
        with ShardedTileCache(
            shard_logs, N_PERSONS, cache_plan, place_mask=mask
        ) as sharded, TileCache(
            shard_logs, N_PERSONS, place_mask=mask
        ) as single:
            a = sharded.query_window(T0, T1)
            b = single.query_window(T0, T1)
            assert csr_identical(a.adjacency, b.adjacency)

    def test_pipeline_cache_injection(self, shard_logs, reference, cache_plan):
        """synthesize_from_logs(cache=...) accepts the sharded cache."""
        with ShardedTileCache(shard_logs, N_PERSONS, cache_plan) as cache:
            net, _ = synthesize_from_logs(
                shard_logs, N_PERSONS, T0, T1, cache=cache
            )
            assert csr_identical(net.adjacency, reference.adjacency)

    def test_interface_surface(self, shard_logs, cache_plan):
        with ShardedTileCache(shard_logs, N_PERSONS, cache_plan) as cache:
            assert cache.horizon() >= T1
            assert cache.warm(T0, T0 + 48) >= 0
            assert cache.cached_nnz >= 0
            assert cache.quarantined == []
            assert cache.quarantined_tiles == []
            assert len(cache.digest) == 64
            assert cache.pool.n_workers == 3

    def test_plan_object_supplies_knobs(self, shard_logs, tmp_path, cache_plan):
        plan = SynthesisPlan(
            tile_hours=12, dispatch="zero-copy",
            cache_dir=tmp_path / "tiles",
        )
        with ShardedTileCache(
            shard_logs, N_PERSONS, cache_plan, plan=plan
        ) as cache:
            cache.query_window(T0, T0 + 24)
            assert cache.dispatch == "zero-copy"
        assert (tmp_path / "tiles" / "shard_000").exists()

    def test_misaligned_place_mask_rejected(self, shard_logs, cache_plan):
        with pytest.raises(SynthesisError, match="place_mask"):
            ShardedTileCache(
                shard_logs, N_PERSONS, cache_plan,
                place_mask=np.ones(3, dtype=bool),
            )
