"""Tests for the real-process BSP cluster."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.distrib import (
    DistributedSimulation,
    ProcessBspCluster,
    spatial_partition,
)
from repro.errors import CommError
from repro.evlog import LogSet


class TestCollectives:
    def test_allreduce(self):
        result = ProcessBspCluster(4).run(
            lambda comm: comm.allreduce_sum(comm.rank + 1)
        )
        assert result.returns == [10, 10, 10, 10]

    def test_allreduce_arrays(self):
        def fn(comm):
            return comm.allreduce_sum(np.full(2, comm.rank, dtype=np.int64))

        result = ProcessBspCluster(3).run(fn)
        for out in result.returns:
            assert out.tolist() == [3, 3]

    def test_alltoall(self):
        def fn(comm):
            return comm.alltoall([f"{comm.rank}->{j}" for j in range(comm.size)])

        result = ProcessBspCluster(3).run(fn)
        assert result.returns[1] == ["0->1", "1->1", "2->1"]

    def test_gather_and_bcast(self):
        def fn(comm):
            g = comm.gather(comm.rank * 2, root=1)
            b = comm.bcast("hello" if comm.rank == 0 else None, root=0)
            return g, b

        result = ProcessBspCluster(3).run(fn)
        assert result.returns[1][0] == [0, 2, 4]
        assert all(r[1] == "hello" for r in result.returns)

    def test_consecutive_collectives_sequenced(self):
        def fn(comm):
            first = comm.allgather(comm.rank)
            second = comm.allgather(comm.rank * 10)
            third = comm.allreduce_sum(1)
            return first, second, third

        result = ProcessBspCluster(4).run(fn)
        for first, second, third in result.returns:
            assert first == [0, 1, 2, 3]
            assert second == [0, 10, 20, 30]
            assert third == 4

    def test_single_rank_fast_path(self):
        result = ProcessBspCluster(1).run(lambda comm: comm.allreduce_sum(7))
        assert result.returns == [7]

    def test_traffic_metered(self):
        def fn(comm):
            comm.alltoall([np.zeros(10, dtype=np.uint8)] * comm.size)
            return None

        result = ProcessBspCluster(3).run(fn)
        for stats in result.traffic:
            assert stats.bytes_sent == 20  # 2 peers x 10 B


class TestFailure:
    def test_rank_error_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            return comm.rank

        with pytest.raises(CommError, match="rank 1"):
            ProcessBspCluster(3).run(fn)

    def test_zero_ranks(self):
        with pytest.raises(CommError):
            ProcessBspCluster(0)

    def test_rank_args_length(self):
        with pytest.raises(CommError):
            ProcessBspCluster(2).run(lambda c, x: x, rank_args=[(1,)])


class TestModelOnProcesses:
    def test_identical_to_thread_cluster(self, tmp_path):
        pop = repro.generate_population(repro.ScaleConfig(n_persons=300, seed=8))
        cfg = repro.SimulationConfig(
            scale=pop.scale, duration_hours=48, n_ranks=3
        )
        part = spatial_partition(
            pop.places.coords(), pop.places.capacity.astype(float), 3
        )
        sim = DistributedSimulation(pop, cfg, part)
        threads = sim.run()
        procs = sim.run(
            log_dir=tmp_path, cluster=ProcessBspCluster(3)
        )
        assert (threads.merged_records() == procs.merged_records()).all()
        assert threads.total_migrations == procs.total_migrations
        # children wrote real per-rank log files
        logs = LogSet(tmp_path)
        assert len(logs) == 3
        assert logs.total_records() == procs.total_events
