"""Tests for the simulated cluster runtime."""

from __future__ import annotations

import pytest

from repro.distrib import SimCluster
from repro.errors import CommError


class TestLifecycle:
    def test_single_rank_fast_path(self):
        result = SimCluster(1).run(lambda c: c.allreduce_sum(41) + 1)
        assert result.returns == [42]

    def test_rank_args(self):
        result = SimCluster(3).run(
            lambda c, base: base + c.rank, rank_args=[(10,), (20,), (30,)]
        )
        assert result.returns == [10, 21, 32]

    def test_rank_args_length_checked(self):
        with pytest.raises(CommError):
            SimCluster(3).run(lambda c, x: x, rank_args=[(1,)])

    def test_zero_ranks_rejected(self):
        with pytest.raises(CommError):
            SimCluster(0)

    def test_returns_ordered_by_rank(self):
        result = SimCluster(6).run(lambda c: c.rank)
        assert result.returns == list(range(6))


class TestFailurePropagation:
    def test_rank_exception_propagates(self):
        def fn(c):
            if c.rank == 2:
                raise ValueError("rank 2 exploded")
            c.barrier()  # other ranks wait here; barrier must break

        with pytest.raises(CommError, match="rank 2"):
            SimCluster(4).run(fn)

    def test_root_cause_preferred_over_broken_barrier(self):
        def fn(c):
            c.barrier()
            if c.rank == 0:
                raise RuntimeError("the real bug")
            c.barrier()

        with pytest.raises(CommError, match="real bug"):
            SimCluster(3).run(fn)

    def test_single_rank_exception(self):
        with pytest.raises(CommError):
            SimCluster(1).run(lambda c: 1 / 0)


class TestDeterminism:
    def test_repeated_runs_identical(self):
        def fn(c):
            total = 0
            for i in range(20):
                total += c.allreduce_sum(c.rank * i)
            return total

        a = SimCluster(4).run(fn).returns
        b = SimCluster(4).run(fn).returns
        assert a == b
