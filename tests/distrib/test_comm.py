"""Tests for the BSP communicator collectives and traffic metering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distrib import SimCluster
from repro.distrib.comm import payload_nbytes
from repro.errors import CommError


class TestCollectives:
    def test_allreduce_sum_scalars(self):
        result = SimCluster(5).run(lambda c: c.allreduce_sum(c.rank + 1))
        assert result.returns == [15] * 5

    def test_allreduce_sum_arrays(self):
        def fn(c):
            return c.allreduce_sum(np.full(3, c.rank, dtype=np.int64))

        result = SimCluster(4).run(fn)
        for out in result.returns:
            assert out.tolist() == [6, 6, 6]

    def test_allreduce_does_not_mutate_input(self):
        def fn(c):
            mine = np.full(2, c.rank, dtype=np.int64)
            c.allreduce_sum(mine)
            return mine.copy()

        result = SimCluster(3).run(fn)
        for rank, out in enumerate(result.returns):
            assert out.tolist() == [rank, rank]

    def test_allgather(self):
        result = SimCluster(3).run(lambda c: c.allgather(c.rank * 2))
        assert result.returns == [[0, 2, 4]] * 3

    def test_gather_root_only(self):
        result = SimCluster(3).run(lambda c: c.gather(c.rank, root=1))
        assert result.returns[0] is None
        assert result.returns[1] == [0, 1, 2]
        assert result.returns[2] is None

    def test_bcast(self):
        def fn(c):
            return c.bcast("hello" if c.rank == 2 else None, root=2)

        assert SimCluster(4).run(fn).returns == ["hello"] * 4

    def test_alltoall_permutation(self):
        def fn(c):
            sent = [f"{c.rank}->{j}" for j in range(c.size)]
            return c.alltoall(sent)

        result = SimCluster(3).run(fn)
        assert result.returns[1] == ["0->1", "1->1", "2->1"]

    def test_alltoall_wrong_length(self):
        def fn(c):
            return c.alltoall([None])  # wrong size on all ranks

        with pytest.raises(CommError):
            SimCluster(3).run(fn)

    def test_reduce_with_custom_fold(self):
        def fn(c):
            return c.reduce_with({c.rank}, lambda a, b: a | b)

        result = SimCluster(4).run(fn)
        assert result.returns[0] == {0, 1, 2, 3}

    def test_consecutive_collectives_isolated(self):
        """Back-to-back collectives must not read stale slots."""
        def fn(c):
            first = c.allgather(c.rank)
            second = c.allgather(c.rank * 10)
            return first, second

        result = SimCluster(4).run(fn)
        for first, second in result.returns:
            assert first == [0, 1, 2, 3]
            assert second == [0, 10, 20, 30]


class TestTraffic:
    def test_alltoall_metering_excludes_self(self):
        def fn(c):
            payloads = [np.zeros(10, dtype=np.uint8) for _ in range(c.size)]
            c.alltoall(payloads)
            return None

        result = SimCluster(4).run(fn)
        for stats in result.traffic:
            assert stats.bytes_sent == 30  # 3 foreign ranks x 10 bytes
            assert stats.messages_sent == 3

    def test_empty_payloads_cost_nothing(self):
        def fn(c):
            c.alltoall([None] * c.size)
            return None

        result = SimCluster(3).run(fn)
        assert result.total_traffic.bytes_sent == 0

    def test_traffic_merge(self):
        def fn(c):
            c.allgather(np.zeros(8, dtype=np.uint8))
            return None

        result = SimCluster(3).run(fn)
        total = result.total_traffic
        assert total.bytes_sent == sum(t.bytes_sent for t in result.traffic)
        assert "allgather" in total.by_kind


class TestPayloadSizing:
    @pytest.mark.parametrize(
        "obj,expected",
        [
            (None, 0),
            (b"abcd", 4),
            (7, 8),
            (3.14, 8),
            ("hé", 3),
            ([b"ab", b"c"], 3),
            ({"k": b"vv"}, 3),
        ],
    )
    def test_sizes(self, obj, expected):
        assert payload_nbytes(obj) == expected

    def test_numpy_nbytes(self):
        assert payload_nbytes(np.zeros((4, 5), dtype=np.float64)) == 160

    def test_arbitrary_object_uses_pickle(self):
        assert payload_nbytes({1, 2, 3}) > 0  # sets go through pickle

    def test_unpicklable_object_counts_zero(self):
        class Local:  # local classes cannot pickle
            pass

        assert payload_nbytes(Local()) == 0
