"""Tests for place partitioning: baselines, RCB, refinement, migration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distrib import (
    PlacePartition,
    estimate_migration,
    movement_matrix,
    random_partition,
    refine_partition,
    round_robin_partition,
    spatial_partition,
)
from repro.errors import PartitionError


class TestPlacePartition:
    def test_validates_rank_range(self):
        with pytest.raises(PartitionError):
            PlacePartition(np.array([0, 3]), n_ranks=2)
        with pytest.raises(PartitionError):
            PlacePartition(np.array([-1, 0]), n_ranks=2)

    def test_places_of_rank(self):
        p = PlacePartition(np.array([0, 1, 0, 1]), 2)
        assert p.places_of_rank(0).tolist() == [0, 2]

    def test_rank_counts_and_imbalance(self):
        p = PlacePartition(np.array([0, 0, 0, 1]), 2)
        assert p.rank_counts().tolist() == [3, 1]
        assert p.imbalance() == pytest.approx(1.5)

    def test_weighted_imbalance(self):
        p = PlacePartition(np.array([0, 1]), 2)
        assert p.imbalance(np.array([3.0, 1.0])) == pytest.approx(1.5)


class TestBaselines:
    def test_round_robin_perfectly_balanced(self):
        p = round_robin_partition(100, 4)
        assert p.rank_counts().tolist() == [25, 25, 25, 25]

    def test_random_uses_all_ranks(self, rng):
        p = random_partition(1000, 8, rng)
        assert (p.rank_counts() > 0).all()


class TestSpatial:
    def test_all_ranks_used_and_balanced(self, rng):
        coords = rng.uniform(0, 40, (2000, 2))
        p = spatial_partition(coords, None, 7)  # non-power-of-two
        counts = p.rank_counts()
        assert (counts > 0).all()
        assert p.imbalance() < 1.2

    def test_weighted_balance(self, rng):
        coords = rng.uniform(0, 40, (2000, 2))
        weights = rng.lognormal(0, 1, 2000)
        p = spatial_partition(coords, weights, 8)
        assert p.imbalance(weights) < 1.4

    def test_spatial_contiguity(self, rng):
        """Places in one rank should be geographically compact: the mean
        within-rank spread must beat the global spread."""
        coords = rng.uniform(0, 40, (4000, 2))
        p = spatial_partition(coords, None, 16)
        global_std = coords.std(axis=0).mean()
        rank_stds = [
            coords[p.places_of_rank(r)].std(axis=0).mean()
            for r in range(16)
        ]
        assert np.mean(rank_stds) < global_std / 2

    def test_single_rank(self, rng):
        coords = rng.uniform(0, 1, (10, 2))
        p = spatial_partition(coords, None, 1)
        assert (p.assignment == 0).all()

    def test_rejects_bad_coords(self):
        with pytest.raises(PartitionError):
            spatial_partition(np.zeros(5), None, 2)

    def test_rejects_negative_weights(self, rng):
        with pytest.raises(PartitionError):
            spatial_partition(rng.uniform(0, 1, (5, 2)), np.array([1, -1, 1, 1, 1]), 2)

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_total_cover(self, n_ranks, n_places, seed):
        """Every place assigned exactly once; ranks within range."""
        rng = np.random.default_rng(seed)
        coords = rng.uniform(0, 10, (n_places, 2))
        p = spatial_partition(coords, None, n_ranks)
        assert len(p.assignment) == n_places
        assert p.assignment.min() >= 0
        assert p.assignment.max() < n_ranks
        assert int(p.rank_counts().sum()) == n_places


class TestMovement:
    def test_movement_matrix_counts_transitions(self):
        grid = np.array([[0, 0, 1, 1, 0], [2, 2, 2, 3, 3]], dtype=np.uint32)
        m = movement_matrix(grid, 4)
        assert m[0, 1] == 1
        assert m[1, 0] == 1
        assert m[2, 3] == 1
        assert m.sum() == 3  # diagonal (staying) excluded

    def test_rejects_out_of_range_place(self):
        grid = np.array([[0, 9]], dtype=np.uint32)
        with pytest.raises(PartitionError):
            movement_matrix(grid, 4)

    def test_estimate_migration(self):
        grid = np.array([[0, 1, 0, 1]], dtype=np.uint32)
        m = movement_matrix(grid, 2)
        same = PlacePartition(np.array([0, 0]), 2)
        split = PlacePartition(np.array([0, 1]), 2)
        assert estimate_migration(same, m) == 0
        assert estimate_migration(split, m) == 3


class TestRefinement:
    def test_refinement_never_increases_migration(self, small_pop):
        grid = small_pop.schedule_generator().week(0)
        movement = movement_matrix(grid.place, small_pop.n_places)
        coords = small_pop.places.coords()
        weights = small_pop.places.capacity.astype(float)
        base = spatial_partition(coords, weights, 6)
        refined = refine_partition(base, movement, weights)
        assert estimate_migration(refined, movement) <= estimate_migration(
            base, movement
        )

    def test_refinement_respects_balance(self, small_pop):
        grid = small_pop.schedule_generator().week(0)
        movement = movement_matrix(grid.place, small_pop.n_places)
        weights = small_pop.places.capacity.astype(float)
        base = round_robin_partition(small_pop.n_places, 4)
        refined = refine_partition(base, movement, weights, balance_tol=1.10)
        assert refined.imbalance(weights) <= 1.15  # tol + rounding slack

    def test_single_rank_noop(self, small_pop):
        grid = small_pop.schedule_generator().week(0)
        movement = movement_matrix(grid.place, small_pop.n_places)
        base = PlacePartition(np.zeros(small_pop.n_places, dtype=np.int32), 1)
        refined = refine_partition(base, movement)
        assert (refined.assignment == 0).all()


class TestPartitionQualityOrdering:
    def test_spatial_beats_random(self, small_pop, rng):
        """The paper's premise: spatial partitioning reduces migration."""
        grid = small_pop.schedule_generator().week(0)
        movement = movement_matrix(grid.place, small_pop.n_places)
        coords = small_pop.places.coords()
        weights = small_pop.places.capacity.astype(float)
        rand = estimate_migration(
            random_partition(small_pop.n_places, 8, rng), movement
        )
        spat = estimate_migration(
            spatial_partition(coords, weights, 8), movement
        )
        assert spat < rand


class TestDegenerateWeights:
    """Satellite fix: zero/NaN/empty weights must neither crash the
    partitioners nor poison the imbalance ratio."""

    def test_imbalance_all_zero_weights(self):
        part = round_robin_partition(12, 4)
        assert part.imbalance(np.zeros(12)) == 1.0

    def test_imbalance_empty_partition(self):
        part = PlacePartition(np.array([], dtype=np.int32), 3)
        assert part.imbalance() == 1.0

    def test_imbalance_nan_weights(self):
        part = round_robin_partition(6, 2)
        assert part.imbalance(np.full(6, np.nan)) == 1.0

    def test_spatial_zero_weights_still_splits_evenly(self):
        """RCB with a zero-total region falls back to count bisection
        instead of dumping everything into one rank."""
        rng = np.random.default_rng(0)
        coords = rng.uniform(size=(40, 2))
        part = spatial_partition(coords, np.zeros(40), 4)
        counts = part.rank_counts()
        assert counts.min() >= 1
        assert counts.max() - counts.min() <= 1
        assert part.imbalance(np.zeros(40)) == 1.0

    def test_spatial_zero_weight_pocket(self):
        """A zero-weight spatial pocket must not starve later cuts."""
        coords = np.arange(20, dtype=np.float64).reshape(-1, 1)
        weights = np.zeros(20)
        weights[15:] = 100.0  # all mass in the last quarter
        part = spatial_partition(coords, weights, 4)
        assert part.rank_counts().min() >= 1
