"""Tests for migrant payload packing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distrib import MIGRANT_DTYPE, pack_migrants, unpack_migrants
from repro.errors import CommError


class TestPack:
    def test_roundtrip(self):
        m = pack_migrants(
            np.array([1, 2], dtype=np.uint32),
            np.array([10, 20], dtype=np.int64),
            np.array([0, 1], dtype=np.uint32),
            np.array([5, 6], dtype=np.uint32),
        )
        assert m.dtype == MIGRANT_DTYPE
        assert m["person"].tolist() == [1, 2]
        assert m["spell_start"].tolist() == [10, 20]

    def test_length_mismatch(self):
        with pytest.raises(CommError):
            pack_migrants(
                np.array([1], dtype=np.uint32),
                np.array([10, 20], dtype=np.int64),
                np.array([0], dtype=np.uint32),
                np.array([5], dtype=np.uint32),
            )

    def test_fixed_width_wire_size(self):
        """16 bytes per migrating agent — flat, meterable payloads."""
        assert MIGRANT_DTYPE.itemsize == 20
        m = pack_migrants(
            np.arange(10, dtype=np.uint32),
            np.arange(10, dtype=np.int64),
            np.zeros(10, dtype=np.uint32),
            np.zeros(10, dtype=np.uint32),
        )
        assert m.nbytes == 10 * MIGRANT_DTYPE.itemsize


class TestUnpack:
    def test_concatenates_skipping_empty(self):
        a = pack_migrants(
            np.array([1], dtype=np.uint32),
            np.array([0], dtype=np.int64),
            np.array([0], dtype=np.uint32),
            np.array([0], dtype=np.uint32),
        )
        out = unpack_migrants([None, a, np.empty(0, dtype=MIGRANT_DTYPE), a])
        assert len(out) == 2

    def test_all_empty(self):
        out = unpack_migrants([None, None])
        assert len(out) == 0
        assert out.dtype == MIGRANT_DTYPE
