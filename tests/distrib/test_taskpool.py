"""Tests for the SNOW-style worker pools."""

from __future__ import annotations

import os

import pytest

from repro.distrib import ProcessPool, SerialPool, ThreadPool, make_pool
from repro.errors import PartitionError


def square(x):
    return x * x


class TestSerialPool:
    def test_map_preserves_order(self):
        with SerialPool() as pool:
            assert pool.map(square, [3, 1, 2]) == [9, 1, 4]

    def test_closed_pool_rejects_map(self):
        pool = SerialPool()
        pool.close()
        with pytest.raises(PartitionError):
            pool.map(square, [1])

    def test_n_workers(self):
        assert SerialPool().n_workers == 1


class TestThreadPool:
    def test_map_preserves_order(self):
        with ThreadPool(4) as pool:
            assert pool.map(square, list(range(20))) == [i * i for i in range(20)]

    def test_exception_propagates(self):
        def boom(x):
            raise ValueError("boom")

        with ThreadPool(2) as pool:
            with pytest.raises(ValueError):
                pool.map(boom, [1, 2])

    def test_rejects_zero_workers(self):
        with pytest.raises(PartitionError):
            ThreadPool(0)


class TestProcessPool:
    def test_map_preserves_order(self):
        with ProcessPool(2) as pool:
            assert pool.map(square, list(range(30))) == [i * i for i in range(30)]

    def test_empty_items(self):
        with ProcessPool(2) as pool:
            assert pool.map(square, []) == []

    def test_default_worker_count(self):
        with ProcessPool() as pool:
            assert pool.n_workers == (os.cpu_count() or 1)


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("serial", SerialPool), ("thread", ThreadPool), ("process", ProcessPool),
    ])
    def test_kinds(self, kind, cls):
        pool = make_pool(kind, 2)
        try:
            assert isinstance(pool, cls)
        finally:
            pool.close()

    def test_unknown_kind(self):
        with pytest.raises(PartitionError):
            make_pool("gpu")
