"""Tests for the SNOW-style worker pools and their retry machinery."""

from __future__ import annotations

import os

import pytest

from repro.distrib import (
    PoolReport,
    ProcessPool,
    RetryPolicy,
    SerialPool,
    ThreadPool,
    make_pool,
)
from repro.errors import PartitionError, TaskRetryError
from tests._faults import Kill, WorkerCrash, inject_failures, invocation_counts


def square(x):
    return x * x


NO_SLEEP = RetryPolicy(max_attempts=3, base_delay=0.0)


class TestSerialPool:
    def test_map_preserves_order(self):
        with SerialPool() as pool:
            assert pool.map(square, [3, 1, 2]) == [9, 1, 4]

    def test_closed_pool_rejects_map(self):
        pool = SerialPool()
        pool.close()
        with pytest.raises(PartitionError):
            pool.map(square, [1])

    def test_n_workers(self):
        assert SerialPool().n_workers == 1


class TestThreadPool:
    def test_map_preserves_order(self):
        with ThreadPool(4) as pool:
            assert pool.map(square, list(range(20))) == [i * i for i in range(20)]

    def test_exception_propagates(self):
        def boom(x):
            raise ValueError("boom")

        with ThreadPool(2) as pool:
            with pytest.raises(ValueError):
                pool.map(boom, [1, 2])

    def test_rejects_zero_workers(self):
        with pytest.raises(PartitionError):
            ThreadPool(0)


class TestProcessPool:
    def test_map_preserves_order(self):
        with ProcessPool(2) as pool:
            assert pool.map(square, list(range(30))) == [i * i for i in range(30)]

    def test_empty_items(self):
        with ProcessPool(2) as pool:
            assert pool.map(square, []) == []

    def test_default_worker_count(self):
        with ProcessPool() as pool:
            assert pool.n_workers == (os.cpu_count() or 1)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(PartitionError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(PartitionError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(PartitionError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(PartitionError):
            RetryPolicy(base_delay=-1.0)

    def test_zero_base_delay_never_sleeps(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        assert policy.delay(0, 1) == 0.0
        assert policy.delay(7, 4) == 0.0

    def test_delay_is_deterministic(self):
        a = RetryPolicy(max_attempts=4, base_delay=0.1, seed=9)
        b = RetryPolicy(max_attempts=4, base_delay=0.1, seed=9)
        assert a.delay(3, 2) == b.delay(3, 2)

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, backoff=2.0, max_delay=4.0,
            jitter=0.0,
        )
        assert policy.delay(0, 1) == 1.0
        assert policy.delay(0, 2) == 2.0
        assert policy.delay(0, 3) == 4.0
        assert policy.delay(0, 5) == 4.0  # capped

    def test_jitter_within_fraction(self):
        policy = RetryPolicy(
            max_attempts=2, base_delay=1.0, backoff=1.0, jitter=0.2
        )
        for task in range(50):
            d = policy.delay(task, 1)
            assert 0.8 <= d <= 1.2

    def test_should_retry_respects_kinds(self):
        policy = RetryPolicy(max_attempts=3, retry_on=(ValueError,))
        assert policy.should_retry(ValueError(), 1)
        assert not policy.should_retry(KeyError(), 1)
        assert not policy.should_retry(ValueError(), 3)


@pytest.mark.parametrize("make", [
    lambda retry: SerialPool(retry=retry),
    lambda retry: ThreadPool(2, retry=retry),
    lambda retry: ProcessPool(2, retry=retry),
], ids=["serial", "thread", "process"])
class TestRetryAcrossBackends:
    def test_transient_failure_recovers(self, make, tmp_path):
        flaky = inject_failures(square, fail_on={3}, state_dir=tmp_path)
        with make(NO_SLEEP) as pool:
            assert pool.map(flaky, list(range(6))) == [i * i for i in range(6)]
            assert pool.report.n_retries == 1
            assert pool.report.n_exhausted == 0
            assert pool.last_attempts[3] == 2
            assert all(
                pool.last_attempts[i] == 1 for i in range(6) if i != 3
            )

    def test_simulated_worker_crash_recovers(self, make, tmp_path):
        flaky = inject_failures(
            square, fail_on={1, 4}, kind=Kill, state_dir=tmp_path
        )
        with make(NO_SLEEP) as pool:
            assert pool.map(flaky, list(range(6))) == [i * i for i in range(6)]
            assert pool.report.n_retries == 2
            assert pool.report.retried_tasks == {1: 2, 4: 2}

    def test_exhausted_retries_raise(self, make, tmp_path):
        always = inject_failures(
            square, fail_on={2}, times=99, state_dir=tmp_path
        )
        with make(NO_SLEEP) as pool:
            with pytest.raises(TaskRetryError) as err:
                pool.map(always, list(range(4)))
            assert err.value.task_index == 2
            assert err.value.attempts == NO_SLEEP.max_attempts
            assert isinstance(err.value.__cause__, ValueError)
            assert pool.report.n_exhausted == 1

    def test_report_accumulates_across_maps(self, make, tmp_path):
        flaky = inject_failures(square, fail_on={0}, state_dir=tmp_path)
        with make(NO_SLEEP) as pool:
            pool.map(flaky, [0, 1])  # one retry (task 0, first attempt)
            pool.map(square, [5, 6])  # clean
            assert pool.report.n_tasks == 4
            assert pool.report.n_retries == 1


class TestProcessPoolChunkRetry:
    def test_retried_task_resubmitted_individually(self, tmp_path):
        """Regression: with chunked dispatch, retrying one failed task must
        not re-run the other tasks that shared its chunk."""
        n = 16
        flaky = inject_failures(square, fail_on={5}, state_dir=tmp_path)
        with ProcessPool(2, retry=NO_SLEEP) as pool:
            # chunksize = 16 // (2*4) = 2, so task 5 shares a chunk with 4
            results = pool.map(flaky, list(range(n)))
        assert results == [i * i for i in range(n)]
        counts = invocation_counts(tmp_path)
        assert counts["5"] == 2
        assert all(counts[str(i)] == 1 for i in range(n) if i != 5)

    def test_no_retry_policy_runs_each_task_once(self, tmp_path):
        tracked = inject_failures(square, fail_on=set(), state_dir=tmp_path)
        with ProcessPool(2) as pool:
            pool.map(tracked, list(range(12)))
        counts = invocation_counts(tmp_path)
        assert all(counts[str(i)] == 1 for i in range(12))


class TestPoolReport:
    def test_summary_mentions_counts(self):
        report = PoolReport()
        report.record(0, 1, exhausted=False)
        report.record(1, 3, exhausted=False)
        assert "retries=2" in report.summary()
        assert "tasks=2" in report.summary()


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("serial", SerialPool), ("thread", ThreadPool), ("process", ProcessPool),
    ])
    def test_kinds(self, kind, cls):
        pool = make_pool(kind, 2)
        try:
            assert isinstance(pool, cls)
        finally:
            pool.close()

    def test_unknown_kind(self):
        with pytest.raises(PartitionError):
            make_pool("gpu")
