"""Tests for the distributed model: the serial-equivalence invariant."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.config import DiseaseConfig, ScaleConfig, SimulationConfig
from repro.distrib import (
    DistributedSimulation,
    random_partition,
    spatial_partition,
)
from repro.errors import SimulationError
from repro.evlog import LogSet
from repro.sim import Simulation


@pytest.fixture(scope="module")
def pop():
    return repro.generate_population(ScaleConfig(n_persons=400, seed=11))


@pytest.fixture(scope="module")
def serial_sorted(pop):
    cfg = SimulationConfig(scale=pop.scale, duration_hours=repro.HOURS_PER_WEEK)
    rec = Simulation(pop, cfg).run_fast().records
    return rec[np.lexsort((rec["start"], rec["person"]))]


def dist_config(pop, n_ranks, hours=repro.HOURS_PER_WEEK):
    return SimulationConfig(
        scale=pop.scale, duration_hours=hours, n_ranks=n_ranks
    )


class TestSerialEquivalence:
    @pytest.mark.parametrize("n_ranks", [1, 2, 5, 8])
    def test_event_stream_identical(self, pop, serial_sorted, n_ranks):
        part = spatial_partition(
            pop.places.coords(), pop.places.capacity.astype(float), n_ranks
        )
        res = DistributedSimulation(pop, dist_config(pop, n_ranks), part).run()
        merged = res.merged_records()
        assert len(merged) == len(serial_sorted)
        assert (merged == serial_sorted).all()

    def test_random_partition_also_equivalent(self, pop, serial_sorted, rng):
        part = random_partition(pop.n_places, 4, rng)
        res = DistributedSimulation(pop, dist_config(pop, 4), part).run()
        assert (res.merged_records() == serial_sorted).all()


class TestMigration:
    def test_spatial_migrates_less_than_random(self, pop, rng):
        cfg = dist_config(pop, 6)
        spatial = spatial_partition(
            pop.places.coords(), pop.places.capacity.astype(float), 6
        )
        rand = random_partition(pop.n_places, 6, rng)
        m_spatial = DistributedSimulation(pop, cfg, spatial).run().total_migrations
        m_random = DistributedSimulation(pop, cfg, rand).run().total_migrations
        assert m_spatial < m_random

    def test_single_rank_never_migrates(self, pop):
        part = repro.PlacePartition(
            np.zeros(pop.n_places, dtype=np.int32), 1
        )
        res = DistributedSimulation(pop, dist_config(pop, 1), part).run()
        assert res.total_migrations == 0
        assert res.traffic.bytes_sent == 0

    def test_traffic_proportional_to_migrations(self, pop):
        part = spatial_partition(
            pop.places.coords(), pop.places.capacity.astype(float), 4
        )
        res = DistributedSimulation(pop, dist_config(pop, 4), part).run()
        # 20 bytes per migrant payload entry
        assert res.traffic.by_kind.get("alltoall", 0) == res.total_migrations * 20


class TestRankLogs:
    def test_per_rank_files_written_and_complete(self, pop, tmp_path):
        part = spatial_partition(
            pop.places.coords(), pop.places.capacity.astype(float), 4
        )
        res = DistributedSimulation(pop, dist_config(pop, 4), part).run(
            log_dir=tmp_path
        )
        logs = LogSet(tmp_path)
        assert len(logs) == 4
        assert logs.total_records() == res.total_events
        merged_disk = logs.read_all()
        merged_disk = merged_disk[
            np.lexsort((merged_disk["start"], merged_disk["person"]))
        ]
        assert (merged_disk == res.merged_records()).all()

    def test_rank_logs_only_own_places(self, pop, tmp_path):
        """Section III: each rank logs only activity on its own places."""
        part = spatial_partition(
            pop.places.coords(), pop.places.capacity.astype(float), 4
        )
        DistributedSimulation(pop, dist_config(pop, 4), part).run(
            log_dir=tmp_path
        )
        for reader in LogSet(tmp_path).iter_readers():
            rec = reader.read_all()
            owners = part.assignment[rec["place"].astype(np.int64)]
            assert (owners == reader.rank).all()


class TestValidation:
    def test_rejects_disease(self, pop):
        part = repro.PlacePartition(np.zeros(pop.n_places, dtype=np.int32), 1)
        cfg = SimulationConfig(
            scale=pop.scale,
            n_ranks=1,
            disease=DiseaseConfig(initial_infected=1),
        )
        with pytest.raises(SimulationError):
            DistributedSimulation(pop, cfg, part)

    def test_rejects_partition_size_mismatch(self, pop):
        part = repro.PlacePartition(np.zeros(5, dtype=np.int32), 1)
        with pytest.raises(SimulationError):
            DistributedSimulation(pop, dist_config(pop, 1), part)

    def test_rejects_rank_count_mismatch(self, pop):
        part = repro.PlacePartition(np.zeros(pop.n_places, dtype=np.int32), 1)
        with pytest.raises(SimulationError):
            DistributedSimulation(pop, dist_config(pop, 2), part)
