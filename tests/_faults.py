"""Deterministic fault injection for pool, pipeline, and evlog tests.

Two layers of injection, matching the two layers of fault handling:

* :func:`inject_failures` wraps a *task function* so that chosen tasks
  fail on their first ``times`` attempts.  State lives on the filesystem,
  so it works unchanged across :class:`~repro.distrib.taskpool.SerialPool`,
  ``ThreadPool``, and fork-based ``ProcessPool`` workers, and
  :func:`invocation_counts` can afterwards prove exactly how often each
  task ran (the chunk-retry regression test depends on this).

* :class:`FlakyPool` wraps a *worker pool* so that a chosen ``map`` call
  either dies outright (simulating a run killed mid-batch) or injects
  first-attempt task failures beneath the pool's retry machinery.

``kind=Kill`` simulates a hard worker crash.  It raises
:class:`WorkerCrash` rather than delivering a real SIGKILL because
``multiprocessing.Pool`` cannot recover a task whose worker vanished
mid-chunk (the map would hang); by the time a crashed worker matters to
the retry layer, it manifests as exactly this kind of task failure.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping


class Kill:
    """Sentinel failure kind: a simulated hard worker crash."""


class WorkerCrash(RuntimeError):
    """The exception a :data:`Kill` injection raises."""


class _FailureInjector:
    """Picklable task-function wrapper that fails chosen tasks.

    The task key is the item itself (tests pass integer items), so the
    failure schedule is deterministic regardless of which worker runs the
    task or in what order the pool schedules it.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        fail_on: frozenset,
        kind: type,
        times: int,
        state_dir: str,
    ) -> None:
        self.fn = fn
        self.fail_on = fail_on
        self.kind = kind
        self.times = times
        self.state_dir = state_dir

    def _register_attempt(self, key: Any) -> int:
        """Record one invocation for *key*; return its 1-based attempt
        number.  O_CREAT|O_EXCL makes the claim atomic across processes."""
        attempt = 1
        while True:
            marker = os.path.join(self.state_dir, f"inv_{key}_{attempt}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                attempt += 1
                continue
            os.close(fd)
            return attempt

    def __call__(self, item: Any) -> Any:
        attempt = self._register_attempt(item)
        if item in self.fail_on and attempt <= self.times:
            if self.kind is Kill:
                raise WorkerCrash(
                    f"injected worker crash on task {item!r} attempt {attempt}"
                )
            raise self.kind(
                f"injected failure on task {item!r} attempt {attempt}"
            )
        return self.fn(item)


def inject_failures(
    fn: Callable[[Any], Any],
    fail_on: Iterable,
    kind: type = ValueError,
    times: int = 1,
    state_dir: str | Path | None = None,
) -> _FailureInjector:
    """Wrap *fn* so the tasks whose item is in *fail_on* fail their first
    *times* attempts, then succeed.

    ``kind`` is an exception class to raise, or :class:`Kill` for a
    simulated worker crash.  ``state_dir`` holds the cross-process attempt
    ledger; it defaults to a fresh temp directory.
    """
    if state_dir is None:
        import tempfile

        state_dir = tempfile.mkdtemp(prefix="faults_")
    Path(state_dir).mkdir(parents=True, exist_ok=True)
    return _FailureInjector(fn, frozenset(fail_on), kind, times, str(state_dir))


def invocation_counts(state_dir: str | Path) -> dict[str, int]:
    """Per-task invocation counts recorded by an injector's ledger."""
    counts: dict[str, int] = {}
    for name in os.listdir(state_dir):
        if not name.startswith("inv_"):
            continue
        key = name[len("inv_") : name.rindex("_")]
        counts[key] = counts.get(key, 0) + 1
    return counts


class FlakyPool:
    """A :class:`~repro.distrib.taskpool.WorkerPool` wrapper with scripted
    failures, keyed on the zero-based index of the ``map`` call.

    Parameters
    ----------
    inner:
        The real pool doing the work.
    die_on_calls:
        ``map`` call indices that raise :class:`WorkerCrash` before any
        task runs — simulates the whole run being killed mid-batch.
    fail_tasks:
        ``{call_index: set_of_task_indices}``: in those ``map`` calls, the
        listed task positions fail their first attempt and succeed when
        re-run — exercises the inner pool's retry machinery.
    """

    def __init__(
        self,
        inner,
        die_on_calls: Iterable[int] = (),
        fail_tasks: Mapping[int, Iterable[int]] | None = None,
        kind: type = Kill,
    ) -> None:
        self.inner = inner
        self.die_on_calls = frozenset(die_on_calls)
        self.fail_tasks = {
            int(c): frozenset(ts) for c, ts in (fail_tasks or {}).items()
        }
        self.kind = kind
        self.calls = 0
        self._lock = threading.Lock()
        self._failed_once: set[tuple[int, int]] = set()

    @property
    def n_workers(self) -> int:
        return self.inner.n_workers

    @property
    def report(self):
        return getattr(self.inner, "report", None)

    @property
    def last_attempts(self):
        return getattr(self.inner, "last_attempts", {})

    def map(self, fn, items):
        call = self.calls
        self.calls += 1
        if call in self.die_on_calls:
            raise WorkerCrash(f"injected pool death on map call {call}")
        targets = self.fail_tasks.get(call)
        if not targets:
            return self.inner.map(fn, items)

        indexed = list(enumerate(items))
        pool = self

        def flaky(pair):
            index, item = pair
            with pool._lock:
                first = (call, index) not in pool._failed_once
                if index in targets and first:
                    pool._failed_once.add((call, index))
                    failing = True
                else:
                    failing = False
            if failing:
                if pool.kind is Kill:
                    raise WorkerCrash(
                        f"injected worker crash: call {call} task {index}"
                    )
                raise pool.kind(
                    f"injected failure: call {call} task {index}"
                )
            return fn(item)

        return self.inner.map(flaky, indexed)

    def close(self) -> None:
        self.inner.close()

    def __enter__(self) -> "FlakyPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
