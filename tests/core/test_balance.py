"""Tests for nnz load balancing (LPT)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balance import BalanceReport, balance_by_nnz, lpt_partition
from repro.errors import PartitionError


class FakeMatrix:
    def __init__(self, nnz):
        self.nnz = nnz


class TestLPT:
    def test_exact_split(self):
        buckets, report = lpt_partition([5, 5, 5, 5], 2)
        assert report.loads.tolist() == [10, 10]
        assert report.imbalance == 1.0

    def test_every_item_assigned_once(self):
        buckets, _ = lpt_partition([3, 1, 4, 1, 5, 9, 2, 6], 3)
        flat = sorted(i for b in buckets for i in b)
        assert flat == list(range(8))

    def test_giant_item_dominates(self):
        """One huge place: imbalance bounded by the item, not the algorithm."""
        buckets, report = lpt_partition([1000, 1, 1, 1], 4)
        assert report.max_load == 1000
        assert report.max_item == 1000

    def test_more_buckets_than_items(self):
        buckets, report = lpt_partition([7, 3], 5)
        assert sum(len(b) for b in buckets) == 2
        assert report.loads.sum() == 10

    def test_empty_items(self):
        buckets, report = lpt_partition([], 3)
        assert all(not b for b in buckets)
        assert report.imbalance == 1.0

    def test_invalid_buckets(self):
        with pytest.raises(PartitionError):
            lpt_partition([1], 0)

    def test_negative_weights_rejected(self):
        with pytest.raises(PartitionError):
            lpt_partition([1, -2], 2)

    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), max_size=200),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=80)
    def test_property_lpt_bound(self, weights, n_buckets):
        """LPT guarantee: max_load <= mean_load + max_item."""
        buckets, report = lpt_partition(weights, n_buckets)
        assert sorted(i for b in buckets for i in b) == list(range(len(weights)))
        max_item = max(weights) if weights else 0
        assert report.max_load <= report.mean_load + max_item + 1e-9
        assert report.loads.sum() == sum(weights)


class TestBalanceByNnz:
    def test_uses_nnz_attribute(self):
        ms = [FakeMatrix(10), FakeMatrix(1), FakeMatrix(9), FakeMatrix(2)]
        shares, report = balance_by_nnz(ms, 2)
        assert report.loads.tolist() == [11, 11]
        # the two big ones land in different buckets
        big_buckets = [
            any(m.nnz == 10 for m in s) for s in shares
        ]
        assert sum(big_buckets) == 1

    def test_explicit_weights(self):
        ms = ["a", "b", "c"]
        shares, report = balance_by_nnz(ms, 2, nnz=[5, 5, 10])
        assert report.max_load == 10

    def test_weights_length_checked(self):
        with pytest.raises(PartitionError):
            balance_by_nnz(["a"], 2, nnz=[1, 2])

    def test_real_matrices_balance_well(self, week_result, small_pop):
        """On real log data the nnz split should be near-perfect: many
        small places smooth out the bins (paper IV.A.3)."""
        import repro
        from repro.core.colloc import build_collocation_matrices
        from repro.core.slicing import slice_records

        sliced = slice_records(week_result.records, 0, repro.HOURS_PER_WEEK)
        ms = build_collocation_matrices(sliced, 0, repro.HOURS_PER_WEEK)
        _, report = balance_by_nnz(ms, 8)
        assert report.imbalance < 1.05


class TestImbalanceDegenerateCases:
    """Satellite fix: imbalance is defined (1.0) for degenerate loads,
    so ratio gates never divide by zero or trip on empty shards."""

    def test_all_zero_loads(self):
        report = BalanceReport(loads=np.zeros(4, dtype=np.int64), max_item=0)
        assert report.imbalance == 1.0

    def test_empty_loads(self):
        report = BalanceReport(loads=np.array([], dtype=np.int64), max_item=0)
        assert report.imbalance == 1.0
        assert report.max_load == 0
        assert report.mean_load == 0.0

    def test_nan_loads(self):
        report = BalanceReport(
            loads=np.array([np.nan, np.nan]), max_item=0
        )
        assert report.imbalance == 1.0

    def test_zero_weight_items_balance_cleanly(self):
        shares, report = balance_by_nnz(list("abcd"), 3, nnz=[0, 0, 0, 0])
        assert report.imbalance == 1.0
        assert sum(len(s) for s in shares) == 4

    def test_normal_ratio_unchanged(self):
        report = BalanceReport(
            loads=np.array([4, 2, 2], dtype=np.int64), max_item=4
        )
        assert report.imbalance == pytest.approx(1.5)
