"""TileCache under concurrent readers: the thread-safety contract.

The network-query service shares one warm :class:`TileCache` across an
executor's threads, so the cache must tolerate concurrent
``query_window`` / ``warm`` calls — including with an LRU budget small
enough that evictions race live compositions.  Property under test:
*every* CSR any thread receives is bit-identical to a direct
``kernel="intervals"`` synthesis of its window, and the stats counters
(guarded by the cache lock) never lose an update.

Seeded end to end: the window pool, each thread's query sequence, and
the budget derivation are all deterministic.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro
from repro.core import TileCache, synthesize_from_logs
from repro.distrib import DistributedSimulation, spatial_partition

pytestmark = pytest.mark.timeout(300)

N_THREADS = 6
QUERIES_PER_THREAD = 8

#: mixed aligned / unaligned / sub-tile / boundary-straddling windows
WINDOW_POOL = [
    (0, 24),
    (0, 168),
    (24, 192),
    (5, 100),
    (30, 40),
    (23, 25),
    (160, 336),
    (100, 101),
    (6, 174),
    (48, 312),
]


@pytest.fixture(scope="module")
def conc_logs(tmp_path_factory, small_pop):
    """Two weeks of 2-rank logs for the concurrency property tests."""
    d = tmp_path_factory.mktemp("conc-logs")
    cfg = repro.SimulationConfig(
        scale=small_pop.scale,
        duration_hours=2 * repro.HOURS_PER_WEEK,
        n_ranks=2,
    )
    part = spatial_partition(
        small_pop.places.coords(), small_pop.places.capacity.astype(float), 2
    )
    DistributedSimulation(small_pop, cfg, part).run(log_dir=d)
    return d


@pytest.fixture(scope="module")
def references(conc_logs, small_pop):
    """Direct single-threaded synthesis of every pool window."""
    refs = {}
    for t0, t1 in WINDOW_POOL:
        net, _ = synthesize_from_logs(
            conc_logs, small_pop.n_persons, t0, t1, kernel="intervals"
        )
        refs[(t0, t1)] = net
    return refs


def assert_bit_identical(a, b):
    assert a.shape == b.shape
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data, b.data)


def tight_budget(conc_logs, small_pop) -> int:
    """A budget around a quarter of the full run's tile nonzeros, so the
    concurrent workload constantly evicts and rebuilds."""
    with TileCache(conc_logs, small_pop.n_persons) as cache:
        cache.query_window(0, 2 * repro.HOURS_PER_WEEK)
        return max(1, cache.cached_nnz // 4)


def run_threads(worker) -> list:
    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        futures = [pool.submit(worker, i) for i in range(N_THREADS)]
        return [f.result() for f in futures]


class TestConcurrentReaders:
    def test_racing_queries_with_evictions_stay_bit_identical(
        self, conc_logs, small_pop, references
    ):
        budget = tight_budget(conc_logs, small_pop)
        with TileCache(
            conc_logs, small_pop.n_persons, budget_nnz=budget
        ) as cache:

            def worker(seed: int):
                rng = np.random.default_rng(1000 + seed)
                out = []
                for _ in range(QUERIES_PER_THREAD):
                    window = WINDOW_POOL[rng.integers(len(WINDOW_POOL))]
                    out.append((window, cache.query_window(*window)))
                return out

            results = run_threads(worker)
            # locked counters: no update lost to a race
            assert (
                cache.stats.queries == N_THREADS * QUERIES_PER_THREAD
            )
            # the budget really was tight enough to race evictions
            # against live compositions
            assert cache.stats.evictions > 0
            assert cache.cached_nnz <= budget
        for per_thread in results:
            for window, net in per_thread:
                assert (net.t0, net.t1) == window
                assert_bit_identical(
                    net.adjacency, references[window].adjacency
                )

    def test_warm_races_queries(self, conc_logs, small_pop, references):
        """Background warming (the service's prefetcher) must not
        perturb concurrent query results."""
        horizon = 2 * repro.HOURS_PER_WEEK
        with TileCache(conc_logs, small_pop.n_persons) as cache:
            assert cache.horizon() == horizon

            def worker(seed: int):
                rng = np.random.default_rng(2000 + seed)
                out = []
                for _ in range(QUERIES_PER_THREAD):
                    if seed % 2 == 0:
                        tile = int(rng.integers(horizon // 24))
                        cache.warm(tile * 24, (tile + 1) * 24)
                    window = WINDOW_POOL[rng.integers(len(WINDOW_POOL))]
                    out.append((window, cache.query_window(*window)))
                return out

            results = run_threads(worker)
        for per_thread in results:
            for window, net in per_thread:
                assert_bit_identical(
                    net.adjacency, references[window].adjacency
                )

    def test_single_build_per_tile_under_contention(
        self, conc_logs, small_pop, references
    ):
        """Unbounded cache, every thread asking for the same window: the
        per-tile work happens once, not once per thread."""
        with TileCache(conc_logs, small_pop.n_persons) as cache:

            def worker(_seed: int):
                return cache.query_window(24, 192)

            nets = run_threads(worker)
            # 7 base tiles cover [24, 192); contention must not
            # duplicate builds (the lock serializes plan + insert)
            assert cache.stats.tiles_built == 7
        for net in nets:
            assert_bit_identical(
                net.adjacency, references[(24, 192)].adjacency
            )
