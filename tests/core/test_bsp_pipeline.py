"""Tests for the BSP (MPI-style) synthesis backend."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import synthesize_network
from repro.core.bsp_pipeline import synthesize_network_bsp
from repro.errors import SynthesisError


@pytest.fixture(scope="module")
def serial_net(small_pop, week_result):
    net, _ = synthesize_network(
        week_result.records, small_pop.n_persons, 0, repro.HOURS_PER_WEEK
    )
    return net


class TestEquivalence:
    @pytest.mark.parametrize("n_ranks", [1, 2, 5])
    def test_identical_to_serial(self, small_pop, week_result, serial_net, n_ranks):
        result = synthesize_network_bsp(
            week_result.records,
            small_pop.n_persons,
            0,
            repro.HOURS_PER_WEEK,
            n_ranks,
        )
        assert (result.network.adjacency != serial_net.adjacency).nnz == 0
        assert result.n_ranks == n_ranks

    def test_sub_window(self, small_pop, week_result):
        window, _ = synthesize_network(
            week_result.records, small_pop.n_persons, 20, 80
        )
        result = synthesize_network_bsp(
            week_result.records, small_pop.n_persons, 20, 80, 3
        )
        assert (result.network.adjacency != window.adjacency).nnz == 0


class TestCommunicationProfile:
    def test_single_rank_no_traffic(self, small_pop, week_result):
        result = synthesize_network_bsp(
            week_result.records, small_pop.n_persons, 0, repro.HOURS_PER_WEEK, 1
        )
        assert result.traffic.bytes_sent == 0
        assert result.matrices_moved == 0

    def test_multi_rank_meters_stages(self, small_pop, week_result):
        result = synthesize_network_bsp(
            week_result.records, small_pop.n_persons, 0, repro.HOURS_PER_WEEK, 4
        )
        kinds = result.traffic.by_kind
        # scatter + matrix exchange, nnz allgather, final reduce all appear
        assert kinds.get("alltoall", 0) > 0
        assert kinds.get("allgather", 0) > 0
        assert kinds.get("gather", 0) > 0
        # the balancing step really moves matrices between ranks
        assert result.matrices_moved > 0
        # every place produced exactly one matrix somewhere
        assert result.n_places > 0

    def test_all_places_covered(self, small_pop, week_result):
        from repro.core.slicing import records_by_place, slice_records

        sliced = slice_records(week_result.records, 0, repro.HOURS_PER_WEEK)
        place_ids, _ = records_by_place(sliced)
        result = synthesize_network_bsp(
            week_result.records, small_pop.n_persons, 0, repro.HOURS_PER_WEEK, 3
        )
        assert result.n_places == len(place_ids)


class TestValidation:
    def test_bad_population(self, week_result):
        with pytest.raises(SynthesisError):
            synthesize_network_bsp(week_result.records, 0, 0, 10, 2)

    def test_bad_ranks(self, small_pop, week_result):
        with pytest.raises(SynthesisError):
            synthesize_network_bsp(
                week_result.records, small_pop.n_persons, 0, 10, 0
            )
