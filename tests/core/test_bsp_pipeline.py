"""Tests for the BSP (MPI-style) synthesis backend."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import synthesize_network
from repro.core.bsp_pipeline import synthesize_network_bsp
from repro.errors import SynthesisError


@pytest.fixture(scope="module")
def serial_net(small_pop, week_result):
    net, _ = synthesize_network(
        week_result.records, small_pop.n_persons, 0, repro.HOURS_PER_WEEK
    )
    return net


class TestEquivalence:
    @pytest.mark.parametrize("n_ranks", [1, 2, 5])
    def test_identical_to_serial(self, small_pop, week_result, serial_net, n_ranks):
        result = synthesize_network_bsp(
            week_result.records,
            small_pop.n_persons,
            0,
            repro.HOURS_PER_WEEK,
            n_ranks,
        )
        assert (result.network.adjacency != serial_net.adjacency).nnz == 0
        assert result.n_ranks == n_ranks

    def test_sub_window(self, small_pop, week_result):
        window, _ = synthesize_network(
            week_result.records, small_pop.n_persons, 20, 80
        )
        result = synthesize_network_bsp(
            week_result.records, small_pop.n_persons, 20, 80, 3
        )
        assert (result.network.adjacency != window.adjacency).nnz == 0


class TestCommunicationProfile:
    def test_single_rank_no_traffic(self, small_pop, week_result):
        result = synthesize_network_bsp(
            week_result.records, small_pop.n_persons, 0, repro.HOURS_PER_WEEK, 1
        )
        assert result.traffic.bytes_sent == 0
        assert result.matrices_moved == 0

    def test_multi_rank_meters_stages(self, small_pop, week_result):
        result = synthesize_network_bsp(
            week_result.records, small_pop.n_persons, 0, repro.HOURS_PER_WEEK, 4
        )
        kinds = result.traffic.by_kind
        # scatter + matrix exchange, nnz allgather, final reduce all appear
        assert kinds.get("alltoall", 0) > 0
        assert kinds.get("allgather", 0) > 0
        assert kinds.get("gather", 0) > 0
        # the balancing step really moves matrices between ranks
        assert result.matrices_moved > 0
        # every place produced exactly one matrix somewhere
        assert result.n_places > 0

    def test_all_places_covered(self, small_pop, week_result):
        from repro.core.slicing import records_by_place, slice_records

        sliced = slice_records(week_result.records, 0, repro.HOURS_PER_WEEK)
        place_ids, _ = records_by_place(sliced)
        result = synthesize_network_bsp(
            week_result.records, small_pop.n_persons, 0, repro.HOURS_PER_WEEK, 3
        )
        assert result.n_places == len(place_ids)


class TestValidation:
    def test_bad_population(self, week_result):
        with pytest.raises(SynthesisError):
            synthesize_network_bsp(week_result.records, 0, 0, 10, 2)

    def test_bad_ranks(self, small_pop, week_result):
        with pytest.raises(SynthesisError):
            synthesize_network_bsp(
                week_result.records, small_pop.n_persons, 0, 10, 0
            )


class TestFromLogsBsp:
    @pytest.fixture()
    def log_dir(self, tmp_path):
        from repro.evlog import make_records, write_rank_logs

        rng = np.random.default_rng(31)
        per_rank = []
        for rank in range(4):
            n = 200
            start = rng.integers(0, 80, n).astype(np.uint32)
            per_rank.append(make_records(
                start,
                start + rng.integers(1, 6, n).astype(np.uint32),
                rng.integers(0, 100, n),
                rng.integers(0, 6, n),
                rng.integers(0, 30, n),
            ))
        write_rank_logs(tmp_path, per_rank)
        return tmp_path

    def test_matches_taskpool_pipeline(self, log_dir):
        from repro.core import synthesize_from_logs, synthesize_from_logs_bsp

        expected, _ = synthesize_from_logs(log_dir, 100, 0, 90, batch_size=2)
        result = synthesize_from_logs_bsp(
            log_dir, 100, 0, 90, n_ranks=3, batch_size=2
        )
        assert result.batches == 2
        assert (result.network.adjacency != expected.adjacency).nnz == 0

    def test_quarantines_damaged_file(self, log_dir):
        from repro.core import synthesize_from_logs_bsp
        from repro.errors import LogCorruptError

        bad = log_dir / "rank_0001.evl"
        blob = bytearray(bad.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        bad.write_bytes(bytes(blob))

        result = synthesize_from_logs_bsp(
            log_dir, 100, 0, 90, n_ranks=2, batch_size=16
        )
        assert result.quarantined == [str(bad)]
        with pytest.raises(LogCorruptError):
            synthesize_from_logs_bsp(
                log_dir, 100, 0, 90, n_ranks=2, batch_size=16, strict=True
            )
