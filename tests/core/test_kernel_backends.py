"""Bit-identity contract of the kernel backends.

``backend="masked"`` (compiled masked-triangular SpGEMM, whichever
implementation is available) and ``backend="scipy"`` (the reference) must
produce **bit-identical** CSR adjacencies — same ``data``, ``indices``,
``indptr``, dtypes — for every kernel, on any input.  The property suite
drives randomized logs through every (kernel, backend) pair, deliberately
covering empty windows, empty places, single-person places, and records
straddling the window boundary; the unit tests pin the pure-python
reference loops against scipy directly, so the contract holds even where
no compiled implementation exists.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import synthesize_network
from repro.core.intervals import build_interval_pack
from repro.core.kernels import (
    BACKENDS,
    backend_info,
    check_backend,
    compiled_impl,
    get_workspace,
    resolve_backend,
)
from repro.core.kernels import pyref
from repro.core.kernels.cext import cext_available
from repro.core.slicing import clip_records, slice_records
from repro.errors import SynthesisError
from repro.evlog import make_records

N_PERSONS = 60
T0, T1 = 10, 58


def csr_identical(a, b):
    """Bit-for-bit CSR equality — the contract, not mere closeness."""
    return (
        a.shape == b.shape
        and a.dtype == b.dtype
        and a.indices.dtype == b.indices.dtype
        and np.array_equal(a.data, b.data)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.indptr, b.indptr)
    )


def to_records(rows):
    if not rows:
        return make_records(*(np.empty(0, np.uint32) for _ in range(5)))
    person, place, start, dur = (np.array(c, np.uint32) for c in zip(*rows))
    return make_records(start, start + dur, person, np.zeros_like(place), place)


#: (person, place, start, duration) — starts range past T1 and durations
#: cross T0/T1, so records straddle both window boundaries; small place
#: range forces shared places, while sparse draws leave single-person and
#: empty places
record_lists = st.lists(
    st.tuples(
        st.integers(0, N_PERSONS - 1),
        st.integers(0, 12),
        st.integers(0, 70),
        st.integers(1, 25),
    ),
    max_size=60,
)


class TestBackendBitIdentity:
    @settings(deadline=None, max_examples=40)
    @given(record_lists)
    def test_all_kernel_backend_pairs(self, rows):
        """One adjacency, four (kernel, backend) routes, zero bit drift."""
        rec = to_records(rows)
        ref = None
        for kernel in ("intervals", "dense-hours"):
            for backend in BACKENDS:
                net, report = synthesize_network(
                    rec, N_PERSONS, T0, T1, kernel=kernel, backend=backend
                )
                assert report.backend == backend
                if ref is None:
                    ref = net.adjacency
                else:
                    assert csr_identical(ref, net.adjacency)

    @settings(deadline=None, max_examples=20)
    @given(record_lists)
    def test_pack_fields_identical(self, rows):
        """The compiled pack build yields the reference pack exactly —
        every field, every dtype — not just the same adjacency."""
        rec = slice_records(to_records(rows), T0, T1)
        if not len(rec):
            return
        ref = build_interval_pack(rec, T0, T1, backend="scipy")
        fast = build_interval_pack(rec, T0, T1, backend="masked")
        for name in (
            "places",
            "place_work",
            "place_hours",
            "col_place",
            "col_start",
            "col_weight",
            "persons",
        ):
            a, b = getattr(ref, name), getattr(fast, name)
            assert a.dtype == b.dtype and np.array_equal(a, b), name
        assert csr_identical(ref.matrix, fast.matrix)

    def test_empty_window(self):
        for backend in BACKENDS:
            net, _ = synthesize_network(
                to_records([(0, 0, 1, 5)]), N_PERSONS, 500, 600, backend=backend
            )
            assert net.adjacency.nnz == 0


class TestPyrefAgainstScipy:
    """The reference loops (jitted by numba, ported to C) pinned against
    scipy on small random inputs — interpreted, no compiled code."""

    @pytest.mark.parametrize("seed", range(4))
    def test_masked_spgemm_is_strict_upper_product(self, seed):
        rng = np.random.default_rng(seed)
        n_rows, n_cols = 12, 9
        dense = (rng.random((n_rows, n_cols)) < 0.3).astype(np.uint32)
        y = sp.csr_matrix(dense)
        y.indptr = y.indptr.astype(np.int32)
        y.indices = y.indices.astype(np.int32)
        w = rng.integers(1, 6, n_cols).astype(np.int64)
        nnz = y.nnz
        cp = np.empty(n_cols + 1, np.int64)
        ri = np.empty(max(nnz, 1), np.int32)
        qp = np.empty(max(nnz, 1), np.int64)
        pyref.csr_to_csc(n_rows, n_cols, y.indptr, y.indices, cp, ri, qp)
        acc = np.empty(n_rows, np.int64)
        mark = np.empty(n_rows, np.int32)
        touch = np.empty(n_rows, np.int32)
        cap = n_rows * n_rows
        out_r = np.empty(cap, np.int32)
        out_c = np.empty(cap, np.int32)
        out_v = np.empty(cap, np.int64)
        n = pyref.masked_spgemm(
            n_rows, y.indptr, y.indices, qp, cp, ri, w,
            acc, mark, touch, out_r, out_c, out_v, cap,
        )
        got = sp.coo_matrix(
            (out_v[:n], (out_r[:n], out_c[:n])), shape=(n_rows, n_rows)
        ).toarray()
        full = dense.astype(np.int64) @ np.diag(w) @ dense.T.astype(np.int64)
        assert np.array_equal(got, np.triu(full, k=1))

    def test_spgemm_undersized_buffer_reports_needed(self):
        y = sp.csr_matrix(np.ones((3, 1), np.uint32))
        y.indptr = y.indptr.astype(np.int32)
        y.indices = y.indices.astype(np.int32)
        cp = np.empty(2, np.int64)
        ri = np.empty(3, np.int32)
        qp = np.empty(3, np.int64)
        pyref.csr_to_csc(3, 1, y.indptr, y.indices, cp, ri, qp)
        w = np.ones(1, np.int64)
        scratch = np.empty(3, np.int64), np.empty(3, np.int32), np.empty(3, np.int32)
        tiny = np.empty(1, np.int32), np.empty(1, np.int32), np.empty(1, np.int64)
        n = pyref.masked_spgemm(
            3, y.indptr, y.indices, qp, cp, ri, w, *scratch, *tiny, 1
        )
        assert n == -3  # three upper pairs needed, capacity 1

    @pytest.mark.parametrize("seed", range(4))
    def test_accumulate_trio_matches_scipy(self, seed):
        """pack_triples → sort → keys_to_csr → fill_values equals one
        scipy COO accumulation of the same runs."""
        rng = np.random.default_rng(10 + seed)
        n_rows = 15
        runs = []
        for _ in range(3):
            n_local = int(rng.integers(2, n_rows))
            pmap = np.sort(
                rng.choice(n_rows, size=n_local, replace=False)
            ).astype(np.int64)
            cnt = int(rng.integers(0, 12))
            # rows ascending per run, like the SpGEMM emits them
            rows = np.sort(rng.integers(0, n_local, cnt)).astype(np.int32)
            cols = rng.integers(0, n_local, cnt).astype(np.int32)
            vals = rng.integers(1, 9, cnt).astype(np.int64)
            runs.append((rows, cols, vals, pmap))
        total = sum(len(r[0]) for r in runs)
        keys = np.empty(max(total, 1), np.int64)
        run_ptr = np.zeros(len(runs) + 1, np.int64)
        vals_cat = np.empty(max(total, 1), np.int64)
        base = 0
        for i, (rows, cols, vals, pmap) in enumerate(runs):
            end = base + len(rows)
            pyref.pack_triples(
                len(rows), rows, cols, pmap, 1, keys[base:end]
            )
            vals_cat[base:end] = vals
            run_ptr[i + 1] = end
            base = end
        keys_sorted = np.sort(keys[:total])
        indptr = np.empty(n_rows + 1, np.int32)
        cols_out = np.empty(max(total, 1), np.int32)
        nnz = pyref.keys_to_csr(keys_sorted, total, n_rows, indptr, cols_out)
        acc = np.empty(n_rows, np.int64)
        mark = np.empty(n_rows, np.int32)
        cursor = np.empty(len(runs), np.int64)
        vals_out = np.empty(max(total, 1), np.int64)
        pyref.fill_values(
            len(runs), run_ptr, keys[:total], vals_cat[:total], n_rows,
            indptr, cols_out, acc, mark, cursor, vals_out,
        )
        got = sp.csr_matrix(
            (vals_out[:nnz], cols_out[:nnz], indptr), shape=(n_rows, n_rows)
        )
        parts = [
            sp.coo_matrix(
                (vals, (pmap[rows], pmap[cols])), shape=(n_rows, n_rows)
            )
            for rows, cols, vals, pmap in runs
        ]
        want = (
            sp.coo_matrix(
                (
                    np.concatenate([p.data for p in parts]),
                    (
                        np.concatenate([p.row for p in parts]),
                        np.concatenate([p.col for p in parts]),
                    ),
                ),
                shape=(n_rows, n_rows),
            ).tocsr()
            if total
            else sp.csr_matrix((n_rows, n_rows), dtype=np.int64)
        )
        assert np.array_equal(got.toarray(), want.toarray())

    def test_pack_triples_identity_map(self):
        rows = np.array([0, 2], np.int32)
        cols = np.array([1, 3], np.int32)
        keys = np.empty(2, np.int64)
        pyref.pack_triples(2, rows, cols, np.empty(0, np.int64), 0, keys)
        assert list(keys) == [(0 << 32) | 1, (2 << 32) | 3]


class TestBackendResolution:
    def test_check_backend_rejects_unknown(self):
        with pytest.raises(SynthesisError):
            check_backend("cuda")

    def test_resolve_concrete_passthrough(self):
        assert resolve_backend("scipy") == "scipy"
        assert resolve_backend("masked") == "masked"
        assert resolve_backend(None) in BACKENDS
        assert resolve_backend("auto") in BACKENDS

    def test_numpy_forcing_disables_compiled_impl(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_IMPL", "numpy")
        assert compiled_impl() is None
        # auto therefore falls back to the reference backend
        assert resolve_backend("auto") == "scipy"
        # an explicit masked request still runs (degrading internally)
        net, report = synthesize_network(
            to_records([(0, 0, 12, 5), (1, 0, 12, 5)]),
            N_PERSONS, T0, T1, backend="masked",
        )
        assert report.backend == "masked"
        assert net.adjacency.nnz == 1

    def test_backend_info_shape(self):
        info = backend_info()
        assert info["default"] in BACKENDS
        assert info["compiled_impl"] in ("cext", "numba", None)


class TestWorkspacePooling:
    def test_take_reuses_buffers(self):
        ws = get_workspace()
        ws.clear()
        a = ws.take("t_pool", 100, np.int64)
        grows = ws.grows
        b = ws.take("t_pool", 80, np.int64)
        assert b.base is a.base  # same backing buffer, no allocation
        assert ws.grows == grows
        c = ws.take("t_pool", 10_000, np.int64)
        assert len(c) == 10_000 and ws.grows == grows + 1
        ws.clear()

    def test_take_is_per_name_and_dtype(self):
        ws = get_workspace()
        ws.clear()
        a = ws.take("t_a", 64, np.int64)
        b = ws.take("t_b", 64, np.int32)
        assert a.base is not b.base
        # dtype change on one name reallocates rather than aliasing
        c = ws.take("t_a", 64, np.int32)
        assert c.dtype == np.int32
        ws.clear()

    def test_steady_state_synthesis_stops_allocating(self):
        """Second identical run through the masked path must be all pool
        hits — the preallocated-workspace claim, asserted."""
        if compiled_impl() is None:
            pytest.skip("no compiled implementation available")
        rng = np.random.default_rng(5)
        rows = [
            (int(rng.integers(0, N_PERSONS)), int(rng.integers(0, 6)),
             int(rng.integers(0, 40)), int(rng.integers(1, 10)))
            for _ in range(200)
        ]
        rec = to_records(rows)
        ws = get_workspace()
        synthesize_network(rec, N_PERSONS, T0, T1, backend="masked")
        grows = ws.grows
        synthesize_network(rec, N_PERSONS, T0, T1, backend="masked")
        assert ws.grows == grows


@pytest.mark.skipif(not cext_available(), reason="no C compiler / cext")
class TestCompiledGuards:
    """The compiled pack build must decline — not corrupt — inputs the
    reference semantics reserve."""

    def _cols(self, rec, t0=T0, t1=T1):
        rec = clip_records(rec, t0, t1)
        return (
            rec["start"].astype(np.int64),
            rec["stop"].astype(np.int64),
            rec["person"].astype(np.int64),
            rec["place"].astype(np.int64),
        )

    def test_zero_length_record_falls_back(self):
        from repro.core.kernels.masked import build_pack_arrays

        start = np.array([5, 7], np.int64)
        stop = np.array([5, 9], np.int64)  # first record covers nothing
        person = np.array([1, 2], np.int64)
        place = np.array([0, 0], np.int64)
        assert build_pack_arrays(start, stop, person, place, 0, 24) is None

    def test_negative_place_falls_back(self):
        from repro.core.kernels.masked import build_pack_arrays

        start = np.array([1], np.int64)
        stop = np.array([3], np.int64)
        person = np.array([1], np.int64)
        place = np.array([-1], np.int64)
        assert build_pack_arrays(start, stop, person, place, 0, 24) is None

    def test_huge_person_id_falls_back(self):
        from repro.core.kernels.masked import build_pack_arrays

        start = np.array([1], np.int64)
        stop = np.array([3], np.int64)
        person = np.array([2**32], np.int64)
        place = np.array([0], np.int64)
        assert build_pack_arrays(start, stop, person, place, 0, 24) is None

    def test_build_matches_reference_on_tricky_window(self):
        from repro.core.kernels.masked import build_pack_arrays

        rng = np.random.default_rng(9)
        rows = [
            (int(rng.integers(0, N_PERSONS)), int(rng.integers(0, 8)),
             int(rng.integers(0, 70)), int(rng.integers(1, 25)))
            for _ in range(300)
        ]
        rec = slice_records(to_records(rows), T0, T1)
        fields = build_pack_arrays(*self._cols(rec), T0, T1)
        assert fields is not None
        ref = build_interval_pack(rec, T0, T1, backend="scipy")
        for name in ("places", "col_place", "col_start", "col_weight", "persons"):
            assert np.array_equal(fields[name], getattr(ref, name)), name
        assert csr_identical(fields["matrix"], ref.matrix)
