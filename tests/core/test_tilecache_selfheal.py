"""Self-healing persisted tiles: quarantine + transparent rebuild.

The store's contract after this layer: a damaged tile file — flipped
bits, torn write, truncation, even a valid-CRC-but-undecodable archive —
is *never* served.  It is renamed aside with a ``.quarantined`` suffix,
dropped from the manifest, and the tile is rebuilt from the logs so
every answer stays bit-identical to a direct synthesis.  v1 manifests
(no CRCs) are treated as stale wholesale.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.core import TileCache, synthesize_from_logs
from repro.core.tilecache import TILE_MANIFEST

from .test_tilecache import assert_bit_identical, direct, tile_logs  # noqa: F401


def make_store(tile_logs, small_pop, tmp_path, subdir="store"):
    d = tmp_path / subdir
    with TileCache(tile_logs, small_pop.n_persons, cache_dir=d) as cache:
        cache.query_window(0, 336)  # persist every base tile + merges
    return d


def tile_files(store):
    return sorted(p for p in store.glob("tile_*.npz"))


class TestQuarantine:
    def test_flipped_bits_quarantined_and_rebuilt_bit_identical(
        self, tile_logs, small_pop, tmp_path
    ):
        store = make_store(tile_logs, small_pop, tmp_path)
        victim = tile_files(store)[0]
        raw = bytearray(victim.read_bytes())
        mid = len(raw) // 2
        raw[mid] ^= 0xFF
        victim.write_bytes(bytes(raw))

        with TileCache(
            tile_logs, small_pop.n_persons, cache_dir=store, budget_nnz=1
        ) as cache:
            # the corrupted base tile's own window forces its load
            net = cache.query_window(0, 24)
            ref = direct(tile_logs, small_pop.n_persons, 0, 24)
            assert_bit_identical(net.adjacency, ref.adjacency)
            assert cache.stats.tiles_quarantined == 1
            assert any(
                "crc mismatch" in entry for entry in cache.quarantined_tiles
            )
            # and the full window still composes bit-identically
            net = cache.query_window(0, 336)
            ref = direct(tile_logs, small_pop.n_persons, 0, 336)
            assert_bit_identical(net.adjacency, ref.adjacency)
        # evidence preserved, live name freed for the rebuilt tile
        assert victim.with_name(victim.name + ".quarantined").is_file()
        assert victim.is_file()  # re-persisted clean
        # the rewritten manifest CRC matches the rebuilt file
        manifest = json.loads((store / TILE_MANIFEST).read_text())
        entries = {
            e["file"]: e["crc"] for e in manifest["tiles"].values()
        }
        assert entries[victim.name] == zlib.crc32(victim.read_bytes())

    def test_truncated_tile_quarantined_and_rebuilt(
        self, tile_logs, small_pop, tmp_path
    ):
        store = make_store(tile_logs, small_pop, tmp_path)
        victim = tile_files(store)[1]  # base tile [24, 48)
        raw = victim.read_bytes()
        victim.write_bytes(raw[: len(raw) // 3])  # torn write

        with TileCache(
            tile_logs, small_pop.n_persons, cache_dir=store, budget_nnz=1
        ) as cache:
            net = cache.query_window(24, 48)
            ref = direct(tile_logs, small_pop.n_persons, 24, 48)
            assert_bit_identical(net.adjacency, ref.adjacency)
            assert cache.stats.tiles_quarantined == 1

    def test_missing_tile_file_quarantined_as_unreadable(
        self, tile_logs, small_pop, tmp_path
    ):
        store = make_store(tile_logs, small_pop, tmp_path)
        victim = tile_files(store)[0]
        victim.unlink()

        with TileCache(
            tile_logs, small_pop.n_persons, cache_dir=store, budget_nnz=1
        ) as cache:
            # adoption skips entries whose file vanished, so the tile is
            # simply rebuilt; no damage is ever served either way
            net = cache.query_window(0, 24)
            ref = direct(tile_logs, small_pop.n_persons, 0, 24)
            assert_bit_identical(net.adjacency, ref.adjacency)
            assert cache.stats.tiles_built >= 1

    def test_every_tile_corrupted_still_answers_bit_identical(
        self, tile_logs, small_pop, tmp_path
    ):
        store = make_store(tile_logs, small_pop, tmp_path)
        n = len(tile_files(store))
        for victim in tile_files(store):
            raw = bytearray(victim.read_bytes())
            raw[len(raw) // 2] ^= 0xFF
            victim.write_bytes(bytes(raw))

        with TileCache(
            tile_logs, small_pop.n_persons, cache_dir=store, budget_nnz=1
        ) as cache:
            net = cache.query_window(0, 336)
            ref = direct(tile_logs, small_pop.n_persons, 0, 336)
            assert_bit_identical(net.adjacency, ref.adjacency)
            assert cache.stats.tiles_quarantined == n

    def test_quarantined_tile_repersists_and_next_open_is_clean(
        self, tile_logs, small_pop, tmp_path
    ):
        store = make_store(tile_logs, small_pop, tmp_path)
        victim = tile_files(store)[0]
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        victim.write_bytes(bytes(raw))

        with TileCache(
            tile_logs, small_pop.n_persons, cache_dir=store, budget_nnz=1
        ) as cache:
            cache.query_window(0, 24)
            assert cache.stats.tiles_quarantined == 1
        # the rebuilt tile was re-persisted with a fresh CRC: a new cache
        # adopts the store with nothing left to heal
        with TileCache(
            tile_logs, small_pop.n_persons, cache_dir=store, budget_nnz=1
        ) as cache:
            net = cache.query_window(0, 24)
            ref = direct(tile_logs, small_pop.n_persons, 0, 24)
            assert_bit_identical(net.adjacency, ref.adjacency)
            assert cache.stats.tiles_quarantined == 0
            assert cache.stats.disk_hits > 0


class TestManifestVersioning:
    def test_v1_manifest_without_crcs_is_discarded_as_stale(
        self, tile_logs, small_pop, tmp_path
    ):
        store = make_store(tile_logs, small_pop, tmp_path)
        manifest_path = store / TILE_MANIFEST
        manifest = json.loads(manifest_path.read_text())
        # rewrite as a v1 store: bare filename entries, no CRCs
        manifest["version"] = 1
        manifest["tiles"] = {
            k: e["file"] for k, e in manifest["tiles"].items()
        }
        manifest_path.write_text(json.dumps(manifest))

        with TileCache(
            tile_logs, small_pop.n_persons, cache_dir=store
        ) as cache:
            assert cache.stats.invalidated > 0
            assert not tile_files(store)  # v1 files unlinked wholesale
            net = cache.query_window(0, 48)
            ref = direct(tile_logs, small_pop.n_persons, 0, 48)
            assert_bit_identical(net.adjacency, ref.adjacency)

    def test_v2_entry_missing_crc_is_not_adopted(
        self, tile_logs, small_pop, tmp_path
    ):
        store = make_store(tile_logs, small_pop, tmp_path)
        manifest_path = store / TILE_MANIFEST
        manifest = json.loads(manifest_path.read_text())
        for entry in manifest["tiles"].values():
            entry.pop("crc")
        manifest_path.write_text(json.dumps(manifest))

        with TileCache(
            tile_logs, small_pop.n_persons, cache_dir=store
        ) as cache:
            # nothing adopted: every query rebuilds (no disk hits), but
            # answers stay correct
            net = cache.query_window(0, 48)
            ref = direct(tile_logs, small_pop.n_persons, 0, 48)
            assert_bit_identical(net.adjacency, ref.adjacency)
            assert cache.stats.disk_hits == 0
