"""Merge fast paths: pre-sorted inputs must not change a single bit.

``merge_packs`` takes a concatenation shortcut when the packs'
place ranges are disjoint and ordered (the overwhelmingly common case:
rank logs and shards are place-local), and ``merge_collocations`` takes
a matrix-sum shortcut when every partial shares one person roster.
Both must be **bit-identical** to the general slow paths — these tests
pin fast against slow on random inputs and check the routing predicate
itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.colloc import build_collocation_matrices, merge_collocations
from repro.core.intervals import (
    IntervalPack,
    _merge_packs_concat,
    _merge_packs_reunion,
    _packs_place_disjoint,
    build_interval_pack,
    merge_packs,
    sum_pack_adjacency,
)
from repro.core.slicing import slice_records
from tests.core.test_kernel_equivalence import (
    N_PERSONS,
    N_PLACES,
    T0,
    T1,
    csr_identical,
    tricky_records,
)


def pack_identical(a: IntervalPack, b: IntervalPack) -> bool:
    return (
        np.array_equal(a.places, b.places)
        and a.places.dtype == b.places.dtype
        and np.array_equal(a.place_work, b.place_work)
        and np.array_equal(a.place_hours, b.place_hours)
        and np.array_equal(a.col_place, b.col_place)
        and np.array_equal(a.col_start, b.col_start)
        and np.array_equal(a.col_weight, b.col_weight)
        and np.array_equal(a.persons, b.persons)
        and a.persons.dtype == b.persons.dtype
        and csr_identical(a.matrix, b.matrix)
        and (a.t0, a.t1) == (b.t0, b.t1)
    )


def disjoint_packs(seed, n_parts=4):
    """Per-part packs over disjoint, ascending place ranges."""
    rng = np.random.default_rng(seed)
    packs = []
    width = N_PLACES // n_parts
    for part in range(n_parts):
        rec = tricky_records(rng, n_records=150)
        rec["place"] = rec["place"] % width + part * width
        packs.append(build_interval_pack(slice_records(rec, T0, T1), T0, T1))
    return packs


class TestPackMergeFastPath:
    @pytest.mark.parametrize("seed", range(6))
    def test_concat_equals_reunion(self, seed):
        packs = disjoint_packs(seed)
        assert _packs_place_disjoint(packs)
        fast = _merge_packs_concat(packs)
        slow = _merge_packs_reunion(packs)
        assert pack_identical(fast, slow)

    @pytest.mark.parametrize("seed", range(6))
    def test_merged_adjacency_identical(self, seed):
        """The consumer-visible contract: identical adjacency either way."""
        packs = disjoint_packs(100 + seed)
        merged = merge_packs(packs)
        a = sum_pack_adjacency([merged], N_PERSONS)
        b = sum_pack_adjacency([_merge_packs_reunion(packs)], N_PERSONS)
        assert csr_identical(a, b)

    def test_overlapping_places_route_to_reunion(self):
        rng = np.random.default_rng(9)
        rec_a = tricky_records(rng, n_records=150)
        rec_b = tricky_records(rng, n_records=150)
        packs = [
            build_interval_pack(slice_records(r, T0, T1), T0, T1)
            for r in (rec_a, rec_b)
        ]
        assert not _packs_place_disjoint(packs)
        merged = merge_packs(packs)
        assert pack_identical(merged, _merge_packs_reunion(packs))

    def test_fast_path_does_not_mutate_inputs(self):
        packs = disjoint_packs(11)
        before = [
            (p.matrix.data.copy(), p.places.copy(), p.col_place.copy())
            for p in packs
        ]
        merge_packs(packs)
        for p, (data, places, col_place) in zip(packs, before):
            assert np.array_equal(p.matrix.data, data)
            assert np.array_equal(p.places, places)
            assert np.array_equal(p.col_place, col_place)

    def test_single_pack_passthrough(self):
        (pack,) = disjoint_packs(12, n_parts=1)
        assert merge_packs([pack]) is pack


class TestCollocMergeFastPath:
    def _partials(self, seed, same_roster):
        """Split one place's records into partials; with ``same_roster``
        each partial is rebuilt over the union roster (the fast path)."""
        rng = np.random.default_rng(seed)
        rec = slice_records(tricky_records(rng, n_records=400), T0, T1)
        rec["place"][:] = 7
        full = build_collocation_matrices(rec, T0, T1)[0]
        thirds = [rec[i::3] for i in range(3)]
        mats = [build_collocation_matrices(t, T0, T1)[0] for t in thirds]
        if same_roster:
            # re-index every partial onto the union roster
            import scipy.sparse as sp

            persons = full.persons
            out = []
            for m in mats:
                coo = m.matrix.tocoo()
                x = sp.coo_matrix(
                    (
                        np.ones(coo.nnz, dtype=np.uint32),
                        (np.searchsorted(persons, m.persons)[coo.row], coo.col),
                    ),
                    shape=(len(persons), T1 - T0),
                ).tocsr()
                out.append(
                    type(m)(
                        place=m.place, persons=persons, matrix=x,
                        t0=m.t0, t1=m.t1,
                    )
                )
            mats = out
        return full, mats

    @pytest.mark.parametrize("seed", range(5))
    def test_identical_rosters_fast_path(self, seed):
        full, mats = self._partials(seed, same_roster=True)
        merged = merge_collocations(mats)
        assert np.array_equal(merged.persons, full.persons)
        assert csr_identical(merged.matrix, full.matrix)
        assert merged.matrix.dtype == full.matrix.dtype

    @pytest.mark.parametrize("seed", range(5))
    def test_distinct_rosters_general_path(self, seed):
        full, mats = self._partials(50 + seed, same_roster=False)
        merged = merge_collocations(mats)
        assert np.array_equal(merged.persons, full.persons)
        assert csr_identical(merged.matrix, full.matrix)

    def test_fast_path_does_not_mutate_inputs(self):
        _, mats = self._partials(3, same_roster=True)
        before = [m.matrix.data.copy() for m in mats]
        merge_collocations(mats)
        for m, data in zip(mats, before):
            assert np.array_equal(m.matrix.data, data)
