"""Tests for per-place collocation matrix construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.colloc import (
    build_collocation_matrices,
    collocation_matrix_for_place,
)
from repro.errors import SynthesisError
from repro.evlog.schema import make_records


class TestSingleMatrix:
    def test_presence_bits(self):
        # person 3 present hours [2,5), person 8 hours [4,6)
        rec = make_records([2, 4], [5, 6], [3, 8], [0, 0], [7, 7])
        m = collocation_matrix_for_place(7, rec, 0, 8)
        assert m.persons.tolist() == [3, 8]
        dense = m.matrix.toarray()
        assert dense.shape == (2, 8)
        assert dense[0].tolist() == [0, 0, 1, 1, 1, 0, 0, 0]
        assert dense[1].tolist() == [0, 0, 0, 0, 1, 1, 0, 0]
        assert m.nnz == 5

    def test_same_person_multiple_visits(self):
        rec = make_records([0, 5], [2, 7], [4, 4], [0, 1], [9, 9])
        m = collocation_matrix_for_place(9, rec, 0, 10)
        assert m.n_persons == 1
        assert m.matrix.toarray()[0].tolist() == [1, 1, 0, 0, 0, 1, 1, 0, 0, 0]

    def test_duplicate_hours_counted_once(self):
        """Overlapping records for one (person, hour) stay binary."""
        rec = make_records([0, 1], [3, 4], [4, 4], [0, 1], [9, 9])
        m = collocation_matrix_for_place(9, rec, 0, 5)
        assert m.matrix.max() == 1
        assert m.nnz == 4  # hours 0,1,2,3

    def test_foreign_place_rejected(self):
        rec = make_records([0], [1], [0], [0], [5])
        with pytest.raises(SynthesisError):
            collocation_matrix_for_place(6, rec, 0, 4)

    def test_unclipped_records_rejected(self):
        rec = make_records([0], [10], [0], [0], [5])
        with pytest.raises(SynthesisError):
            collocation_matrix_for_place(5, rec, 0, 4)

    def test_empty_rejected(self):
        with pytest.raises(SynthesisError):
            collocation_matrix_for_place(5, make_records([], [], [], [], []), 0, 4)


class TestBuildAll:
    def test_one_matrix_per_place(self):
        rec = make_records(
            [0, 0, 1], [2, 3, 2], [1, 2, 3], [0, 0, 0], [5, 6, 5]
        )
        ms = build_collocation_matrices(rec, 0, 4)
        assert sorted(m.place for m in ms) == [5, 6]
        by_place = {m.place: m for m in ms}
        assert by_place[5].persons.tolist() == [1, 3]
        assert by_place[6].persons.tolist() == [2]

    def test_nnz_is_person_hours(self, week_result, small_pop):
        import repro

        from repro.core.slicing import slice_records

        sliced = slice_records(week_result.records, 0, repro.HOURS_PER_WEEK)
        ms = build_collocation_matrices(sliced, 0, repro.HOURS_PER_WEEK)
        total = sum(m.nnz for m in ms)
        # every person exists somewhere every hour of the week
        assert total == small_pop.n_persons * repro.HOURS_PER_WEEK
