"""Checkpoint/resume, worker-crash recovery, and quarantine for
``synthesize_from_logs`` — the acceptance scenarios of the robustness layer.

The central invariant: however a run is interrupted (a raising worker
task, a killed process between batches) and however it is brought back
(pool-level retries, checkpoint resume), the final adjacency matrix is
bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import synthesize_from_logs
from repro.core.pipeline import (
    CHECKPOINT_MANIFEST,
    CHECKPOINT_PARTIAL,
    checkpoint_digest,
    load_checkpoint_manifest,
)
from repro.distrib import RetryPolicy, SerialPool, ThreadPool
from repro.errors import CheckpointError, LogCorruptError
from repro.evlog import LogSet, make_records, write_rank_logs
from tests._faults import FlakyPool, WorkerCrash

N_PERSONS = 120
N_PLACES = 40
T0, T1 = 0, 100
NO_SLEEP = RetryPolicy(max_attempts=3, base_delay=0.0)


def random_rank_records(rng, n_records):
    start = rng.integers(0, 90, n_records).astype(np.uint32)
    stop = start + rng.integers(1, 8, n_records).astype(np.uint32)
    return make_records(
        start,
        stop,
        rng.integers(0, N_PERSONS, n_records),
        rng.integers(0, 6, n_records),
        rng.integers(0, N_PLACES, n_records),
    )


def write_random_logs(directory, seed, n_ranks=6, records_per_rank=300):
    rng = np.random.default_rng(seed)
    per_rank = [random_rank_records(rng, records_per_rank) for _ in range(n_ranks)]
    write_rank_logs(directory, per_rank)
    return directory


def identical(a, b):
    """Bit-for-bit CSR equality, not just numerical closeness."""
    return (
        a.adjacency.shape == b.adjacency.shape
        and np.array_equal(a.adjacency.data, b.adjacency.data)
        and np.array_equal(a.adjacency.indices, b.adjacency.indices)
        and np.array_equal(a.adjacency.indptr, b.adjacency.indptr)
    )


class TestCheckpointResumeEquivalence:
    """Property: for random record sets and random interrupt points, a
    resumed run reproduces the uninterrupted run bit-for-bit."""

    @pytest.mark.parametrize("seed", range(5))
    def test_resume_matches_uninterrupted(self, tmp_path, seed):
        logs = write_random_logs(tmp_path / "logs", seed)
        baseline, base_report = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=2
        )
        assert base_report.batches == 3

        # every non-empty batch issues two pool.map calls (collocation +
        # adjacency); dying on call 2*k kills the run inside batch k
        rng = np.random.default_rng(1000 + seed)
        die_call = int(rng.integers(0, 6))
        ckpt = tmp_path / "ckpt"
        pool = FlakyPool(SerialPool(), die_on_calls={die_call})
        with pytest.raises(WorkerCrash):
            synthesize_from_logs(
                logs, N_PERSONS, T0, T1, batch_size=2,
                pool=pool, checkpoint=ckpt,
            )
        pool.inner.close()

        done_batches = die_call // 2
        if done_batches:
            manifest = load_checkpoint_manifest(ckpt)
            assert manifest["batches_done"] == done_batches
            resumed, report = synthesize_from_logs(
                logs, N_PERSONS, T0, T1, batch_size=2, resume=ckpt
            )
            assert report.resumed_batches == done_batches
        else:
            # killed inside batch 0: nothing committed, start clean
            resumed, report = synthesize_from_logs(
                logs, N_PERSONS, T0, T1, batch_size=2
            )
        assert report.batches == 3
        assert identical(baseline, resumed)
        assert report.n_records == base_report.n_records
        assert report.n_places == base_report.n_places

    def test_resume_after_every_batch_boundary(self, tmp_path):
        """Kill cleanly after each batch in turn; every resume must match."""
        logs = write_random_logs(tmp_path / "logs", seed=42)
        baseline, _ = synthesize_from_logs(logs, N_PERSONS, T0, T1, batch_size=2)
        for done in (1, 2):
            ckpt = tmp_path / f"ckpt_{done}"
            pool = FlakyPool(SerialPool(), die_on_calls={2 * done})
            with pytest.raises(WorkerCrash):
                synthesize_from_logs(
                    logs, N_PERSONS, T0, T1, batch_size=2,
                    pool=pool, checkpoint=ckpt,
                )
            pool.inner.close()
            resumed, report = synthesize_from_logs(
                logs, N_PERSONS, T0, T1, batch_size=2, resume=ckpt
            )
            assert report.resumed_batches == done
            assert identical(baseline, resumed)


class TestCheckpointSafety:
    def test_resume_refuses_mismatched_config(self, tmp_path):
        logs = write_random_logs(tmp_path / "logs", seed=3)
        ckpt = tmp_path / "ckpt"
        synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=2, checkpoint=ckpt
        )
        # different window
        with pytest.raises(CheckpointError):
            synthesize_from_logs(
                logs, N_PERSONS, T0, T1 - 10, batch_size=2, resume=ckpt
            )
        # different batch size
        with pytest.raises(CheckpointError):
            synthesize_from_logs(
                logs, N_PERSONS, T0, T1, batch_size=3, resume=ckpt
            )
        # different population
        with pytest.raises(CheckpointError):
            synthesize_from_logs(
                logs, N_PERSONS + 1, T0, T1, batch_size=2, resume=ckpt
            )

    def test_resume_refuses_missing_checkpoint(self, tmp_path):
        logs = write_random_logs(tmp_path / "logs", seed=4)
        with pytest.raises(CheckpointError):
            synthesize_from_logs(
                logs, N_PERSONS, T0, T1, batch_size=2,
                resume=tmp_path / "nowhere",
            )

    def test_digest_changes_with_file_list(self, tmp_path):
        logs = write_random_logs(tmp_path / "logs", seed=5, n_ranks=4)
        log_set = LogSet(logs)
        d1 = checkpoint_digest(log_set, N_PERSONS, T0, T1, 2)
        (logs / "rank_0003.evl").unlink()
        d2 = checkpoint_digest(LogSet(logs), N_PERSONS, T0, T1, 2)
        assert d1 != d2

    def test_completed_run_resumes_as_noop(self, tmp_path):
        logs = write_random_logs(tmp_path / "logs", seed=6)
        ckpt = tmp_path / "ckpt"
        baseline, _ = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=2, checkpoint=ckpt
        )
        assert (ckpt / CHECKPOINT_MANIFEST).is_file()
        assert (ckpt / CHECKPOINT_PARTIAL).is_file()
        resumed, report = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=2, resume=ckpt
        )
        assert report.resumed_batches == 3
        assert identical(baseline, resumed)


class TestWorkerCrashRecovery:
    """Acceptance: a worker crash in batch 2 of 4 is retried and the run
    completes with the correct network and the retries on record."""

    def test_injected_crash_mid_run_recovers(self, tmp_path):
        logs = write_random_logs(tmp_path / "logs", seed=7, n_ranks=8)
        baseline, _ = synthesize_from_logs(logs, N_PERSONS, T0, T1, batch_size=2)

        # batch 2 (zero-based batch index 1) = map calls 2 and 3; fail the
        # first attempt of two tasks inside its collocation stage
        pool = FlakyPool(
            SerialPool(retry=NO_SLEEP), fail_tasks={2: {0, 1}}
        )
        net, report = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=2, pool=pool
        )
        pool.inner.close()
        assert identical(baseline, net)
        assert report.batches == 4
        assert report.n_retries == 2

    def test_crash_recovery_with_threads(self, tmp_path):
        logs = write_random_logs(tmp_path / "logs", seed=8)
        baseline, _ = synthesize_from_logs(logs, N_PERSONS, T0, T1, batch_size=2)
        pool = FlakyPool(
            ThreadPool(2, retry=NO_SLEEP), fail_tasks={0: {0}, 4: {1}}
        )
        net, report = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=2, pool=pool
        )
        pool.inner.close()
        assert identical(baseline, net)
        assert report.n_retries == 2

    def test_unrecoverable_crash_still_fails(self, tmp_path):
        logs = write_random_logs(tmp_path / "logs", seed=9)
        pool = FlakyPool(SerialPool(), die_on_calls={2})
        with pytest.raises(WorkerCrash):
            synthesize_from_logs(
                logs, N_PERSONS, T0, T1, batch_size=2, pool=pool
            )
        pool.inner.close()


class TestQuarantine:
    """Acceptance: quarantining one corrupted file yields the same network
    as synthesizing the remaining files directly; strict=True raises."""

    @staticmethod
    def _corrupt(path):
        """Flip one byte mid-file: a chunk CRC failure, not a bad header."""
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

    def test_quarantine_matches_remaining_files(self, tmp_path):
        logs = write_random_logs(tmp_path / "logs", seed=10, n_ranks=4)
        bad = logs / "rank_0002.evl"

        # reference: only the three good files, in their own directory
        good_dir = tmp_path / "good"
        good_dir.mkdir()
        for p in sorted(logs.iterdir()):
            if p.name != bad.name:
                (good_dir / p.name).write_bytes(p.read_bytes())
        reference, _ = synthesize_from_logs(
            good_dir, N_PERSONS, T0, T1, batch_size=16
        )

        self._corrupt(bad)
        net, report = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=16
        )
        assert identical(reference, net)
        assert report.quarantined == [str(bad)]
        assert report.skipped_records >= 0

    def test_strict_mode_still_raises(self, tmp_path):
        logs = write_random_logs(tmp_path / "logs", seed=11, n_ranks=4)
        self._corrupt(logs / "rank_0001.evl")
        with pytest.raises(LogCorruptError):
            synthesize_from_logs(
                logs, N_PERSONS, T0, T1, batch_size=16, strict=True
            )

    def test_quarantine_and_checkpoint_compose(self, tmp_path):
        """A corrupt file plus a mid-run kill: resume still matches the
        quarantined baseline and keeps the quarantine record."""
        logs = write_random_logs(tmp_path / "logs", seed=12, n_ranks=6)
        self._corrupt(logs / "rank_0003.evl")
        baseline, base_report = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=2
        )
        assert len(base_report.quarantined) == 1

        ckpt = tmp_path / "ckpt"
        pool = FlakyPool(SerialPool(), die_on_calls={4})
        with pytest.raises(WorkerCrash):
            synthesize_from_logs(
                logs, N_PERSONS, T0, T1, batch_size=2,
                pool=pool, checkpoint=ckpt,
            )
        pool.inner.close()
        resumed, report = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=2, resume=ckpt
        )
        assert identical(baseline, resumed)
        assert report.quarantined == base_report.quarantined
