"""Tests for streaming multi-week synthesis and temporal statistics."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.core import CollocationNetwork, StreamingSynthesizer, WeeklyNetworkSeries
from repro.distrib import DistributedSimulation, spatial_partition
from repro.errors import SynthesisError
from repro.evlog import LogSet
from repro.sim import Simulation


@pytest.fixture(scope="module")
def two_week_logs(tmp_path_factory, small_pop):
    d = tmp_path_factory.mktemp("stream-logs")
    cfg = repro.SimulationConfig(
        scale=small_pop.scale,
        duration_hours=2 * repro.HOURS_PER_WEEK,
        n_ranks=4,
    )
    part = spatial_partition(
        small_pop.places.coords(), small_pop.places.capacity.astype(float), 4
    )
    DistributedSimulation(small_pop, cfg, part).run(log_dir=d)
    return d


class TestStreaming:
    def test_total_equals_whole_synthesis(self, small_pop, two_week_logs):
        series = StreamingSynthesizer(small_pop.n_persons).process(
            str(two_week_logs), 2
        )
        total = series.total()
        cfg = repro.SimulationConfig(
            scale=small_pop.scale, duration_hours=2 * repro.HOURS_PER_WEEK
        )
        serial = Simulation(small_pop, cfg).run_fast()
        whole, _ = repro.synthesize_network(
            serial.records, small_pop.n_persons, 0, 2 * repro.HOURS_PER_WEEK
        )
        assert (total.adjacency != whole.adjacency).nnz == 0

    def test_interval_count(self, small_pop, two_week_logs):
        series = StreamingSynthesizer(small_pop.n_persons).process(
            LogSet(two_week_logs), 2
        )
        assert series.n_intervals == 2
        assert (series.interval_edge_counts() > 0).all()

    def test_invalid_intervals(self, small_pop, two_week_logs):
        with pytest.raises(SynthesisError):
            StreamingSynthesizer(small_pop.n_persons).process(
                str(two_week_logs), 0
            )
        with pytest.raises(SynthesisError):
            StreamingSynthesizer(small_pop.n_persons, interval_hours=0)


def series_from(adjs):
    return WeeklyNetworkSeries(
        networks=[
            CollocationNetwork(sp.csr_matrix(a, dtype=np.int64)) for a in adjs
        ],
        interval_hours=1,
    )


class TestTemporalStats:
    def test_persistence_exact(self):
        a1 = np.triu(np.array([
            [0, 1, 1], [0, 0, 1], [0, 0, 0],
        ]), 1)
        a2 = np.triu(np.array([
            [0, 1, 0], [0, 0, 1], [0, 0, 0],
        ]), 1)
        series = series_from([a1, a2])
        # 2 of week-1's 3 edges survive
        assert series.edge_persistence().tolist() == [pytest.approx(2 / 3)]

    def test_recurrence_exact(self):
        a1 = np.triu(np.array([[0, 1, 1], [0, 0, 0], [0, 0, 0]]), 1)
        a2 = np.triu(np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]]), 1)
        series = series_from([a1, a2])
        weeks, counts = series.edge_recurrence()
        # (0,1) twice; (0,2) and (1,2) once
        assert weeks.tolist() == [1, 2]
        assert counts.tolist() == [2, 1]

    def test_single_interval_no_persistence(self):
        series = series_from([np.triu(np.ones((3, 3)), 1)])
        assert len(series.edge_persistence()) == 0

    def test_population_mismatch_rejected(self):
        with pytest.raises(SynthesisError):
            WeeklyNetworkSeries(
                networks=[
                    CollocationNetwork(sp.csr_matrix((3, 3), dtype=np.int64)),
                    CollocationNetwork(sp.csr_matrix((4, 4), dtype=np.int64)),
                ],
                interval_hours=1,
            )

    def test_real_series_has_stable_core(self, small_pop, two_week_logs):
        """Households/schools/workplaces recur weekly: persistence well
        above zero; venue churn keeps it well below one."""
        series = StreamingSynthesizer(small_pop.n_persons).process(
            str(two_week_logs), 2
        )
        p = series.edge_persistence()[0]
        assert 0.25 < p < 0.95
        weeks, counts = series.edge_recurrence()
        assert weeks.tolist() == [1, 2]
        assert counts[1] > 0  # a real recurring core exists
