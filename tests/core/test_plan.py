"""The synthesis planner: one validated object carrying every knob.

The contract under test: a ``SynthesisPlan`` threaded through any
consumer — ``synthesize_from_logs``, the streaming synthesizer, layer
caches, the BSP pipeline — produces exactly what the equivalent loose
keyword arguments produce, and plan validation happens once, at
construction.
"""

from __future__ import annotations

import pytest

from repro.core import (
    DEFAULT_PLAN,
    StreamingSynthesizer,
    SynthesisPlan,
    synthesize_from_logs,
)
from repro.core.kernels import BACKENDS
from repro.distrib import SerialPool, ThreadPool
from repro.errors import SynthesisError
from tests.core.test_kernel_equivalence import (
    N_PERSONS,
    T0,
    T1,
    csr_identical,
    write_tricky_logs,
)


@pytest.fixture(scope="module")
def plan_logs(tmp_path_factory):
    return write_tricky_logs(tmp_path_factory.mktemp("plan-logs"), seed=55)


class TestPlanValidation:
    def test_defaults_resolve(self):
        assert DEFAULT_PLAN.kernel == "intervals"
        assert DEFAULT_PLAN.backend in BACKENDS  # eagerly resolved

    @pytest.mark.parametrize(
        "bad",
        [
            {"kernel": "quantum"},
            {"dispatch": "carrier-pigeon"},
            {"backend": "cuda"},
            {"pool_kind": "fork-bomb"},
            {"batch_size": 0},
            {"tile_hours": 0},
        ],
    )
    def test_invalid_knobs_raise_at_construction(self, bad):
        with pytest.raises(SynthesisError):
            SynthesisPlan(**bad)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PLAN.kernel = "dense-hours"  # type: ignore[misc]

    def test_with_derives_without_mutation(self):
        derived = DEFAULT_PLAN.with_(strict=True, batch_size=4)
        assert derived.strict and derived.batch_size == 4
        assert not DEFAULT_PLAN.strict and DEFAULT_PLAN.batch_size == 16

    def test_describe_mentions_resolved_backend(self):
        text = SynthesisPlan(strict=True).describe()
        assert "kernel=intervals" in text
        assert "backend=" in text and "auto" not in text
        assert "strict" in text

    def test_make_pool_kinds(self):
        assert isinstance(SynthesisPlan().make_pool(), SerialPool)
        pool = SynthesisPlan(pool_kind="thread", n_workers=2).make_pool()
        try:
            assert isinstance(pool, ThreadPool)
        finally:
            pool.close()


class TestPlanAuthority:
    """plan= wins over the loose keyword arguments it replaces."""

    def test_plan_equals_loose_kwargs(self, plan_logs):
        loose, _ = synthesize_from_logs(
            plan_logs, N_PERSONS, T0, T1,
            kernel="dense-hours", dispatch="zero-copy", batch_size=3,
        )
        plan = SynthesisPlan(
            kernel="dense-hours", dispatch="zero-copy", batch_size=3
        )
        via_plan, report = synthesize_from_logs(
            plan_logs, N_PERSONS, T0, T1, plan=plan
        )
        assert csr_identical(loose.adjacency, via_plan.adjacency)
        assert report.kernel == "dense-hours"
        assert report.dispatch == "zero-copy"

    def test_plan_overrides_conflicting_kwargs(self, plan_logs):
        plan = SynthesisPlan(kernel="intervals")
        _, report = synthesize_from_logs(
            plan_logs, N_PERSONS, T0, T1, kernel="dense-hours", plan=plan
        )
        assert report.kernel == "intervals"

    def test_explicit_checkpoint_beats_plan(self, plan_logs, tmp_path):
        """checkpoint/resume args are call-site state, not configuration:
        an explicit argument wins over the plan's default."""
        plan = SynthesisPlan(checkpoint=str(tmp_path / "plan-ckpt"))
        ckpt = tmp_path / "call-ckpt"
        synthesize_from_logs(
            plan_logs, N_PERSONS, T0, T1, checkpoint=ckpt, plan=plan
        )
        assert ckpt.exists()
        assert not (tmp_path / "plan-ckpt").exists()

    def test_plan_builds_and_owns_pool(self, plan_logs):
        plan = SynthesisPlan(pool_kind="thread", n_workers=2)
        net, report = plan.synthesize(plan_logs, N_PERSONS, T0, T1)
        ref, _ = synthesize_from_logs(plan_logs, N_PERSONS, T0, T1)
        assert report.n_workers == 2
        assert csr_identical(net.adjacency, ref.adjacency)

    def test_streaming_accepts_plan(self, plan_logs):
        plan = SynthesisPlan(dispatch="zero-copy", batch_size=2)
        ref = StreamingSynthesizer(
            N_PERSONS, interval_hours=48, dispatch="zero-copy", batch_size=2
        )
        via = StreamingSynthesizer(N_PERSONS, interval_hours=48, plan=plan)
        a = ref.process(plan_logs, 2)
        b = via.process(plan_logs, 2)
        for x, y in zip(a.networks, b.networks):
            assert csr_identical(x.adjacency, y.adjacency)


class TestPlanCacheFactory:
    def test_build_cache_round_trip(self, plan_logs, tmp_path):
        plan = SynthesisPlan(tile_hours=12, cache_dir=str(tmp_path / "t"))
        with plan.build_cache(plan_logs, N_PERSONS) as cache:
            got = cache.query_window(T0, T1)
        want, _ = synthesize_from_logs(
            plan_logs, N_PERSONS, T0, T1, kernel="intervals"
        )
        assert csr_identical(got.adjacency, want.adjacency)
        assert (tmp_path / "t").exists()

    def test_build_cache_rejects_dense_kernel(self, plan_logs):
        plan = SynthesisPlan(kernel="dense-hours")
        with pytest.raises(SynthesisError, match="interval"):
            plan.build_cache(plan_logs, N_PERSONS)
