"""Tests for A = x·xᵀ and accumulation."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.adjacency import (
    accumulate_adjacency,
    empty_adjacency,
    place_adjacency,
    sum_adjacency_list,
    triu_symmetrize,
)
from repro.core.colloc import collocation_matrix_for_place
from repro.errors import SynthesisError
from repro.evlog.schema import make_records


def colloc(persons, starts, stops, place=7, t0=0, t1=10):
    rec = make_records(
        starts, stops, persons, np.zeros(len(persons)), np.full(len(persons), place)
    )
    return collocation_matrix_for_place(place, rec, t0, t1)


class TestPlaceAdjacency:
    def test_pairwise_hours(self):
        # p1 hours [0,4), p2 hours [2,6): overlap 2 hours
        m = colloc([1, 2], [0, 2], [4, 6])
        a = place_adjacency(m, 5).tocsr()
        assert a[1, 2] == 2
        assert a.nnz == 1  # strict upper triangle only

    def test_no_overlap_no_edge(self):
        m = colloc([1, 2], [0, 5], [5, 9])
        a = place_adjacency(m, 5)
        assert a.nnz == 0

    def test_diagonal_dropped(self):
        m = colloc([3], [0], [9])
        a = place_adjacency(m, 5)
        assert a.nnz == 0

    def test_clique_of_collocated_persons(self):
        # 4 people all present hours [0,3): complete graph, weight 3
        m = colloc([0, 1, 2, 3], [0, 0, 0, 0], [3, 3, 3, 3])
        a = place_adjacency(m, 4).tocsr()
        assert a.nnz == 6  # C(4,2)
        assert (a.data == 3).all()

    def test_person_outside_population(self):
        m = colloc([100], [0], [2])
        with pytest.raises(SynthesisError):
            place_adjacency(m, 5)


class TestAccumulate:
    def test_sums_duplicates(self):
        m1 = colloc([1, 2], [0, 0], [2, 2], place=7)
        m2 = colloc([1, 2], [0, 0], [3, 3], place=8)
        total = accumulate_adjacency(
            [place_adjacency(m1, 5), place_adjacency(m2, 5)], 5
        )
        assert total[1, 2] == 5

    def test_empty(self):
        out = accumulate_adjacency([], 4)
        assert out.shape == (4, 4)
        assert out.nnz == 0

    def test_rejects_lower_triangle(self):
        bad = sp.coo_matrix(([1], ([2], [1])), shape=(4, 4))
        with pytest.raises(SynthesisError):
            accumulate_adjacency([bad], 4)

    def test_rejects_out_of_range(self):
        bad = sp.coo_matrix(([1], ([1], [9])), shape=(10, 10))
        with pytest.raises(SynthesisError):
            accumulate_adjacency([bad], 4)

    def test_sum_adjacency_list_is_worker_reduce(self):
        ms = [
            colloc([0, 1], [0, 0], [4, 4], place=3),
            colloc([1, 2], [0, 0], [2, 2], place=4),
        ]
        out = sum_adjacency_list(ms, 4)
        assert out[0, 1] == 4
        assert out[1, 2] == 2


class TestSymmetrize:
    def test_triu_symmetrize(self):
        up = sp.coo_matrix(([5], ([0], [2])), shape=(3, 3)).tocsr()
        sym = triu_symmetrize(up)
        assert sym[0, 2] == 5 and sym[2, 0] == 5
        assert (sym != sym.T).nnz == 0

    def test_empty_adjacency_shape(self):
        e = empty_adjacency(7)
        assert e.shape == (7, 7) and e.nnz == 0
