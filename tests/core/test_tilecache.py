"""Temporal tile cache: equivalence, budget, persistence, invalidation.

The load-bearing property is *bit-identity*: for any window, the
tile-composed adjacency must have exactly the same CSR ``data``,
``indices``, and ``indptr`` as a direct ``kernel="intervals"`` synthesis
over the same logs — aligned windows, unaligned fringes, single-tile and
sub-tile windows, full runs, after checkpoint resume, and with damaged
files quarantined.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core import (
    StreamingSynthesizer,
    TileCache,
    query_window,
    synthesize_from_logs,
    synthesize_from_logs_bsp,
    synthesize_layers,
    synthesize_layers_from_logs,
)
from repro.core.tilecache import TILE_MANIFEST, logset_digest
from repro.distrib import DistributedSimulation, make_pool, spatial_partition
from repro.errors import LogTruncatedError, SynthesisError, TileCacheError
from repro.evlog import LogSet
from repro.evlog.multifile import salvage_rank_logs


@pytest.fixture(scope="module")
def tile_logs(tmp_path_factory, small_pop):
    """Two weeks of 4-rank logs, shared by every cache test."""
    d = tmp_path_factory.mktemp("tile-logs")
    cfg = repro.SimulationConfig(
        scale=small_pop.scale,
        duration_hours=2 * repro.HOURS_PER_WEEK,
        n_ranks=4,
    )
    part = spatial_partition(
        small_pop.places.coords(), small_pop.places.capacity.astype(float), 4
    )
    DistributedSimulation(small_pop, cfg, part).run(log_dir=d)
    return d


@pytest.fixture(scope="module")
def tile_cache(tile_logs, small_pop):
    with TileCache(tile_logs, small_pop.n_persons) as cache:
        yield cache


def assert_bit_identical(a, b):
    """Same canonical CSR: data, indices, indptr all exactly equal."""
    assert a.shape == b.shape
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data, b.data)


def direct(log_dir, n_persons, t0, t1, **kw):
    net, _ = synthesize_from_logs(
        log_dir, n_persons, t0, t1, kernel="intervals", **kw
    )
    return net


class TestEquivalence:
    @pytest.mark.parametrize(
        "t0,t1",
        [
            (0, 24),  # exactly one base tile
            (0, 336),  # full run, aligned
            (24, 192),  # aligned multi-tile
            (5, 300),  # both edges unaligned
            (30, 40),  # strictly inside one tile
            (23, 25),  # straddles a tile boundary, no whole tile
            (0, 168),  # one aligned week
            (167, 169),  # boundary straddle at week edge
            (100, 101),  # single hour
        ],
    )
    def test_window_bit_identical(self, tile_cache, tile_logs, small_pop, t0, t1):
        net = tile_cache.query_window(t0, t1)
        ref = direct(tile_logs, small_pop.n_persons, t0, t1)
        assert_bit_identical(net.adjacency, ref.adjacency)
        assert (net.t0, net.t1) == (t0, t1)

    def test_repeat_query_serves_from_cache(self, tile_logs, small_pop):
        with TileCache(tile_logs, small_pop.n_persons) as cache:
            first = cache.query_window(0, 168)
            built = cache.stats.tiles_built
            again = cache.query_window(0, 168)
            assert cache.stats.tiles_built == built  # nothing rebuilt
            assert cache.stats.tile_hits > 0
            assert_bit_identical(first.adjacency, again.adjacency)

    def test_repeat_unaligned_query_caches_fringes(self, tile_logs, small_pop):
        with TileCache(tile_logs, small_pop.n_persons) as cache:
            first = cache.query_window(6, 174)
            hours = cache.stats.fringe_hours
            assert hours == (24 - 6) + (174 - 168)
            again = cache.query_window(6, 174)
            # the second request reads no records: both fringe partials
            # are served from the LRU alongside the cover tiles
            assert cache.stats.fringe_hours == hours
            assert cache.stats.fringe_hits == 2
            assert_bit_identical(first.adjacency, again.adjacency)

    def test_sliding_windows_share_tiles(self, tile_logs, small_pop):
        with TileCache(tile_logs, small_pop.n_persons) as cache:
            cache.query_window(0, 168)
            built = cache.stats.tiles_built
            net = cache.query_window(24, 192)  # slides by one tile
            # only the one new base tile (168–192) is constructed
            assert cache.stats.tiles_built == built + 1
            ref = direct(tile_logs, small_pop.n_persons, 24, 192)
            assert_bit_identical(net.adjacency, ref.adjacency)

    def test_zero_copy_dispatch(self, tile_logs, small_pop):
        with TileCache(
            tile_logs, small_pop.n_persons, dispatch="zero-copy"
        ) as cache:
            net = cache.query_window(5, 300)
            ref = direct(tile_logs, small_pop.n_persons, 5, 300)
            assert_bit_identical(net.adjacency, ref.adjacency)

    def test_process_pool_construction(self, tile_logs, small_pop):
        pool = make_pool("process", 2)
        try:
            with TileCache(
                tile_logs, small_pop.n_persons, pool=pool,
                dispatch="zero-copy",
            ) as cache:
                net = cache.query_window(10, 200)
            ref = direct(tile_logs, small_pop.n_persons, 10, 200)
            assert_bit_identical(net.adjacency, ref.adjacency)
        finally:
            pool.close()

    def test_warm_then_query_builds_nothing(self, tile_logs, small_pop):
        with TileCache(tile_logs, small_pop.n_persons) as cache:
            built = cache.warm(0, 336)
            assert built == 336 // 24
            before = cache.stats.tiles_built
            net = cache.query_window(0, 336)
            assert cache.stats.tiles_built == before
            assert cache.stats.fringe_hours == 0
            ref = direct(tile_logs, small_pop.n_persons, 0, 336)
            assert_bit_identical(net.adjacency, ref.adjacency)

    def test_matches_checkpoint_resumed_synthesis(
        self, tile_cache, tile_logs, small_pop, tmp_path
    ):
        """Tile composition equals a direct synthesis that went through a
        kill + checkpoint resume."""
        ckpt = tmp_path / "ckpt"
        with pytest.raises(RuntimeError):
            synthesize_from_logs(
                tile_logs, small_pop.n_persons, 0, 336,
                batch_size=1, checkpoint=ckpt,
                pool=_DieAfter(2),
            )
        resumed, report = synthesize_from_logs(
            tile_logs, small_pop.n_persons, 0, 336,
            batch_size=1, resume=ckpt,
        )
        assert report.resumed_batches > 0
        net = tile_cache.query_window(0, 336)
        assert_bit_identical(net.adjacency, resumed.adjacency)


class _DieAfter:
    """A pool that dies after N map calls (drives the resume test)."""

    n_workers = 1

    def __init__(self, calls: int) -> None:
        self._left = calls

    def map(self, fn, items):
        if self._left <= 0:
            raise RuntimeError("injected pool failure")
        self._left -= 1
        return [fn(item) for item in items]

    def close(self) -> None:
        pass


class TestBudget:
    def test_lru_stays_under_budget(self, tile_logs, small_pop):
        budget = 8_000
        with TileCache(
            tile_logs, small_pop.n_persons, budget_nnz=budget
        ) as cache:
            for t0, t1 in [(0, 336), (5, 300), (24, 192), (100, 230)]:
                net = cache.query_window(t0, t1)
                assert cache.cached_nnz <= budget
                ref = direct(tile_logs, small_pop.n_persons, t0, t1)
                assert_bit_identical(net.adjacency, ref.adjacency)
            assert cache.stats.evictions > 0

    def test_bad_budget_rejected(self, tile_logs, small_pop):
        with pytest.raises(TileCacheError):
            TileCache(tile_logs, small_pop.n_persons, budget_nnz=0)


class TestPersistence:
    def test_reopen_serves_from_disk(self, tile_logs, small_pop, tmp_path):
        store = tmp_path / "tiles"
        with TileCache(
            tile_logs, small_pop.n_persons, cache_dir=store
        ) as cache:
            first = cache.query_window(5, 300)
        assert (store / TILE_MANIFEST).is_file()
        with TileCache(
            tile_logs, small_pop.n_persons, cache_dir=store
        ) as cache:
            net = cache.query_window(5, 300)
            assert cache.stats.tiles_built == 0
            assert cache.stats.tiles_merged == 0
            assert cache.stats.disk_hits > 0
        assert_bit_identical(net.adjacency, first.adjacency)

    def test_manifest_digest_mismatch_discards_tiles(
        self, tile_logs, small_pop, tmp_path
    ):
        store = tmp_path / "tiles"
        with TileCache(
            tile_logs, small_pop.n_persons, cache_dir=store
        ) as cache:
            cache.query_window(0, 48)
        manifest = json.loads((store / TILE_MANIFEST).read_text())
        manifest["digest"] = "0" * 64
        (store / TILE_MANIFEST).write_text(json.dumps(manifest))
        with TileCache(
            tile_logs, small_pop.n_persons, cache_dir=store
        ) as cache:
            assert cache.stats.invalidated > 0
            net = cache.query_window(0, 48)
            assert cache.stats.disk_hits == 0
        ref = direct(tile_logs, small_pop.n_persons, 0, 48)
        assert_bit_identical(net.adjacency, ref.adjacency)

    def test_different_tile_size_does_not_share_store(
        self, tile_logs, small_pop, tmp_path
    ):
        store = tmp_path / "tiles"
        with TileCache(
            tile_logs, small_pop.n_persons, cache_dir=store
        ) as cache:
            cache.query_window(0, 48)
        with TileCache(
            tile_logs, small_pop.n_persons, tile_hours=12, cache_dir=store
        ) as cache:
            # 24 h tiles are invalid for a 12 h cache: digest differs
            assert cache.stats.invalidated > 0
            net = cache.query_window(0, 48)
        ref = direct(tile_logs, small_pop.n_persons, 0, 48)
        assert_bit_identical(net.adjacency, ref.adjacency)


class TestInvalidation:
    """Satellite: repair/salvage of a rank log must invalidate stale tiles."""

    @pytest.fixture()
    def rewritable_logs(self, tmp_path, small_pop):
        d = tmp_path / "logs"
        cfg = repro.SimulationConfig(
            scale=small_pop.scale,
            duration_hours=repro.HOURS_PER_WEEK,
            n_ranks=2,
        )
        part = spatial_partition(
            small_pop.places.coords(),
            small_pop.places.capacity.astype(float),
            2,
        )
        DistributedSimulation(small_pop, cfg, part).run(log_dir=d)
        return d

    def test_salvage_changes_digest_and_rebuilds(
        self, rewritable_logs, small_pop, tmp_path
    ):
        store = tmp_path / "tiles"
        with TileCache(
            rewritable_logs, small_pop.n_persons, cache_dir=store
        ) as cache:
            cache.query_window(3, 150)
            old_digest = cache.digest
        n_persisted = len(
            json.loads((store / TILE_MANIFEST).read_text())["tiles"]
        )
        assert n_persisted > 0

        # tear a rank file mid-chunk (real record loss), then repair it —
        # the `repro repair` path
        victim = sorted(Path(rewritable_logs).glob("rank_*.evl"))[0]
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) // 2])
        repaired = salvage_rank_logs(rewritable_logs)
        assert [p for p, _ in repaired] == [victim]
        # the rewritten file must be readable but hold fewer records
        assert len(victim.read_bytes()) < len(data)

        with TileCache(
            rewritable_logs, small_pop.n_persons, cache_dir=store
        ) as cache:
            assert cache.digest != old_digest
            # every stale persisted tile was discarded, none loaded
            assert cache.stats.invalidated == n_persisted
            net = cache.query_window(3, 150)
            assert cache.stats.disk_hits == 0
            assert cache.stats.tiles_built > 0
        ref = direct(rewritable_logs, small_pop.n_persons, 3, 150)
        assert_bit_identical(net.adjacency, ref.adjacency)
        # the store is rebuilt under the new digest
        manifest = json.loads((store / TILE_MANIFEST).read_text())
        assert manifest["digest"] != old_digest
        assert len(manifest["tiles"]) > 0

    def test_quarantine_matches_direct_synthesis(
        self, rewritable_logs, small_pop
    ):
        """A torn (unrepaired) file is skipped by cache and pipeline alike."""
        victim = sorted(Path(rewritable_logs).glob("rank_*.evl"))[1]
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) // 2])
        with TileCache(rewritable_logs, small_pop.n_persons) as cache:
            assert cache.quarantined == [str(victim)]
            net = cache.query_window(0, 168)
        ref, report = synthesize_from_logs(
            rewritable_logs, small_pop.n_persons, 0, 168, strict=False
        )
        assert report.quarantined == [str(victim)]
        assert_bit_identical(net.adjacency, ref.adjacency)
        with pytest.raises(LogTruncatedError):
            TileCache(rewritable_logs, small_pop.n_persons, strict=True)


class TestWiring:
    def test_pipeline_cache_param(self, tile_cache, tile_logs, small_pop):
        net, report = synthesize_from_logs(
            tile_logs, small_pop.n_persons, 7, 250, cache=tile_cache
        )
        ref = direct(tile_logs, small_pop.n_persons, 7, 250)
        assert_bit_identical(net.adjacency, ref.adjacency)
        assert report.kernel == "intervals"
        assert "cache_query" in report.timings.stages

    def test_pipeline_cache_rejects_checkpoint(
        self, tile_cache, tile_logs, small_pop, tmp_path
    ):
        with pytest.raises(SynthesisError):
            synthesize_from_logs(
                tile_logs, small_pop.n_persons, 0, 24,
                cache=tile_cache, checkpoint=tmp_path / "c",
            )
        with pytest.raises(SynthesisError):
            synthesize_from_logs(
                tile_logs, small_pop.n_persons, 0, 24,
                cache=tile_cache, kernel="dense-hours",
            )
        with pytest.raises(SynthesisError):
            synthesize_from_logs(
                tile_logs, small_pop.n_persons + 1, 0, 24, cache=tile_cache
            )

    def test_streaming_through_cache(self, tile_cache, tile_logs, small_pop):
        cached = StreamingSynthesizer(
            small_pop.n_persons, cache=tile_cache
        ).process(str(tile_logs), 2)
        plain = StreamingSynthesizer(small_pop.n_persons).process(
            str(tile_logs), 2
        )
        for a, b in zip(cached.networks, plain.networks):
            assert_bit_identical(a.adjacency, b.adjacency)
        assert_bit_identical(
            cached.total().adjacency, plain.total().adjacency
        )

    def test_series_total_presized_fallback(self, tile_logs, small_pop):
        """The no-cache total() (one pre-sized accumulation) matches the
        whole-window synthesis exactly."""
        series = StreamingSynthesizer(small_pop.n_persons).process(
            str(tile_logs), 2
        )
        assert series.cache is None
        total = series.total()
        ref = direct(tile_logs, small_pop.n_persons, 0, 336)
        assert_bit_identical(total.adjacency, ref.adjacency)
        assert (total.t0, total.t1) == (0, 336)

    def test_bsp_through_cache(self, tile_cache, tile_logs, small_pop):
        res = synthesize_from_logs_bsp(
            tile_logs, small_pop.n_persons, 12, 220, n_ranks=3,
            cache=tile_cache,
        )
        ref = synthesize_from_logs_bsp(
            tile_logs, small_pop.n_persons, 12, 220, n_ranks=3
        )
        assert_bit_identical(res.network.adjacency, ref.network.adjacency)
        assert res.traffic.bytes_sent == 0  # no cluster communication

    def test_layers_through_caches(self, tile_cache, tile_logs, small_pop):
        layers, caches = synthesize_layers_from_logs(
            tile_logs, small_pop.places, small_pop.n_persons, 10, 200
        )
        try:
            records = LogSet(tile_logs).read_all()
            ref = synthesize_layers(
                records, small_pop.places, small_pop.n_persons, 10, 200
            )
            assert set(layers) == set(ref)
            for name in ref:
                assert_bit_identical(
                    layers[name].adjacency, ref[name].adjacency
                )
            # layer decomposition stays exact under the cache
            total = None
            for net in layers.values():
                total = net if total is None else total + net
            full = tile_cache.query_window(10, 200)
            assert (total.adjacency != full.adjacency).nnz == 0
            # second window reuses the per-kind caches
            built = {k: c.stats.tiles_built for k, c in caches.items()}
            more, _ = synthesize_layers_from_logs(
                tile_logs, small_pop.places, small_pop.n_persons,
                10, 200, caches=caches,
            )
            assert all(
                caches[k].stats.tiles_built == built[k] for k in caches
            )
        finally:
            for c in caches.values():
                c.close()

    def test_module_level_query_window(self, tile_logs, small_pop):
        net, cache = query_window(tile_logs, small_pop.n_persons, 0, 100)
        try:
            ref = direct(tile_logs, small_pop.n_persons, 0, 100)
            assert_bit_identical(net.adjacency, ref.adjacency)
            net2, cache2 = query_window(
                tile_logs, small_pop.n_persons, 0, 100, cache=cache
            )
            assert cache2 is cache
            assert_bit_identical(net2.adjacency, ref.adjacency)
        finally:
            cache.close()


class TestErrors:
    def test_empty_window_rejected(self, tile_cache):
        with pytest.raises(TileCacheError):
            tile_cache.query_window(10, 10)
        with pytest.raises(TileCacheError):
            tile_cache.query_window(20, 10)
        with pytest.raises(TileCacheError):
            tile_cache.query_window(-5, 10)

    def test_bad_config_rejected(self, tile_logs):
        with pytest.raises(TileCacheError):
            TileCache(tile_logs, 0)
        with pytest.raises(TileCacheError):
            TileCache(tile_logs, 100, tile_hours=0)
        with pytest.raises(SynthesisError):
            TileCache(tile_logs, 100, dispatch="carrier-pigeon")

    def test_closed_cache_rejected(self, tile_logs, small_pop):
        cache = TileCache(tile_logs, small_pop.n_persons)
        cache.close()
        with pytest.raises(TileCacheError):
            cache.query_window(0, 24)
        cache.close()  # idempotent

    def test_population_mismatch(self, tile_cache, tile_logs, small_pop):
        with pytest.raises(TileCacheError):
            query_window(
                tile_logs, small_pop.n_persons + 1, 0, 24, cache=tile_cache
            )


class TestDigest:
    def test_digest_tracks_content(self, tmp_path):
        a = tmp_path / "rank_0000.evl"
        b = tmp_path / "rank_0001.evl"
        a.write_bytes(b"alpha")
        b.write_bytes(b"beta")
        d1 = logset_digest([a, b])
        assert d1 == logset_digest([b, a])  # order-insensitive
        b.write_bytes(b"beta2")
        assert logset_digest([a, b]) != d1
