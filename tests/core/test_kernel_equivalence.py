"""Equivalence contract between the two collocation kernels and the two
dispatch modes.

The interval-overlap kernel (``kernel="intervals"``) and the paper's
dense-hours kernel (``kernel="dense-hours"``) must produce **bit-identical**
upper-triangular CSR adjacencies — same ``data``, ``indices`` and
``indptr`` — on any input, including the awkward ones: overlapping spells,
re-entries, duplicate person/hour records, single-person places, and empty
slices.  Likewise by-value and zero-copy dispatch must be indistinguishable
in output, including through checkpoint/resume and quarantine paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import synthesize_from_logs, synthesize_network
from repro.core.adjacency import sum_adjacency_list
from repro.core.balance import BalanceReport
from repro.core.colloc import build_collocation_matrices, merge_collocations
from repro.core.intervals import (
    build_interval_pack,
    merge_packs,
    select_pack_places,
    sum_pack_adjacency,
)
from repro.core.pipeline import SynthesisReport, _merge_balance
from repro.core.slicing import slice_records
from repro.distrib import SerialPool, ThreadPool
from repro.errors import LogCorruptError
from repro.evlog import LogSet, make_records, write_rank_logs
from repro.evlog.multifile import rank_log_path
from tests._faults import FlakyPool, WorkerCrash

N_PERSONS = 150
N_PLACES = 50
T0, T1 = 0, 96


def csr_identical(a, b):
    """Bit-for-bit CSR equality — the contract, not mere closeness."""
    return (
        a.shape == b.shape
        and a.dtype == b.dtype
        and np.array_equal(a.data, b.data)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.indptr, b.indptr)
    )


def tricky_records(rng, n_records=600, t_max=120):
    """Random logs deliberately exercising kernel edge cases.

    Includes overlapping spells (same person/place, overlapping windows),
    re-entries (leave and come back), verbatim duplicate records, and a
    guaranteed single-person place.
    """
    start = rng.integers(0, t_max - 1, n_records).astype(np.uint32)
    stop = start + rng.integers(1, 12, n_records).astype(np.uint32)
    person = rng.integers(0, N_PERSONS, n_records).astype(np.uint32)
    place = rng.integers(0, N_PLACES - 1, n_records).astype(np.uint32)

    # verbatim duplicates: same (person, place, hours) recorded twice
    dup = rng.integers(0, n_records, max(1, n_records // 5))
    # overlapping spell for the duplicated rows, shifted to intersect
    ov_start = np.maximum(start[dup].astype(np.int64) - 2, 0).astype(np.uint32)
    ov_stop = (stop[dup] + np.uint32(3)).astype(np.uint32)
    # re-entry: same person/place again after a gap
    re_start = (stop[dup] + np.uint32(5)).astype(np.uint32)
    re_stop = re_start + np.uint32(2)

    start = np.concatenate([start, start[dup], ov_start, re_start])
    stop = np.concatenate([stop, stop[dup], ov_stop, re_stop])
    person = np.concatenate([person] + [person[dup]] * 3)
    place = np.concatenate([place] + [place[dup]] * 3)

    # single-person place: one lonely visitor at the last place id
    start = np.append(start, np.uint32(3))
    stop = np.append(stop, np.uint32(40))
    person = np.append(person, np.uint32(0))
    place = np.append(place, np.uint32(N_PLACES - 1))

    activity = rng.integers(0, 6, len(start)).astype(np.uint32)
    return make_records(start, stop, person, activity, place)


def write_tricky_logs(directory, seed, n_ranks=6):
    rng = np.random.default_rng(seed)
    # disjoint place ranges per rank keep batch processing exact, matching
    # the locality contract of the distributed model's rank logs
    per_rank = []
    for r in range(n_ranks):
        rec = tricky_records(rng, n_records=200)
        rec["place"] = rec["place"] % (N_PLACES // n_ranks) + r * (
            N_PLACES // n_ranks
        )
        per_rank.append(rec)
    write_rank_logs(directory, per_rank)
    return directory


class TestKernelBitIdentity:
    """Same records, both kernels, identical CSR triple."""

    @pytest.mark.parametrize("seed", range(8))
    def test_pipeline_identity_random_logs(self, seed):
        rec = tricky_records(np.random.default_rng(seed))
        dense, _ = synthesize_network(
            rec, N_PERSONS, T0, T1, kernel="dense-hours"
        )
        ivals, _ = synthesize_network(rec, N_PERSONS, T0, T1, kernel="intervals")
        assert csr_identical(dense.adjacency, ivals.adjacency)

    @pytest.mark.parametrize("seed", range(8))
    def test_unit_identity(self, seed):
        """Kernel primitives agree before any pipeline orchestration."""
        rng = np.random.default_rng(100 + seed)
        rec = slice_records(tricky_records(rng), T0, T1)
        mats = build_collocation_matrices(rec, T0, T1)
        pack = build_interval_pack(rec, T0, T1)
        a = sum_adjacency_list(mats, N_PERSONS)
        b = sum_pack_adjacency([pack], N_PERSONS)
        assert csr_identical(a, b)
        # interval work is the true pairwise flop count; segments coalesce
        # hours, so it never exceeds the dense model's
        assert 0 < pack.work <= sum(m.work for m in mats)
        assert pack.person_hours == sum(m.nnz for m in mats)

    @pytest.mark.parametrize("seed", range(4))
    def test_split_merge_roundtrip(self, seed):
        """select_pack_places / merge_packs preserve the adjacency exactly
        for any partition of the place set."""
        rng = np.random.default_rng(200 + seed)
        rec = slice_records(tricky_records(rng), T0, T1)
        pack = build_interval_pack(rec, T0, T1)
        places = pack.places
        cut = rng.permutation(len(places))
        half = len(places) // 2
        left = select_pack_places(pack, places[np.sort(cut[:half])])
        right = select_pack_places(pack, places[np.sort(cut[half:])])
        parts = [p for p in (left, right) if p is not None]
        whole = sum_pack_adjacency([pack], N_PERSONS)
        split = sum_pack_adjacency(parts, N_PERSONS)
        assert csr_identical(whole, split)
        merged = merge_packs(parts)
        assert csr_identical(whole, sum_pack_adjacency([merged], N_PERSONS))

    def test_select_empty_returns_none(self):
        rec = slice_records(tricky_records(np.random.default_rng(0)), T0, T1)
        pack = build_interval_pack(rec, T0, T1)
        assert select_pack_places(pack, np.array([10**6])) is None

    def test_merge_collocations_matches_single_build(self):
        """Per-file dense matrices for a shared place merge to exactly the
        matrix a single concatenated build would produce."""
        rng = np.random.default_rng(7)
        rec = slice_records(tricky_records(rng), T0, T1)
        split = len(rec) // 2
        a = build_collocation_matrices(rec[:split], T0, T1)
        b = build_collocation_matrices(rec[split:], T0, T1)
        whole = build_collocation_matrices(rec, T0, T1)
        by_place: dict = {}
        for m in a + b:
            by_place.setdefault(m.place, []).append(m)
        merged = {
            p: (ms[0] if len(ms) == 1 else merge_collocations(ms))
            for p, ms in by_place.items()
        }
        assert set(merged) == {m.place for m in whole}
        for m in whole:
            got = merged[m.place]
            assert np.array_equal(got.persons, m.persons)
            assert csr_identical(got.matrix, m.matrix)

    def test_empty_slice_window(self):
        """A window with no overlapping records yields the empty network
        from both kernels (via the from-logs path, which tolerates empty
        batches)."""
        rec = tricky_records(np.random.default_rng(3))
        for kernel in ("dense-hours", "intervals"):
            net, report = synthesize_network(
                rec, N_PERSONS, 500, 600, kernel=kernel
            )
            assert net.adjacency.nnz == 0
            assert report.n_sliced_records == 0


class TestShardIdentity:
    """The place-sharded path joins the bit-identity matrix: for any
    kernel/dispatch single-process reference, the sharded reduce of the
    same logs yields the same CSR triple (adjacency is additive over
    places; canonical CSRs sum canonically)."""

    @pytest.mark.parametrize("kernel", ["dense-hours", "intervals"])
    @pytest.mark.parametrize("dispatch", ["value", "zero-copy"])
    def test_sharded_vs_single_process(self, tmp_path, kernel, dispatch):
        from repro.distrib.shardsynth import shard_synthesize

        logs = write_tricky_logs(tmp_path / "logs", seed=21)
        single, _ = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=2, kernel=kernel,
            dispatch=dispatch,
        )
        sharded, _ = shard_synthesize(
            logs, N_PERSONS, T0, T1, n_shards=3, strategy="refined"
        )
        assert csr_identical(single.adjacency, sharded.adjacency)


class TestDispatchIdentity:
    """By-value and zero-copy dispatch are output-indistinguishable."""

    @pytest.mark.parametrize("kernel", ["dense-hours", "intervals"])
    def test_value_vs_zero_copy(self, tmp_path, kernel):
        logs = write_tricky_logs(tmp_path / "logs", seed=11)
        val, rep_v = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=2, kernel=kernel,
            dispatch="value",
        )
        zc, rep_z = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=2, kernel=kernel,
            dispatch="zero-copy",
        )
        assert csr_identical(val.adjacency, zc.adjacency)
        assert rep_v.n_records == rep_z.n_records
        assert rep_v.n_places == rep_z.n_places
        assert rep_v.colloc_nnz_total == rep_z.colloc_nnz_total

    def test_zero_copy_threadpool(self, tmp_path):
        logs = write_tricky_logs(tmp_path / "logs", seed=12)
        base, _ = synthesize_from_logs(logs, N_PERSONS, T0, T1, batch_size=2)
        with ThreadPool(3) as pool:
            zc, _ = synthesize_from_logs(
                logs, N_PERSONS, T0, T1, batch_size=2,
                pool=pool, dispatch="zero-copy",
            )
        assert csr_identical(base.adjacency, zc.adjacency)

    def test_zero_copy_ships_fewer_bytes(self, tmp_path):
        """The point of descriptors: root→worker traffic shrinks from
        O(records) to O(1) per task."""
        logs = write_tricky_logs(tmp_path / "logs", seed=13)

        def shipped(dispatch):
            pool = SerialPool()
            pool.track_bytes = True
            try:
                synthesize_from_logs(
                    logs, N_PERSONS, T0, T1, batch_size=2,
                    pool=pool, dispatch=dispatch,
                )
            finally:
                pool.close()
            return pool.bytes_shipped

    # stage-2 inputs dominate: records by value vs ~100-byte descriptors
        assert shipped("zero-copy") < shipped("value")

    def test_descriptor_matches_read_time_slice(self, tmp_path):
        from repro.evlog.reader import LogReader, read_slice_descriptor

        logs = write_tricky_logs(tmp_path / "logs", seed=14)
        path = rank_log_path(logs, 0)
        with LogReader(path, use_mmap=True) as reader:
            desc = reader.slice_descriptor(T0, T1)
            direct = reader.read_time_slice(T0, T1)
        via_desc = read_slice_descriptor(desc)
        assert np.array_equal(via_desc, direct)
        # n_records counts the listed chunks' records — an upper bound on
        # what survives the window mask
        assert desc.n_records >= len(direct)


class TestCrossConfigResume:
    """A checkpoint written under one (kernel, dispatch) pair is valid under
    any other — the digest deliberately excludes both, because outputs are
    bit-identical."""

    @pytest.mark.parametrize(
        "first,second",
        [
            (("dense-hours", "value"), ("intervals", "zero-copy")),
            (("intervals", "value"), ("dense-hours", "value")),
            (("intervals", "zero-copy"), ("intervals", "value")),
        ],
    )
    def test_resume_across_configs(self, tmp_path, first, second):
        logs = write_tricky_logs(tmp_path / "logs", seed=21)
        baseline, _ = synthesize_from_logs(logs, N_PERSONS, T0, T1, batch_size=2)

        ckpt = tmp_path / "ckpt"
        k1, d1 = first
        # die inside batch 2 (after one committed batch); zero-copy issues
        # two maps per batch as well (descriptor build + adjacency)
        pool = FlakyPool(SerialPool(), die_on_calls={2})
        with pytest.raises(WorkerCrash):
            synthesize_from_logs(
                logs, N_PERSONS, T0, T1, batch_size=2,
                pool=pool, checkpoint=ckpt, kernel=k1, dispatch=d1,
            )
        pool.inner.close()

        k2, d2 = second
        resumed, report = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=2,
            resume=ckpt, kernel=k2, dispatch=d2,
        )
        assert report.resumed_batches == 1
        assert report.batches == 3
        assert csr_identical(baseline.adjacency, resumed.adjacency)


class TestQuarantineParity:
    """Zero-copy's CRC-only scan quarantines exactly the files value-mode
    quarantines, and the surviving network is identical."""

    def _corrupt(self, path):
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

    def test_same_quarantine_same_network(self, tmp_path):
        logs = write_tricky_logs(tmp_path / "logs", seed=31)
        bad = rank_log_path(logs, 2)
        self._corrupt(bad)
        val, rep_v = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=2, dispatch="value"
        )
        zc, rep_z = synthesize_from_logs(
            logs, N_PERSONS, T0, T1, batch_size=2, dispatch="zero-copy"
        )
        assert rep_v.quarantined == [str(bad)]
        assert rep_z.quarantined == [str(bad)]
        assert csr_identical(val.adjacency, zc.adjacency)

    @pytest.mark.parametrize("dispatch", ["value", "zero-copy"])
    def test_strict_raises(self, tmp_path, dispatch):
        logs = write_tricky_logs(tmp_path / "logs", seed=32)
        self._corrupt(rank_log_path(logs, 1))
        with pytest.raises(LogCorruptError):
            synthesize_from_logs(
                logs, N_PERSONS, T0, T1, batch_size=2,
                strict=True, dispatch=dispatch,
            )


class TestBalanceAggregation:
    """Satellite: SynthesisReport.balance is the worst batch, not the last."""

    def test_merge_keeps_worst_case(self):
        report = SynthesisReport(n_records=0, n_workers=2)
        even = BalanceReport(loads=np.array([10, 10]), max_item=10)
        skewed = BalanceReport(loads=np.array([30, 2]), max_item=30)
        _merge_balance(report, skewed)
        _merge_balance(report, even)  # later, better batch must not win
        assert report.balance is skewed
        _merge_balance(report, None)
        assert report.balance is skewed

    def test_from_logs_reports_worst_batch(self, tmp_path):
        """First batch is pathologically skewed (one giant place), last is
        perfectly even; the report must keep the skewed one."""
        giant = make_records(
            np.zeros(4000, np.uint32),
            np.full(4000, 90, np.uint32),
            np.arange(4000) % N_PERSONS,
            np.zeros(4000, np.uint32),
            np.zeros(4000, np.uint32),
        )
        even = make_records(
            np.zeros(8, np.uint32),
            np.full(8, 90, np.uint32),
            np.arange(8, dtype=np.uint32) % np.uint32(N_PERSONS),
            np.zeros(8, np.uint32),
            np.arange(1, 9, dtype=np.uint32),
        )
        logs = tmp_path / "logs"
        write_rank_logs(logs, [giant, even])
        with ThreadPool(2) as pool:
            _, report = synthesize_from_logs(
                logs, N_PERSONS, T0, T1, batch_size=1, pool=pool
            )
        # batch 1 (giant place) cannot be balanced across 2 workers; batch 2
        # (8 equal singleton-pair places) can.  Worst case must survive.
        assert report.balance is not None
        assert report.balance.imbalance > 1.5
