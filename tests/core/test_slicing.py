"""Tests for time slicing and place grouping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.slicing import (
    clip_records,
    records_by_place,
    slice_records,
    unique_places,
)
from repro.errors import SynthesisError
from repro.evlog.schema import make_records


@pytest.fixture()
def records():
    return make_records(
        start=[0, 5, 10, 20, 30],
        stop=[6, 12, 15, 25, 40],
        person=[1, 2, 3, 4, 5],
        activity=[0] * 5,
        place=[7, 7, 8, 9, 8],
    )


class TestSlice:
    def test_keeps_intersecting_only(self, records):
        out = slice_records(records, 10, 22)
        assert set(out["person"].tolist()) == {2, 3, 4}

    def test_clips_boundaries(self, records):
        out = slice_records(records, 10, 22)
        assert out["start"].min() >= 10
        assert out["stop"].max() <= 22
        row = out[out["person"] == 2][0]
        assert row["start"] == 10 and row["stop"] == 12

    def test_interior_records_untouched(self, records):
        out = slice_records(records, 0, 100)
        assert (np.sort(out, order="person") == np.sort(records, order="person")).all()

    def test_empty_window_raises(self, records):
        with pytest.raises(SynthesisError):
            slice_records(records, 5, 5)

    def test_no_overlap_returns_empty(self, records):
        assert len(slice_records(records, 100, 200)) == 0

    def test_touching_boundaries_excluded(self):
        """[start, stop) semantics: a record ending exactly at t0 or
        starting exactly at t1 does not intersect."""
        rec = make_records([0, 10], [5, 20], [1, 2], [0, 0], [0, 0])
        out = slice_records(rec, 5, 10)
        assert len(out) == 0

    def test_clip_requires_presliced(self, records):
        with pytest.raises(SynthesisError):
            clip_records(records, 100, 200)

    @given(
        st.integers(0, 50),
        st.integers(1, 50),
        st.integers(0, 2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_slice_equals_hourly_presence(self, t0, width, seed):
        """Sliced person-hours == brute-force per-hour presence check."""
        rng = np.random.default_rng(seed)
        n = 40
        start = rng.integers(0, 80, n).astype(np.uint32)
        stop = start + rng.integers(1, 20, n).astype(np.uint32)
        rec = make_records(start, stop, np.arange(n), np.zeros(n), np.zeros(n))
        t1 = t0 + width
        out = slice_records(rec, t0, t1)
        sliced_hours = int((out["stop"] - out["start"]).sum())
        brute = sum(
            int(max(0, min(int(b), t1) - max(int(a), t0)))
            for a, b in zip(start, stop)
        )
        assert sliced_hours == brute


class TestGrouping:
    def test_unique_places_sorted(self, records):
        assert unique_places(records).tolist() == [7, 8, 9]

    def test_groups_cover_everything(self, records):
        place_ids, groups = records_by_place(records)
        assert place_ids.tolist() == [7, 8, 9]
        assert sum(len(g) for g in groups) == len(records)
        for pid, grp in zip(place_ids, groups):
            assert (grp["place"] == pid).all()

    def test_empty_records(self):
        place_ids, groups = records_by_place(make_records([], [], [], [], []))
        assert len(place_ids) == 0
        assert groups == []
