"""Tests for the CollocationNetwork wrapper."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import CollocationNetwork
from repro.errors import AnalysisError, SynthesisError


@pytest.fixture()
def tiny():
    """Path 0-1-2 plus edge 0-3 with distinct weights."""
    rows = [0, 1, 0]
    cols = [1, 2, 3]
    data = [4, 2, 7]
    adj = sp.coo_matrix((data, (rows, cols)), shape=(5, 5)).tocsr()
    return CollocationNetwork(adj, t0=0, t1=24)


class TestBasics:
    def test_counts(self, tiny):
        assert tiny.n_persons == 5
        assert tiny.n_edges == 3
        assert tiny.total_weight == 13

    def test_degrees(self, tiny):
        assert tiny.degrees().tolist() == [2, 2, 1, 1, 0]

    def test_weighted_degrees(self, tiny):
        assert tiny.weighted_degrees().tolist() == [11, 6, 2, 7, 0]

    def test_neighbors(self, tiny):
        assert sorted(tiny.neighbors(0).tolist()) == [1, 3]
        assert tiny.neighbors(4).tolist() == []

    def test_neighbors_bounds(self, tiny):
        with pytest.raises(AnalysisError):
            tiny.neighbors(9)

    def test_edge_weight_symmetric_lookup(self, tiny):
        assert tiny.edge_weight(0, 1) == 4
        assert tiny.edge_weight(1, 0) == 4
        assert tiny.edge_weight(2, 3) == 0
        assert tiny.edge_weight(2, 2) == 0

    def test_repr(self, tiny):
        assert "n_edges=3" in repr(tiny)


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(SynthesisError):
            CollocationNetwork(sp.csr_matrix((3, 4)))

    def test_rejects_lower_triangle_entries(self):
        adj = sp.coo_matrix(([1], ([2], [0])), shape=(3, 3))
        with pytest.raises(SynthesisError):
            CollocationNetwork(adj)

    def test_rejects_diagonal(self):
        adj = sp.coo_matrix(([1], ([1], [1])), shape=(3, 3))
        with pytest.raises(SynthesisError):
            CollocationNetwork(adj)


class TestCombination:
    def test_add_sums_weights_and_extends_window(self, tiny):
        other = CollocationNetwork(
            sp.coo_matrix(([10], ([0], [1])), shape=(5, 5)).tocsr(), t0=24, t1=48
        )
        total = tiny + other
        assert total.edge_weight(0, 1) == 14
        assert total.edge_weight(0, 3) == 7
        assert (total.t0, total.t1) == (0, 48)

    def test_add_rejects_size_mismatch(self, tiny):
        other = CollocationNetwork(sp.csr_matrix((3, 3)))
        with pytest.raises(SynthesisError):
            tiny + other


class TestSubgraph:
    def test_induced_subgraph(self, tiny):
        sub, persons = tiny.subgraph(np.array([0, 1, 3]))
        assert persons.tolist() == [0, 1, 3]
        dense = sub.toarray()
        assert dense[0, 1] == 4  # edge 0-1 kept
        assert dense[0, 2] == 7  # edge 0-3 kept (3 is local index 2)
        assert dense[1, 2] == 0  # no 1-3 edge

    def test_subgraph_bounds(self, tiny):
        with pytest.raises(AnalysisError):
            tiny.subgraph(np.array([99]))


class TestInterop:
    def test_to_networkx(self, tiny):
        g = tiny.to_networkx()
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 3
        assert g[0][1]["weight"] == 4

    def test_to_networkx_edge_cap(self, tiny):
        with pytest.raises(AnalysisError):
            tiny.to_networkx(max_edges=2)


class TestPersistence:
    def test_save_load_roundtrip(self, tiny, tmp_path):
        path = tiny.save(tmp_path / "net")
        back = CollocationNetwork.load(path)
        assert (back.adjacency != tiny.adjacency).nnz == 0
        assert (back.t0, back.t1) == (tiny.t0, tiny.t1)

    def test_real_network_roundtrip(self, small_net, tmp_path):
        path = small_net.save(tmp_path / "week.npz")
        back = CollocationNetwork.load(path)
        assert back.n_edges == small_net.n_edges
        assert (back.degrees() == small_net.degrees()).all()
