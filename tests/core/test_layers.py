"""Tests for place-kind network layers."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import layer_records, synthesize_layers
from repro.errors import SynthesisError
from repro.synthpop.places import PlaceKind


@pytest.fixture(scope="module")
def layers(small_pop, week_result):
    return synthesize_layers(
        week_result.records,
        small_pop.places,
        small_pop.n_persons,
        0,
        repro.HOURS_PER_WEEK,
    )


class TestDecomposition:
    def test_all_kinds_present(self, layers):
        assert set(layers) == {"home", "school", "workplace", "other"}

    def test_layers_sum_to_full_network(self, small_pop, week_result, layers, small_net):
        total = None
        for net in layers.values():
            total = net if total is None else total + net
        assert (total.adjacency != small_net.adjacency).nnz == 0

    def test_layer_records_partition(self, small_pop, week_result):
        counts = sum(
            len(layer_records(week_result.records, small_pop.places, kind))
            for kind in PlaceKind
        )
        assert counts == len(week_result.records)

    def test_layer_records_kind_pure(self, small_pop, week_result):
        subset = layer_records(
            week_result.records, small_pop.places, PlaceKind.SCHOOL
        )
        kinds = small_pop.places.kind[subset["place"].astype(np.int64)]
        assert (kinds == int(PlaceKind.SCHOOL)).all()

    def test_bad_place_id(self, small_pop):
        from repro.evlog import make_records

        bad = make_records([0], [1], [0], [0], [10**6])
        with pytest.raises(SynthesisError):
            layer_records(bad, small_pop.places, PlaceKind.HOME)


class TestLayerStructure:
    def test_home_layer_is_household_cliques(self, small_pop, layers):
        """Home contacts are exactly within-household pairs."""
        home = layers["home"]
        hh = small_pop.persons.household
        coo = home.adjacency.tocoo()
        assert (hh[coo.row] == hh[coo.col]).all()
        # expected edge count: sum over households of C(size, 2)
        sizes = np.bincount(hh)
        expected = int((sizes * (sizes - 1) // 2).sum())
        assert home.n_edges == expected

    def test_home_heaviest_weights(self, layers):
        """Households share the most hours per pair; venues the fewest."""
        mean_w = {
            name: net.total_weight / net.n_edges
            for name, net in layers.items()
            if net.n_edges
        }
        assert mean_w["home"] > mean_w["school"]
        assert mean_w["home"] > mean_w["other"]
        assert mean_w["other"] == min(mean_w.values())

    def test_venue_layer_most_edges(self, layers):
        """Brief venue contacts dominate pair counts (weak ties)."""
        assert layers["other"].n_edges == max(
            net.n_edges for net in layers.values()
        )

    def test_school_layer_only_connects_students(self, small_pop, layers):
        school = layers["school"]
        students = small_pop.persons.is_student
        degrees = school.degrees()
        assert (degrees[~students] == 0).all()

    def test_empty_kind_gives_empty_network(self, small_pop, week_result):
        """Slicing a window with no school hours leaves an empty layer of
        the right shape (Sunday 3-5 AM)."""
        t0 = 6 * 24 + 3
        layers = synthesize_layers(
            week_result.records,
            small_pop.places,
            small_pop.n_persons,
            t0,
            t0 + 2,
        )
        assert layers["school"].n_edges == 0
        assert layers["school"].n_persons == small_pop.n_persons
        assert layers["home"].n_edges > 0
