"""Tests for the synthesis pipeline, including the brute-force oracle."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import synthesize_from_logs, synthesize_network
from repro.core.pipeline import validate_place_locality
from repro.distrib import ThreadPool, make_pool, spatial_partition
from repro.errors import SynthesisError
from repro.evlog import LogSet, write_rank_logs
from repro.sim.events import events_to_grid


def brute_force_collocation(records, n_persons, t0, t1):
    """O(p² t) oracle: count shared place-hours directly."""
    _, plc = events_to_grid(records, n_persons, t0, t1)
    W = np.zeros((n_persons, n_persons), dtype=np.int64)
    for h in range(t1 - t0):
        col = plc[:, h]
        order = np.argsort(col, kind="stable")
        sc = col[order]
        starts = np.concatenate(
            ([0], np.flatnonzero(sc[1:] != sc[:-1]) + 1, [n_persons])
        )
        for i in range(len(starts) - 1):
            members = order[starts[i] : starts[i + 1]]
            if len(members) > 1:
                W[np.ix_(members, members)] += 1
    np.fill_diagonal(W, 0)
    return W


class TestOracle:
    def test_pipeline_matches_brute_force(self, small_pop, week_result):
        t0, t1 = 0, 48
        net, _ = synthesize_network(
            week_result.records, small_pop.n_persons, t0, t1
        )
        expect = brute_force_collocation(
            week_result.records, small_pop.n_persons, t0, t1
        )
        assert (net.symmetric().toarray() == expect).all()

    def test_mid_week_window(self, small_pop, week_result):
        t0, t1 = 50, 90
        net, _ = synthesize_network(
            week_result.records, small_pop.n_persons, t0, t1
        )
        expect = brute_force_collocation(
            week_result.records, small_pop.n_persons, 0, 168
        )
        # oracle must be restricted to the window
        _, plc = events_to_grid(week_result.records, small_pop.n_persons, 0, 168)
        W = np.zeros((small_pop.n_persons,) * 2, dtype=np.int64)
        for h in range(t0, t1):
            col = plc[:, h]
            order = np.argsort(col, kind="stable")
            sc = col[order]
            starts = np.concatenate(
                ([0], np.flatnonzero(sc[1:] != sc[:-1]) + 1, [small_pop.n_persons])
            )
            for i in range(len(starts) - 1):
                members = order[starts[i] : starts[i + 1]]
                if len(members) > 1:
                    W[np.ix_(members, members)] += 1
        np.fill_diagonal(W, 0)
        assert (net.symmetric().toarray() == W).all()


class TestOracleFuzz:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(seed=st.integers(0, 2**31), t0=st.integers(0, 20))
    @settings(max_examples=25, deadline=None)
    def test_property_random_logs_match_brute_force(self, seed, t0):
        """For arbitrary valid event streams (not just simulator output),
        the sparse pipeline equals the O(p²t) counting oracle."""
        rng = np.random.default_rng(seed)
        n_persons = int(rng.integers(5, 40))
        n_rec = int(rng.integers(1, 120))
        start = rng.integers(0, 40, n_rec).astype(np.uint32)
        stop = start + rng.integers(1, 12, n_rec).astype(np.uint32)
        from repro.evlog import make_records

        records = make_records(
            start,
            stop,
            rng.integers(0, n_persons, n_rec),
            rng.integers(0, 4, n_rec),
            rng.integers(0, 15, n_rec),
        )
        t1 = t0 + int(rng.integers(1, 30))
        net, _ = synthesize_network(records, n_persons, t0, t1)
        # oracle counts place-hours per pair, allowing a person to appear
        # in several records at once (binary per (person, place, hour))
        W = np.zeros((n_persons, n_persons), dtype=np.int64)
        for h in range(t0, t1):
            live = records[(records["start"] <= h) & (records["stop"] > h)]
            present = {}
            for rec in live:
                present.setdefault(int(rec["place"]), set()).add(
                    int(rec["person"])
                )
            for members in present.values():
                members = sorted(members)
                for i in range(len(members)):
                    for j in range(i + 1, len(members)):
                        W[members[i], members[j]] += 1
                        W[members[j], members[i]] += 1
        assert (net.symmetric().toarray() == W).all()


class TestPools:
    def test_thread_pool_identical_to_serial(self, small_pop, week_result):
        serial, _ = synthesize_network(
            week_result.records, small_pop.n_persons, 0, 168
        )
        with ThreadPool(4) as pool:
            threaded, report = synthesize_network(
                week_result.records, small_pop.n_persons, 0, 168, pool=pool
            )
        assert (serial.adjacency != threaded.adjacency).nnz == 0
        assert report.n_workers == 4
        assert report.balance is not None

    def test_process_pool_identical_to_serial(self, small_pop, week_result):
        serial, _ = synthesize_network(
            week_result.records, small_pop.n_persons, 0, 168
        )
        with make_pool("process", 2) as pool:
            proc, _ = synthesize_network(
                week_result.records, small_pop.n_persons, 0, 168, pool=pool
            )
        assert (serial.adjacency != proc.adjacency).nnz == 0


class TestReport:
    def test_report_counts(self, small_pop, week_result):
        _, report = synthesize_network(
            week_result.records, small_pop.n_persons, 0, 168
        )
        assert report.n_records == len(week_result.records)
        assert report.n_sliced_records == len(week_result.records)
        assert report.n_places > 0
        assert report.colloc_nnz_total == small_pop.n_persons * 168
        assert "timings" in report.summary() or "slice" in report.summary()

    def test_invalid_population(self, week_result):
        with pytest.raises(SynthesisError):
            synthesize_network(week_result.records, 0, 0, 168)


class TestFromLogs:
    @pytest.fixture()
    def log_dir(self, tmp_path, small_pop):
        cfg = repro.SimulationConfig(
            scale=small_pop.scale,
            duration_hours=repro.HOURS_PER_WEEK,
            n_ranks=6,
        )
        part = spatial_partition(
            small_pop.places.coords(),
            small_pop.places.capacity.astype(float),
            6,
        )
        repro.DistributedSimulation(small_pop, cfg, part).run(log_dir=tmp_path)
        return tmp_path

    def test_batched_equals_whole(self, small_pop, week_result, log_dir):
        whole, _ = synthesize_network(
            week_result.records, small_pop.n_persons, 10, 100
        )
        batched, report = synthesize_from_logs(
            log_dir, small_pop.n_persons, 10, 100, batch_size=2
        )
        assert (whole.adjacency != batched.adjacency).nnz == 0
        assert report.batches == 3

    def test_place_locality_holds_for_rank_logs(self, log_dir):
        assert validate_place_locality(LogSet(log_dir), 2)

    def test_place_locality_fails_for_scrambled_logs(
        self, tmp_path, week_result
    ):
        """Randomly split logs spread a place across batches."""
        parts = np.array_split(week_result.records, 4)
        d = tmp_path / "scrambled"
        write_rank_logs(d, parts)
        assert not validate_place_locality(LogSet(d), 1)

    def test_empty_window(self, small_pop, log_dir):
        net, _ = synthesize_from_logs(
            log_dir, small_pop.n_persons, 10_000, 10_001, batch_size=2
        )
        assert net.n_edges == 0
