"""Tests for the EVL container framing (header/chunk/index/trailer)."""

from __future__ import annotations

import pytest

from repro.errors import LogCorruptError, LogFormatError, LogTruncatedError
from repro.evlog.format import (
    ChunkInfo,
    HEADER_BYTES,
    pack_chunk,
    pack_header,
    pack_index,
    pack_trailer,
    read_chunk_at,
    unpack_header,
    unpack_index,
    unpack_trailer,
)
from repro.evlog.schema import records_to_bytes


class TestHeader:
    def test_roundtrip(self):
        h = unpack_header(pack_header(rank=7, compressed=True))
        assert h.rank == 7
        assert h.compressed
        assert h.record_bytes == 20

    def test_bad_magic(self):
        with pytest.raises(LogFormatError, match="magic"):
            unpack_header(b"NOPE" + b"\x00" * 20)

    def test_too_short(self):
        with pytest.raises(LogTruncatedError):
            unpack_header(b"EV")


class TestChunks:
    def _image(self, random_records, n=100):
        return records_to_bytes(random_records[:n]), n

    def test_roundtrip_uncompressed(self, random_records):
        image, n = self._image(random_records)
        framed = pack_chunk(image, n, compress=False)
        out, count, next_off = read_chunk_at(framed, 0, compressed=False)
        assert out == image
        assert count == n
        assert next_off == len(framed)

    def test_roundtrip_compressed(self, random_records):
        image, n = self._image(random_records)
        framed = pack_chunk(image, n, compress=True)
        assert len(framed) < len(image)  # compression actually shrinks
        out, count, _ = read_chunk_at(framed, 0, compressed=True)
        assert out == image

    def test_crc_detects_corruption(self, random_records):
        image, n = self._image(random_records)
        framed = bytearray(pack_chunk(image, n, compress=False))
        framed[30] ^= 0xFF  # flip a payload byte
        with pytest.raises(LogCorruptError, match="CRC"):
            read_chunk_at(bytes(framed), 0, compressed=False)

    def test_truncated_payload(self, random_records):
        image, n = self._image(random_records)
        framed = pack_chunk(image, n, compress=False)
        with pytest.raises(LogTruncatedError):
            read_chunk_at(framed[: len(framed) // 2], 0, compressed=False)

    def test_truncated_header(self):
        with pytest.raises(LogTruncatedError):
            read_chunk_at(b"CH", 0, compressed=False)

    def test_wrong_magic_at_offset(self):
        with pytest.raises(LogFormatError):
            read_chunk_at(b"XXXX" + b"\x00" * 12, 0, compressed=False)

    def test_count_mismatch_detected(self, random_records):
        image, n = self._image(random_records)
        framed = pack_chunk(image, n + 1, compress=False)  # lie about count
        with pytest.raises(LogCorruptError, match="declares"):
            read_chunk_at(framed, 0, compressed=False)


class TestIndexTrailer:
    def test_index_roundtrip(self):
        chunks = [
            ChunkInfo(offset=24, n_records=10, t_min=0, t_max=5),
            ChunkInfo(offset=300, n_records=7, t_min=4, t_max=20),
        ]
        blob = pack_index(chunks)
        back = unpack_index(blob, 0)
        assert back == chunks

    def test_trailer_roundtrip(self):
        blob = b"\x00" * HEADER_BYTES + pack_trailer(HEADER_BYTES, 17)
        assert unpack_trailer(blob) == (HEADER_BYTES, 17)

    def test_trailer_absent(self):
        assert unpack_trailer(b"\x00" * 64) is None

    def test_trailer_with_bogus_offset(self):
        blob = b"\x00" * HEADER_BYTES + pack_trailer(10_000, 17)
        assert unpack_trailer(blob) is None

    def test_chunk_overlap_logic(self):
        c = ChunkInfo(offset=0, n_records=1, t_min=10, t_max=20)
        assert c.overlaps(15, 16)
        assert c.overlaps(0, 11)
        assert c.overlaps(19, 30)
        assert not c.overlaps(20, 30)  # t_max is exclusive stop bound
        assert not c.overlaps(0, 10)
