"""Kill-based durability tests: a real SIGKILL against a writer process.

The in-process tests in ``test_durability.py`` simulate a crash by
dropping file handles; this module performs the real experiment the WAL
exists for — ``SIGKILL`` delivered to a subprocess mid-write, no Python
cleanup of any kind — and asserts that salvage recovers **every** record
the child had acknowledged before dying.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.evlog import CachedLogWriter, LogReader, make_records
from repro.evlog.writer import wal_sidecar_path

#: batches the child writes; the parent kills it partway through
N_BATCHES = 200
BATCH = 37  # deliberately coprime with the cache size below
CACHE = 100

# The child acknowledges progress by appending one line per completed
# log_batch to a status file, fsynced before the next batch starts — so
# every count the parent reads was fully acknowledged by the writer.
_CHILD = """
import sys
from pathlib import Path
from repro.evlog.writer import CachedLogWriter
from tests.test_crash_child_helper import batch_records

log_path, status_path = sys.argv[1], sys.argv[2]
w = CachedLogWriter(log_path, rank=9, cache_records={cache}, durability="wal")
status = open(status_path, "a")
import os
for i in range({n_batches}):
    w.log_batch(batch_records(i))
    status.write(f"{{(i + 1) * {batch}}}\\n")
    status.flush()
    os.fsync(status.fileno())
"""


def _batch(i: int) -> np.ndarray:
    """Deterministic records for batch *i* (child and parent agree)."""
    rng = np.random.default_rng(1000 + i)
    start = rng.integers(0, 100, BATCH).astype(np.uint32)
    return make_records(
        start,
        start + rng.integers(1, 8, BATCH).astype(np.uint32),
        rng.integers(0, 5000, BATCH),
        rng.integers(0, 6, BATCH),
        rng.integers(0, 900, BATCH),
    )


def _expected(n_records: int) -> np.ndarray:
    full, rem = divmod(n_records, BATCH)
    parts = [_batch(i) for i in range(full)]
    if rem:
        parts.append(_batch(full)[:rem])
    return np.concatenate(parts) if parts else _batch(0)[:0]


@pytest.fixture()
def child_env(tmp_path):
    """Subprocess env + helper module exposing the shared batch generator."""
    helper_dir = tmp_path / "helper" / "tests"
    helper_dir.mkdir(parents=True)
    (helper_dir / "__init__.py").write_text("")
    (helper_dir / "test_crash_child_helper.py").write_text(
        "import numpy as np\n"
        "from repro.evlog import make_records\n"
        f"BATCH = {BATCH}\n"
        "def batch_records(i):\n"
        "    rng = np.random.default_rng(1000 + i)\n"
        "    start = rng.integers(0, 100, BATCH).astype(np.uint32)\n"
        "    return make_records(start,\n"
        "        start + rng.integers(1, 8, BATCH).astype(np.uint32),\n"
        "        rng.integers(0, 5000, BATCH), rng.integers(0, 6, BATCH),\n"
        "        rng.integers(0, 900, BATCH))\n"
    )
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [repo_src, str(helper_dir.parent)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def _run_and_kill(tmp_path, env, min_acked: int) -> tuple[Path, int]:
    """Start the child, SIGKILL it once it has acknowledged *min_acked*
    records, and return ``(log_path, acknowledged_count)``."""
    log_path = tmp_path / "victim.evl"
    status_path = tmp_path / "status.txt"
    script = _CHILD.format(cache=CACHE, n_batches=N_BATCHES, batch=BATCH)
    proc = subprocess.Popen(
        [sys.executable, "-c", script, str(log_path), str(status_path)],
        env=env,
        cwd=str(tmp_path),
    )
    try:
        deadline = time.monotonic() + 60
        acked = 0
        while time.monotonic() < deadline:
            if status_path.is_file():
                lines = status_path.read_text().splitlines()
                if lines:
                    acked = int(lines[-1])
                    if acked >= min_acked:
                        break
            if proc.poll() is not None:
                break
            time.sleep(0.0005)
        else:
            pytest.fail("child never reached the kill threshold")
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    # re-read after death: the last fsynced line is the true acknowledgement
    acked = int(status_path.read_text().splitlines()[-1])
    return log_path, acked


class TestSigkilledWriter:
    def test_wal_salvage_recovers_every_acknowledged_record(
        self, tmp_path, child_env
    ):
        log_path, acked = _run_and_kill(tmp_path, child_env, min_acked=500)
        assert acked >= 500
        assert wal_sidecar_path(log_path).is_file()

        salvaged = CachedLogWriter.open_resume(
            log_path, cache_records=CACHE, durability="wal"
        )
        salvaged.close()
        got = LogReader(log_path, strict=True).read_all()
        # every acknowledged record survived the SIGKILL; the child may
        # have written more after its last status fsync (including a
        # partially journaled batch), never fewer — and what survives is
        # an exact prefix of the record stream
        assert len(got) >= acked
        assert np.array_equal(got, _expected(len(got)))

    def test_reopen_append_roundtrips_through_reader(
        self, tmp_path, child_env
    ):
        log_path, acked = _run_and_kill(tmp_path, child_env, min_acked=300)

        w = CachedLogWriter.open_resume(
            log_path, cache_records=CACHE, durability="wal"
        )
        recovered = w.stats.records
        extra = _batch(9999)
        w.log_batch(extra)
        w.close()
        assert not wal_sidecar_path(log_path).is_file()

        reader = LogReader(log_path, strict=True)
        assert not reader.recovered
        assert reader.rank == 9
        got = reader.read_all()
        assert len(got) == recovered + len(extra)
        assert np.array_equal(got[:recovered], _expected(recovered))
        assert np.array_equal(got[recovered:], extra)
