"""Tests for the cached log writer, including the cache-size tradeoff."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LogFormatError
from repro.evlog import CachedLogWriter, LogReader


class TestScalarLogging:
    def test_log_and_read_back(self, tmp_path):
        path = tmp_path / "t.evl"
        with CachedLogWriter(path, rank=3, cache_records=4) as w:
            for i in range(10):
                w.log(i, i + 2, 100 + i, 1, 200 + i)
        r = LogReader(path)
        assert r.rank == 3
        rec = r.read_all()
        assert len(rec) == 10
        assert rec["person"].tolist() == list(range(100, 110))

    def test_rejects_empty_interval(self, tmp_path):
        with CachedLogWriter(tmp_path / "t.evl") as w:
            with pytest.raises(LogFormatError):
                w.log(5, 5, 0, 0, 0)

    def test_closed_writer_rejects_log(self, tmp_path):
        w = CachedLogWriter(tmp_path / "t.evl")
        w.close()
        with pytest.raises(LogFormatError, match="closed"):
            w.log(0, 1, 0, 0, 0)

    def test_double_close_ok(self, tmp_path):
        w = CachedLogWriter(tmp_path / "t.evl")
        w.close()
        w.close()


class TestBatchLogging:
    def test_batch_equals_scalar(self, tmp_path, random_records):
        rec = random_records[:500]
        p1, p2 = tmp_path / "a.evl", tmp_path / "b.evl"
        with CachedLogWriter(p1, cache_records=64) as w:
            w.log_batch(rec)
        with CachedLogWriter(p2, cache_records=64) as w:
            for row in rec:
                w.log(*(int(row[f]) for f in rec.dtype.names))
        assert p1.read_bytes() == p2.read_bytes()

    def test_batch_rejects_wrong_dtype(self, tmp_path):
        with CachedLogWriter(tmp_path / "t.evl") as w:
            with pytest.raises(LogFormatError, match="dtype"):
                w.log_batch(np.zeros(3, dtype=np.uint32))

    def test_noncontiguous_batch(self, tmp_path, random_records):
        rec = random_records[::2]  # strided view
        path = tmp_path / "t.evl"
        with CachedLogWriter(path) as w:
            w.log_batch(rec)
        assert (LogReader(path).read_all() == rec).all()


class TestCachePolicy:
    def test_flush_count_tracks_cache_size(self, tmp_path, random_records):
        """Paper Section III: smaller cache → more write operations."""
        rec = random_records[:1000]
        flushes = {}
        for cache in (10, 100, 1000):
            path = tmp_path / f"c{cache}.evl"
            with CachedLogWriter(path, cache_records=cache) as w:
                w.log_batch(rec)
                flushes[cache] = w.stats.flushes
        assert flushes[10] == 100
        assert flushes[100] == 10
        assert flushes[1000] == 1
        assert flushes[10] > flushes[100] > flushes[1000]

    def test_cache_memory_reported(self, tmp_path):
        w = CachedLogWriter(tmp_path / "t.evl", cache_records=10_000)
        assert w.stats.cache_bytes == 10_000 * 20
        w.close()

    def test_partial_cache_flushed_on_close(self, tmp_path, random_records):
        path = tmp_path / "t.evl"
        with CachedLogWriter(path, cache_records=10_000) as w:
            w.log_batch(random_records[:7])
        assert LogReader(path).n_records == 7

    def test_rejects_zero_cache(self, tmp_path):
        with pytest.raises(LogFormatError):
            CachedLogWriter(tmp_path / "t.evl", cache_records=0)

    def test_rejects_negative_rank(self, tmp_path):
        with pytest.raises(LogFormatError):
            CachedLogWriter(tmp_path / "t.evl", rank=-1)


class TestFileSize:
    def test_size_close_to_20_bytes_per_record(self, tmp_path, random_records):
        """The paper's sizing arithmetic: ~20 B per entry plus overhead."""
        path = tmp_path / "t.evl"
        n = len(random_records)
        with CachedLogWriter(path, cache_records=100_000) as w:
            w.log_batch(random_records)
        size = path.stat().st_size
        assert 20 * n <= size <= 20 * n * 1.02 + 1024

    def test_compression_shrinks_file(self, tmp_path, random_records):
        p1, p2 = tmp_path / "raw.evl", tmp_path / "z.evl"
        with CachedLogWriter(p1, cache_records=100_000) as w:
            w.log_batch(random_records)
        with CachedLogWriter(p2, cache_records=100_000, compress=True) as w:
            w.log_batch(random_records)
        assert p2.stat().st_size < p1.stat().st_size


class TestErrorPath:
    def test_exception_flushes_and_finalizes_file(self, tmp_path, random_records):
        path = tmp_path / "t.evl"
        with pytest.raises(RuntimeError):
            with CachedLogWriter(path, cache_records=100) as w:
                w.log_batch(random_records[:250])
                raise RuntimeError("simulated crash")
        # __exit__ best-effort flushes the partial cache and writes the
        # index/trailer: all 250 records survive, and the file is cleanly
        # closed rather than merely recoverable
        r = LogReader(path, strict=True)
        assert not r.recovered
        assert r.n_records == 250
