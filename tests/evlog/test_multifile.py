"""Tests for per-rank log sets and batch iteration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LogFormatError
from repro.evlog import LogSet, write_rank_logs
from repro.evlog.multifile import rank_log_path


@pytest.fixture()
def log_dir(tmp_path, random_records):
    parts = np.array_split(random_records, 6)
    write_rank_logs(tmp_path, parts, cache_records=300)
    return tmp_path, parts


class TestDiscovery:
    def test_finds_all_ranks_in_order(self, log_dir):
        d, parts = log_dir
        ls = LogSet(d)
        assert len(ls) == 6
        assert ls.ranks == list(range(6))

    def test_rank_path_format(self, tmp_path):
        assert rank_log_path(tmp_path, 7).name == "rank_0007.evl"

    def test_ignores_foreign_files(self, log_dir):
        d, _ = log_dir
        (d / "notes.txt").write_text("hello")
        (d / "rank_bad.evl").write_text("nope")
        assert len(LogSet(d)) == 6

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(LogFormatError):
            LogSet(tmp_path)

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(LogFormatError):
            LogSet(tmp_path / "nope")


class TestAggregation:
    def test_total_records(self, log_dir):
        d, parts = log_dir
        assert LogSet(d).total_records() == sum(len(p) for p in parts)

    def test_read_all_union(self, log_dir):
        d, parts = log_dir
        merged = LogSet(d).read_all()
        expect = np.concatenate(parts)
        assert (np.sort(merged, order=["person", "start", "place"])
                == np.sort(expect, order=["person", "start", "place"])).all()

    def test_read_time_slice_union(self, log_dir):
        d, parts = log_dir
        out = LogSet(d).read_time_slice(30, 60)
        expect = np.concatenate(parts)
        mask = (expect["start"] < 60) & (expect["stop"] > 30)
        assert len(out) == mask.sum()

    def test_total_bytes_positive(self, log_dir):
        d, _ = log_dir
        assert LogSet(d).total_bytes() > 0


class TestBatching:
    def test_batches_partition_files(self, log_dir):
        d, _ = log_dir
        ls = LogSet(d)
        batches = list(ls.batches(4))
        assert [len(b) for b in batches] == [4, 2]
        flat = [p for b in batches for p in b]
        assert flat == ls.paths

    def test_batch_size_one(self, log_dir):
        d, _ = log_dir
        assert len(list(LogSet(d).batches(1))) == 6

    def test_batch_size_bigger_than_set(self, log_dir):
        d, _ = log_dir
        assert len(list(LogSet(d).batches(100))) == 1

    def test_invalid_batch_size(self, log_dir):
        d, _ = log_dir
        with pytest.raises(ValueError):
            list(LogSet(d).batches(0))

    def test_reader_access_by_index(self, log_dir):
        d, parts = log_dir
        ls = LogSet(d)
        r = ls.reader(2)
        assert r.rank == 2
        assert (r.read_all() == parts[2]).all()


class TestQuarantineApi:
    def test_invalid_on_error_value(self, log_dir):
        d, _ = log_dir
        with pytest.raises(ValueError):
            LogSet(d).read_time_slice(0, 10, on_error="ignore")

    def test_skip_mode_without_sink_list(self, log_dir):
        d, _ = log_dir
        blob = (d / "rank_0004.evl").read_bytes()
        (d / "rank_0004.evl").write_bytes(blob[: len(blob) - 3])
        # quarantined=None: damaged file silently skipped, no crash
        got = LogSet(d).read_time_slice(0, 200, on_error="skip")
        assert len(got) > 0

    def test_try_read_time_slice_roundtrip(self, log_dir):
        from repro.evlog import try_read_time_slice

        d, parts = log_dir
        rec, reason = try_read_time_slice(rank_log_path(d, 1), 0, 200)
        assert reason is None
        assert len(rec) == len(parts[1])

    def test_verify_detects_corruption(self, log_dir):
        from repro.evlog import LogReader
        from repro.errors import LogCorruptError

        d, _ = log_dir
        path = rank_log_path(d, 0)
        assert LogReader(path).verify() > 0
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(LogCorruptError):
            LogReader(path).verify()
