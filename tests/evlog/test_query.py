"""Tests for demographic log queries (paper Section III cross-reference)."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.errors import AnalysisError
from repro.evlog.query import (
    activity_time_budget,
    contacts_of_person,
    describe_records,
    filter_by_activity,
    filter_by_person_mask,
    filter_by_persons,
    filter_by_place_kind,
    place_kind_exposure,
)
from repro.synthpop.places import PlaceKind
from repro.synthpop.schedule import ACTIVITY_NAMES, Activity


class TestFilters:
    def test_filter_by_persons(self, week_result):
        out = filter_by_persons(week_result.records, np.array([3, 7]))
        assert set(np.unique(out["person"])) <= {3, 7}
        assert len(out) > 0

    def test_filter_by_demographic_mask(self, week_result, small_pop):
        seniors = small_pop.persons.age >= 65
        out = filter_by_person_mask(week_result.records, small_pop.persons, seniors)
        assert (small_pop.persons.age[out["person"].astype(np.int64)] >= 65).all()
        # total records conserved across the split
        rest = filter_by_person_mask(
            week_result.records, small_pop.persons, ~seniors
        )
        assert len(out) + len(rest) == len(week_result.records)

    def test_mask_shape_checked(self, week_result, small_pop):
        with pytest.raises(AnalysisError):
            filter_by_person_mask(
                week_result.records, small_pop.persons, np.zeros(3, dtype=bool)
            )

    def test_filter_by_place_kind(self, week_result, small_pop):
        out = filter_by_place_kind(
            week_result.records, small_pop.places, PlaceKind.SCHOOL
        )
        kinds = small_pop.places.kind[out["place"].astype(np.int64)]
        assert (kinds == int(PlaceKind.SCHOOL)).all()
        assert len(out) > 0

    def test_filter_by_activity(self, week_result):
        out = filter_by_activity(week_result.records, [int(Activity.AT_WORK)])
        assert (out["activity"] == int(Activity.AT_WORK)).all()

    def test_wrong_dtype_rejected(self):
        with pytest.raises(AnalysisError):
            filter_by_persons(np.zeros(3, dtype=np.uint32), np.array([1]))


class TestAggregations:
    def test_activity_budget_sums_to_total_person_hours(
        self, week_result, small_pop
    ):
        budget = activity_time_budget(week_result.records)
        assert budget.sum() == small_pop.n_persons * repro.HOURS_PER_WEEK
        # home dominates (nights + home-bodies)
        assert budget[int(Activity.AT_HOME)] == budget.max()

    def test_place_kind_exposure(self, week_result, small_pop):
        exposure = place_kind_exposure(week_result.records, small_pop.places)
        assert sum(exposure.values()) == small_pop.n_persons * repro.HOURS_PER_WEEK
        assert exposure["home"] > exposure["school"]
        assert exposure["school"] > 0 and exposure["workplace"] > 0

    def test_describe_records_readable(self, week_result):
        names = {int(k): v for k, v in ACTIVITY_NAMES.items()}
        lines = describe_records(week_result.records, names, limit=5)
        assert len(lines) == 5
        assert "person" in lines[0] and "during hours" in lines[0]


class TestContacts:
    def test_contacts_match_grid_reconstruction(self, week_result, small_pop):
        """Interval-based contact query == grid-based reconstruction."""
        from repro.sim.events import events_to_grid

        person, t0, t1 = 5, 30, 40
        got = contacts_of_person(week_result.records, person, t0, t1)
        _, plc = events_to_grid(
            week_result.records, small_pop.n_persons, t0, t1
        )
        expect = set()
        for h in range(t1 - t0):
            here = plc[person, h]
            expect.update(
                int(p) for p in np.flatnonzero(plc[:, h] == here)
            )
        expect.discard(person)
        assert set(got.tolist()) == expect

    def test_household_always_in_contacts(self, week_result, small_pop):
        hh = small_pop.persons.household
        counts = np.bincount(hh)
        multi = np.flatnonzero(counts[hh] >= 2)
        person = int(multi[0])
        mates = set(np.flatnonzero(hh == hh[person]).tolist()) - {person}
        got = set(
            contacts_of_person(
                week_result.records, person, 0, repro.HOURS_PER_WEEK
            ).tolist()
        )
        assert mates <= got

    def test_unknown_person_empty(self, week_result):
        # person ids are uint32; an unused id yields no contacts
        got = contacts_of_person(week_result.records, 2**31, 0, 10)
        assert len(got) == 0
