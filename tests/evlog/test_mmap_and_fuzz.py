"""mmap reader mode and property-based writer/reader fuzzing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogTruncatedError
from repro.evlog import (
    CachedLogWriter,
    LogReader,
    LogSet,
    make_records,
    try_read_time_slice,
    write_rank_logs,
)
from repro.evlog.format import TRAILER_BYTES, unpack_trailer
from repro.evlog.schema import RECORD_BYTES


class TestMmapMode:
    @pytest.fixture()
    def log_file(self, tmp_path, random_records):
        path = tmp_path / "m.evl"
        with CachedLogWriter(path, cache_records=700) as w:
            w.log_batch(random_records)
        return path, random_records

    def test_read_all_identical(self, log_file):
        path, rec = log_file
        with LogReader(path, use_mmap=True) as r:
            assert (r.read_all() == rec).all()

    def test_time_slice_identical(self, log_file):
        path, rec = log_file
        plain = LogReader(path).read_time_slice(20, 60)
        with LogReader(path, use_mmap=True) as r:
            mapped = r.read_time_slice(20, 60)
        assert (np.sort(plain, order=["person", "start", "place"])
                == np.sort(mapped, order=["person", "start", "place"])).all()

    def test_compressed_with_mmap(self, tmp_path, random_records):
        path = tmp_path / "z.evl"
        with CachedLogWriter(path, compress=True) as w:
            w.log_batch(random_records)
        with LogReader(path, use_mmap=True) as r:
            assert (r.read_all() == random_records).all()

    def test_close_idempotent(self, log_file):
        path, _ = log_file
        r = LogReader(path, use_mmap=True)
        r.close()
        r.close()

    def test_recovery_with_mmap(self, log_file):
        path, rec = log_file
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) * 2 // 3])
        with LogReader(path, use_mmap=True) as r:
            assert r.recovered
            assert 0 < r.n_records < len(rec)


class TestWriterReaderFuzz:
    @given(
        n_records=st.integers(0, 400),
        cache=st.integers(1, 97),
        compress=st.booleans(),
        use_mmap=st.booleans(),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_configuration(
        self, tmp_path_factory, n_records, cache, compress, use_mmap, seed
    ):
        """Any (record stream, cache size, compression, read mode) combo
        round-trips exactly."""
        rng = np.random.default_rng(seed)
        start = rng.integers(0, 10_000, n_records).astype(np.uint32)
        rec = make_records(
            start,
            start + rng.integers(1, 100, n_records).astype(np.uint32),
            rng.integers(0, 2**32 - 1, n_records, dtype=np.uint64),
            rng.integers(0, 256, n_records),
            rng.integers(0, 2**32 - 1, n_records, dtype=np.uint64),
        )
        path = tmp_path_factory.mktemp("fuzz") / "f.evl"
        with CachedLogWriter(
            path, cache_records=cache, compress=compress
        ) as w:
            w.log_batch(rec)
            expected_flushes = w.stats.records // cache
            assert w.stats.flushes >= expected_flushes
        with LogReader(path, use_mmap=use_mmap) as r:
            assert not r.recovered
            back = r.read_all()
            assert (back == rec).all()
            assert r.n_records == n_records

    @given(
        cut=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_truncation_recovers_clean_prefix(
        self, tmp_path_factory, cut, seed
    ):
        """Truncating anywhere yields a readable prefix of whole records in
        original order — never garbage, never an exception."""
        rng = np.random.default_rng(seed)
        n = 300
        start = rng.integers(0, 1000, n).astype(np.uint32)
        rec = make_records(
            start,
            start + 1,
            np.arange(n),
            np.zeros(n),
            rng.integers(0, 50, n),
        )
        path = tmp_path_factory.mktemp("trunc") / "t.evl"
        with CachedLogWriter(path, cache_records=64) as w:
            w.log_batch(rec)
        blob = path.read_bytes()
        path.write_bytes(blob[: int(len(blob) * cut)])
        try:
            reader = LogReader(path)
        except Exception as exc:
            # only header-destroying cuts may raise, and only LogFormatError
            from repro.errors import LogFormatError

            assert isinstance(exc, LogFormatError)
            return
        got = reader.read_all()
        assert len(got) <= n
        assert (got == rec[: len(got)]).all()


def _small_log(path, n=24, cache=8):
    """A small uncompressed multi-chunk file plus its source records."""
    start = np.arange(n, dtype=np.uint32) % 50
    rec = make_records(
        start, start + 3, np.arange(n), np.zeros(n), np.arange(n) % 7
    )
    with CachedLogWriter(path, cache_records=cache) as w:
        w.log_batch(rec)
    return rec


class TestTornWrites:
    """Satellite: a file truncated anywhere inside its last record must
    raise LogTruncatedError under strict reading — never silently return
    wrong or partial records."""

    def test_every_cut_in_last_record_raises_strict(self, tmp_path):
        path = tmp_path / "torn.evl"
        rec = _small_log(path)
        blob = path.read_bytes()
        index_offset, _total = unpack_trailer(blob)
        # the last record's bytes end exactly where the index begins
        last_record = range(index_offset - RECORD_BYTES, index_offset)
        for cut in last_record:
            torn = tmp_path / f"cut_{cut}.evl"
            torn.write_bytes(blob[:cut])
            with pytest.raises(LogTruncatedError):
                LogReader(torn, strict=True)
            # verified read path must also refuse the file
            got, reason = try_read_time_slice(torn, 0, 1_000)
            assert got is None
            assert reason is not None and "LogTruncated" in reason

    def test_every_cut_recovery_never_fabricates_records(self, tmp_path):
        """Non-strict recovery on the same torn files may salvage whole
        chunks, but every salvaged record must equal the original prefix —
        the torn last record itself is never returned."""
        path = tmp_path / "torn.evl"
        rec = _small_log(path)
        blob = path.read_bytes()
        index_offset, _total = unpack_trailer(blob)
        for cut in range(index_offset - RECORD_BYTES, index_offset):
            torn = tmp_path / "cut.evl"
            torn.write_bytes(blob[:cut])
            got = LogReader(torn).read_all()
            assert len(got) < len(rec)
            assert (got == rec[: len(got)]).all()

    def test_cut_through_trailer_only(self, tmp_path):
        """Losing just the trailer (index intact) is still a truncation."""
        path = tmp_path / "t.evl"
        _small_log(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - TRAILER_BYTES + 1])
        with pytest.raises(LogTruncatedError):
            LogReader(path, strict=True)


class TestQuarantineExactness:
    """Satellite: quarantine must skip exactly the bad file — every good
    file's records survive, no record of the bad file leaks through."""

    def _rank_records(self, rank, n=40):
        start = (np.arange(n, dtype=np.uint32) * 3) % 60
        return make_records(
            start,
            start + 2,
            np.arange(n) + 1000 * rank,
            np.zeros(n),
            np.full(n, rank),
        )

    def test_truncated_file_skipped_exactly(self, tmp_path):
        per_rank = [self._rank_records(r) for r in range(4)]
        write_rank_logs(tmp_path, per_rank)
        victim = tmp_path / "rank_0002.evl"
        blob = victim.read_bytes()
        victim.write_bytes(blob[: len(blob) - 7])

        quarantined = []
        got = LogSet(tmp_path).read_time_slice(
            0, 100, on_error="skip", quarantined=quarantined
        )
        assert [p.name for p, _ in quarantined] == ["rank_0002.evl"]
        expected = np.concatenate([per_rank[0], per_rank[1], per_rank[3]])
        assert (np.sort(got, order=["person", "start"])
                == np.sort(expected, order=["person", "start"])).all()

    def test_corrupt_file_skipped_exactly(self, tmp_path):
        per_rank = [self._rank_records(r) for r in range(3)]
        write_rank_logs(tmp_path, per_rank)
        victim = tmp_path / "rank_0000.evl"
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 3] ^= 0x01
        victim.write_bytes(bytes(blob))

        bad = LogSet(tmp_path).quarantine_scan()
        assert [p.name for p, _ in bad] == ["rank_0000.evl"]

        quarantined = []
        got = LogSet(tmp_path).read_time_slice(
            0, 100, on_error="skip", quarantined=quarantined
        )
        assert len(quarantined) == 1
        expected = np.concatenate([per_rank[1], per_rank[2]])
        assert (np.sort(got, order=["person", "start"])
                == np.sort(expected, order=["person", "start"])).all()

    def test_clean_set_quarantines_nothing(self, tmp_path):
        write_rank_logs(tmp_path, [self._rank_records(r) for r in range(3)])
        assert LogSet(tmp_path).quarantine_scan() == []
        quarantined = []
        LogSet(tmp_path).read_time_slice(
            0, 100, on_error="skip", quarantined=quarantined
        )
        assert quarantined == []
