"""mmap reader mode and property-based writer/reader fuzzing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evlog import CachedLogWriter, LogReader, make_records


class TestMmapMode:
    @pytest.fixture()
    def log_file(self, tmp_path, random_records):
        path = tmp_path / "m.evl"
        with CachedLogWriter(path, cache_records=700) as w:
            w.log_batch(random_records)
        return path, random_records

    def test_read_all_identical(self, log_file):
        path, rec = log_file
        with LogReader(path, use_mmap=True) as r:
            assert (r.read_all() == rec).all()

    def test_time_slice_identical(self, log_file):
        path, rec = log_file
        plain = LogReader(path).read_time_slice(20, 60)
        with LogReader(path, use_mmap=True) as r:
            mapped = r.read_time_slice(20, 60)
        assert (np.sort(plain, order=["person", "start", "place"])
                == np.sort(mapped, order=["person", "start", "place"])).all()

    def test_compressed_with_mmap(self, tmp_path, random_records):
        path = tmp_path / "z.evl"
        with CachedLogWriter(path, compress=True) as w:
            w.log_batch(random_records)
        with LogReader(path, use_mmap=True) as r:
            assert (r.read_all() == random_records).all()

    def test_close_idempotent(self, log_file):
        path, _ = log_file
        r = LogReader(path, use_mmap=True)
        r.close()
        r.close()

    def test_recovery_with_mmap(self, log_file):
        path, rec = log_file
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) * 2 // 3])
        with LogReader(path, use_mmap=True) as r:
            assert r.recovered
            assert 0 < r.n_records < len(rec)


class TestWriterReaderFuzz:
    @given(
        n_records=st.integers(0, 400),
        cache=st.integers(1, 97),
        compress=st.booleans(),
        use_mmap=st.booleans(),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_configuration(
        self, tmp_path_factory, n_records, cache, compress, use_mmap, seed
    ):
        """Any (record stream, cache size, compression, read mode) combo
        round-trips exactly."""
        rng = np.random.default_rng(seed)
        start = rng.integers(0, 10_000, n_records).astype(np.uint32)
        rec = make_records(
            start,
            start + rng.integers(1, 100, n_records).astype(np.uint32),
            rng.integers(0, 2**32 - 1, n_records, dtype=np.uint64),
            rng.integers(0, 256, n_records),
            rng.integers(0, 2**32 - 1, n_records, dtype=np.uint64),
        )
        path = tmp_path_factory.mktemp("fuzz") / "f.evl"
        with CachedLogWriter(
            path, cache_records=cache, compress=compress
        ) as w:
            w.log_batch(rec)
            expected_flushes = w.stats.records // cache
            assert w.stats.flushes >= expected_flushes
        with LogReader(path, use_mmap=use_mmap) as r:
            assert not r.recovered
            back = r.read_all()
            assert (back == rec).all()
            assert r.n_records == n_records

    @given(
        cut=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_truncation_recovers_clean_prefix(
        self, tmp_path_factory, cut, seed
    ):
        """Truncating anywhere yields a readable prefix of whole records in
        original order — never garbage, never an exception."""
        rng = np.random.default_rng(seed)
        n = 300
        start = rng.integers(0, 1000, n).astype(np.uint32)
        rec = make_records(
            start,
            start + 1,
            np.arange(n),
            np.zeros(n),
            rng.integers(0, 50, n),
        )
        path = tmp_path_factory.mktemp("trunc") / "t.evl"
        with CachedLogWriter(path, cache_records=64) as w:
            w.log_batch(rec)
        blob = path.read_bytes()
        path.write_bytes(blob[: int(len(blob) * cut)])
        try:
            reader = LogReader(path)
        except Exception as exc:
            # only header-destroying cuts may raise, and only LogFormatError
            from repro.errors import LogFormatError

            assert isinstance(exc, LogFormatError)
            return
        got = reader.read_all()
        assert len(got) <= n
        assert (got == rec[: len(got)]).all()
