"""Tests for the string-log strawman and the binary-vs-text size claim."""

from __future__ import annotations

import pytest

from repro.evlog import CachedLogWriter, TextLogWriter, text_log_size
from repro.synthpop.schedule import ACTIVITY_NAMES

NAMES = {int(k): v for k, v in ACTIVITY_NAMES.items()}


class TestTextLogger:
    def test_writes_header_and_lines(self, tmp_path, random_records):
        path = tmp_path / "log.csv"
        with TextLogWriter(path, NAMES) as t:
            t.log_batch(random_records[:10])
        lines = path.read_text().splitlines()
        assert lines[0] == "start,stop,person,activity,place"
        assert len(lines) == 11
        assert "person-" in lines[1] and "sim-hour-" in lines[1]

    def test_size_estimate_exact(self, tmp_path, random_records):
        path = tmp_path / "log.csv"
        rec = random_records[:500]
        with TextLogWriter(path, NAMES) as t:
            t.log_batch(rec)
        assert t.bytes_written == text_log_size(rec, NAMES)
        assert t.bytes_written == path.stat().st_size

    def test_unknown_activity_gets_fallback_name(self, tmp_path, random_records):
        path = tmp_path / "log.csv"
        with TextLogWriter(path, {}) as t:
            t.log_batch(random_records[:5])
        assert "activity-" in path.read_text()


class TestSizeClaim:
    def test_binary_much_smaller_than_text(self, tmp_path, random_records):
        """Paper Section III: the 20-byte binary schema 'is also much
        smaller than simply logging ... as a string format'."""
        evl = tmp_path / "log.evl"
        with CachedLogWriter(evl, cache_records=100_000) as w:
            w.log_batch(random_records)
        text_bytes = text_log_size(random_records, NAMES)
        ratio = text_bytes / evl.stat().st_size
        assert ratio > 3.0
