"""Tests for the 20-byte log record schema."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogFormatError
from repro.evlog.schema import (
    LOG_DTYPE,
    LOG_FIELDS,
    RECORD_BYTES,
    empty_records,
    make_records,
    records_from_bytes,
    records_to_bytes,
    validate_records,
)


class TestSchema:
    def test_record_is_exactly_20_bytes(self):
        """The paper's log entry is 20 bytes: 5 × 4-byte unsigned ints."""
        assert RECORD_BYTES == 20
        assert LOG_DTYPE.itemsize == 20
        assert all(LOG_DTYPE[name] == np.dtype("<u4") for name in LOG_FIELDS)

    def test_field_order(self):
        assert LOG_FIELDS == ("start", "stop", "person", "activity", "place")


class TestMakeRecords:
    def test_basic(self):
        rec = make_records([0, 5], [3, 9], [1, 2], [0, 1], [10, 11])
        assert len(rec) == 2
        assert rec["stop"].tolist() == [3, 9]

    def test_rejects_stop_before_start(self):
        with pytest.raises(LogFormatError):
            make_records([5], [5], [0], [0], [0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(LogFormatError):
            make_records([0, 1], [2, 3], [0], [0, 0], [0, 0])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            make_records([0], [2**33], [0], [0], [0])

    def test_validate_rejects_wrong_dtype(self):
        with pytest.raises(LogFormatError):
            validate_records(np.zeros(3, dtype=np.uint32))

    def test_validate_rejects_bad_interval(self):
        rec = empty_records(1)
        rec["start"] = 5
        rec["stop"] = 5
        with pytest.raises(LogFormatError):
            validate_records(rec)


class TestByteImage:
    def test_roundtrip(self, random_records):
        blob = records_to_bytes(random_records)
        assert len(blob) == len(random_records) * RECORD_BYTES
        back = records_from_bytes(blob)
        assert (back == random_records).all()

    def test_rejects_ragged_buffer(self):
        with pytest.raises(LogFormatError):
            records_from_bytes(b"\x00" * 21)

    def test_empty(self):
        assert len(records_from_bytes(b"")) == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2**31),
                st.integers(1, 2**10),
                st.integers(0, 2**32 - 1),
                st.integers(0, 2**32 - 1),
                st.integers(0, 2**32 - 1),
            ),
            max_size=64,
        )
    )
    @settings(max_examples=60)
    def test_property_roundtrip_any_records(self, rows):
        """EVL byte serialization is lossless for any valid record set."""
        if rows:
            start = np.array([r[0] for r in rows], dtype=np.uint32)
            dur = np.array([r[1] for r in rows], dtype=np.uint32)
            rec = make_records(
                start,
                start + dur,
                [r[2] for r in rows],
                [r[3] for r in rows],
                [r[4] for r in rows],
            )
        else:
            rec = empty_records(0)
        assert (records_from_bytes(records_to_bytes(rec)) == rec).all()
