"""Durability policies, WAL journaling, and salvage-on-reopen."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LogFormatError
from repro.evlog import CachedLogWriter, DurabilityPolicy, LogReader, salvage_rank_logs
from repro.evlog.multifile import rank_log_path
from repro.evlog.writer import wal_sidecar_path


def _crash(writer: CachedLogWriter) -> None:
    """Simulate a hard kill: drop the file handles without flushing the
    cache or writing index/trailer.  The WAL sidecar (if any) stays behind,
    exactly as it would after a SIGKILL."""
    writer._file.close()
    if writer._wal_file is not None:
        writer._wal_file.close()
        writer._wal_file = None
    writer._file = None


class TestPolicy:
    def test_coerce_accepts_strings_and_enum(self):
        assert DurabilityPolicy.coerce("wal") is DurabilityPolicy.WAL
        assert (
            DurabilityPolicy.coerce(DurabilityPolicy.FSYNC)
            is DurabilityPolicy.FSYNC
        )

    def test_coerce_rejects_unknown(self):
        with pytest.raises(LogFormatError, match="durability"):
            DurabilityPolicy.coerce("paranoid")

    def test_stats_records_at_risk(self, tmp_path, random_records):
        p = tmp_path / "t.evl"
        with CachedLogWriter(p, cache_records=64, durability="wal") as w:
            w.log_batch(random_records[:40])
            assert w.stats.records_at_risk(w.durability) == 0
        with CachedLogWriter(p, cache_records=64, durability="fsync") as w:
            w.log_batch(random_records[:40])
            # worst-case bound: a kill can lose up to a full cache
            assert w.stats.records_at_risk(w.durability) == 64

    def test_mode_counters(self, tmp_path, random_records):
        p = tmp_path / "t.evl"
        with CachedLogWriter(p, cache_records=100, durability="none") as w:
            w.log_batch(random_records[:250])
            none_fsyncs = w.stats.fsyncs
        assert none_fsyncs == 0
        with CachedLogWriter(p, cache_records=100, durability="fsync") as w:
            w.log_batch(random_records[:250])
            assert w.stats.fsyncs > 0
            assert w.stats.wal_frames == 0
        with CachedLogWriter(p, cache_records=100, durability="wal") as w:
            w.log_batch(random_records[:250])
            assert w.stats.wal_frames > 0
            assert w.stats.wal_bytes > 0

    def test_identical_bytes_across_modes(self, tmp_path, random_records):
        blobs = []
        for mode in ("none", "fsync", "wal"):
            p = tmp_path / f"{mode}.evl"
            with CachedLogWriter(p, cache_records=64, durability=mode) as w:
                w.log_batch(random_records[:500])
            blobs.append(p.read_bytes())
        assert blobs[0] == blobs[1] == blobs[2]

    def test_wal_sidecar_removed_on_clean_close(self, tmp_path, random_records):
        p = tmp_path / "t.evl"
        with CachedLogWriter(p, cache_records=64, durability="wal") as w:
            w.log_batch(random_records[:100])
            assert wal_sidecar_path(p).is_file()
        assert not wal_sidecar_path(p).is_file()


class TestBatchValidation:
    def test_log_batch_rejects_empty_interval(self, tmp_path, random_records):
        bad = random_records[:10].copy()
        bad["stop"][4] = bad["start"][4]
        with CachedLogWriter(tmp_path / "t.evl") as w:
            with pytest.raises(LogFormatError, match="stop"):
                w.log_batch(bad)

    def test_log_batch_rejects_inverted_interval(self, tmp_path, random_records):
        bad = random_records[:10].copy()
        bad["start"][7] = bad["stop"][7] + 5
        with CachedLogWriter(tmp_path / "t.evl") as w:
            with pytest.raises(LogFormatError, match="stop"):
                w.log_batch(bad)

    def test_rejecting_batch_writes_nothing(self, tmp_path, random_records):
        p = tmp_path / "t.evl"
        bad = random_records[:10].copy()
        bad["stop"][0] = bad["start"][0]
        with CachedLogWriter(p, cache_records=4) as w:
            with pytest.raises(LogFormatError):
                w.log_batch(bad)
            w.log_batch(random_records[:20])
        assert len(LogReader(p).read_all()) == 20


class TestWalSalvage:
    def test_kill_loses_nothing_acknowledged(self, tmp_path, random_records):
        p = tmp_path / "t.evl"
        w = CachedLogWriter(p, cache_records=64, durability="wal")
        acked = random_records[:150]
        w.log_batch(acked)  # 2 full chunks + 22 records only in the WAL
        _crash(w)

        r = CachedLogWriter.open_resume(p, cache_records=64, durability="wal")
        assert r.stats.salvaged_records == 150 - 128
        r.close()
        got = LogReader(p).read_all()
        assert np.array_equal(got, acked)

    def test_salvage_then_append_roundtrip(self, tmp_path, random_records):
        p = tmp_path / "t.evl"
        w = CachedLogWriter(p, cache_records=50, durability="wal")
        w.log_batch(random_records[:120])
        _crash(w)
        r = CachedLogWriter.open_resume(p, cache_records=50, durability="wal")
        r.log_batch(random_records[120:300])
        r.close()
        assert np.array_equal(
            LogReader(p).read_all(), random_records[:300]
        )

    def test_none_mode_kill_loses_cache(self, tmp_path, random_records):
        p = tmp_path / "t.evl"
        w = CachedLogWriter(p, cache_records=64, durability="none")
        w.log_batch(random_records[:150])
        _crash(w)
        r = CachedLogWriter.open_resume(p, cache_records=64)
        assert r.stats.salvaged_records == 0
        r.close()
        # only the two full chunks survive; the cached 22 are gone
        assert len(LogReader(p).read_all()) == 128

    def test_resume_clean_file_continues(self, tmp_path, random_records):
        p = tmp_path / "t.evl"
        with CachedLogWriter(p, cache_records=64) as w:
            w.log_batch(random_records[:100])
        r = CachedLogWriter.open_resume(p, cache_records=64)
        assert r.stats.records == 100
        r.log_batch(random_records[100:200])
        r.close()
        assert np.array_equal(LogReader(p).read_all(), random_records[:200])

    def test_resume_missing_file_starts_fresh(self, tmp_path, random_records):
        p = tmp_path / "new.evl"
        r = CachedLogWriter.open_resume(p, rank=5)
        r.log_batch(random_records[:10])
        r.close()
        reader = LogReader(p)
        assert reader.rank == 5
        assert len(reader.read_all()) == 10

    def test_at_offset_restores_commit_point(self, tmp_path, random_records):
        p = tmp_path / "t.evl"
        w = CachedLogWriter(p, cache_records=64, durability="wal")
        w.log_batch(random_records[:64])
        w.flush()
        offset = w.offset
        w.log_batch(random_records[64:150])
        w.close()

        r = CachedLogWriter.open_resume(p, cache_records=64, at_offset=offset)
        assert r.stats.records == 64
        r.log_batch(random_records[64:150])
        r.close()
        assert np.array_equal(LogReader(p).read_all(), random_records[:150])

    def test_at_offset_rejects_mid_chunk(self, tmp_path, random_records):
        p = tmp_path / "t.evl"
        with CachedLogWriter(p, cache_records=64) as w:
            w.log_batch(random_records[:64])
        with pytest.raises(LogFormatError, match="boundary"):
            CachedLogWriter.open_resume(p, at_offset=31)

    def test_at_offset_missing_file_rejected(self, tmp_path):
        with pytest.raises(LogFormatError, match="no file"):
            CachedLogWriter.open_resume(tmp_path / "gone.evl", at_offset=24)


class TestSalvageRankLogs:
    def test_repairs_torn_files_only(self, tmp_path, random_records):
        clean = rank_log_path(tmp_path, 0)
        torn = rank_log_path(tmp_path, 1)
        with CachedLogWriter(clean, rank=0, cache_records=64) as w:
            w.log_batch(random_records[:64])
        w = CachedLogWriter(torn, rank=1, cache_records=64, durability="wal")
        w.log_batch(random_records[:100])
        _crash(w)

        repaired = salvage_rank_logs(tmp_path)
        assert [(p.name, n) for p, n in repaired] == [(torn.name, 36)]
        for path in (clean, torn):
            r = LogReader(path, strict=True)
            assert not r.recovered
        assert np.array_equal(LogReader(torn).read_all(), random_records[:100])
