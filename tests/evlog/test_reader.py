"""Tests for the EVL reader: index reads, time slices, recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LogFormatError, LogTruncatedError
from repro.evlog import CachedLogWriter, LogReader


@pytest.fixture()
def written(tmp_path, random_records):
    path = tmp_path / "log.evl"
    with CachedLogWriter(path, rank=2, cache_records=500) as w:
        w.log_batch(random_records)
    return path, random_records


class TestIndexedRead:
    def test_read_all(self, written):
        path, rec = written
        r = LogReader(path)
        assert not r.recovered
        assert r.n_records == len(rec)
        assert r.n_chunks == 10
        assert (r.read_all() == rec).all()

    def test_iter_chunks_concatenates_to_all(self, written):
        path, rec = written
        r = LogReader(path)
        parts = list(r.iter_chunks())
        assert sum(len(p) for p in parts) == len(rec)
        assert (np.concatenate(parts) == rec).all()

    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.evl"
        CachedLogWriter(path).close()
        r = LogReader(path)
        assert r.n_records == 0
        assert len(r.read_all()) == 0


class TestTimeSlice:
    def test_slice_matches_mask(self, written):
        path, rec = written
        r = LogReader(path)
        out = r.read_time_slice(40, 80)
        mask = (rec["start"] < 80) & (rec["stop"] > 40)
        assert len(out) == mask.sum()
        # same multiset of records
        assert (np.sort(out, order=["person", "start", "place"])
                == np.sort(rec[mask], order=["person", "start", "place"])).all()

    def test_slice_prunes_chunks(self, tmp_path):
        """Time-ordered logs let the index skip most chunks."""
        path = tmp_path / "ordered.evl"
        with CachedLogWriter(path, cache_records=100) as w:
            for t in range(1000):
                w.log(t, t + 1, t % 50, 0, t % 20)
        r = LogReader(path)
        assert r.n_chunks == 10
        assert r.chunks_overlapping(0, 100) == 1
        out = r.read_time_slice(0, 100)
        assert len(out) == 100

    def test_empty_slice_raises(self, written):
        path, _ = written
        with pytest.raises(ValueError):
            LogReader(path).read_time_slice(10, 10)

    def test_slice_outside_data(self, written):
        path, _ = written
        assert len(LogReader(path).read_time_slice(10_000, 10_001)) == 0


class TestRecovery:
    def test_truncated_file_recovers_prefix(self, written):
        path, rec = written
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) * 2 // 3])
        r = LogReader(path)
        assert r.recovered
        assert 0 < r.n_records < len(rec)
        assert (r.read_all() == rec[: r.n_records]).all()

    def test_strict_mode_raises_on_truncation(self, written):
        path, _ = written
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(LogTruncatedError):
            LogReader(path, strict=True)

    def test_corrupt_chunk_stops_recovery(self, written):
        path, rec = written
        blob = bytearray(path.read_bytes())
        # remove trailer, then corrupt a mid-file payload byte
        blob = blob[: len(blob) - 20]
        blob[15_000] ^= 0xFF  # inside the second 500-record chunk
        path.write_bytes(bytes(blob))
        r = LogReader(path)
        assert r.recovered
        assert 0 < r.n_records < len(rec)

    def test_not_an_evl_file(self, tmp_path):
        path = tmp_path / "bad.evl"
        path.write_bytes(b"definitely not an EVL file" * 10)
        with pytest.raises(LogFormatError):
            LogReader(path)

    def test_index_record_count_mismatch(self, written):
        """A trailer whose total contradicts the index is rejected."""
        path, _ = written
        blob = bytearray(path.read_bytes())
        blob[-12] ^= 0x01  # perturb total_records in the trailer
        path.write_bytes(bytes(blob))
        with pytest.raises(LogFormatError, match="records"):
            LogReader(path)


class TestCompressedRead:
    def test_roundtrip(self, tmp_path, random_records):
        path = tmp_path / "z.evl"
        with CachedLogWriter(path, cache_records=700, compress=True) as w:
            w.log_batch(random_records)
        r = LogReader(path)
        assert r.header.compressed
        assert (r.read_all() == random_records).all()

    def test_sliced_read(self, tmp_path, random_records):
        path = tmp_path / "z.evl"
        with CachedLogWriter(path, compress=True) as w:
            w.log_batch(random_records)
        out = LogReader(path).read_time_slice(0, 50)
        mask = (random_records["start"] < 50) & (random_records["stop"] > 0)
        assert len(out) == mask.sum()
