"""Documentation coverage and scenario presets.

A library release requires doc comments on every public item; this test
walks the package and enforces it mechanically.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro.config import HOURS_PER_WEEK
from repro.errors import ConfigError
from repro.scenarios import SCENARIOS, get_scenario


def walk_modules():
    seen = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        seen.append(info.name)
    return seen


ALL_MODULES = walk_modules()


class TestDocCoverage:
    def test_package_has_modules(self):
        assert len(ALL_MODULES) > 30

    @pytest.mark.parametrize("name", ALL_MODULES)
    def test_every_module_documented(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"

    @pytest.mark.parametrize("name", ALL_MODULES)
    def test_every_public_callable_documented(self, name):
        module = importlib.import_module(name)
        public = getattr(module, "__all__", None)
        if public is None:
            return
        for symbol in public:
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if getattr(obj, "__module__", "").startswith("repro"):
                    assert (
                        obj.__doc__ and obj.__doc__.strip()
                    ), f"{name}.{symbol} lacks a docstring"

    def test_public_api_documented(self):
        undocumented = []
        for symbol in repro.__all__:
            obj = getattr(repro, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(symbol)
        assert not undocumented, undocumented


class TestScenarios:
    def test_expected_presets_exist(self):
        for name in ("smoke", "laptop", "bench", "paper"):
            assert name in SCENARIOS

    def test_paper_scenario_matches_paper(self):
        paper = get_scenario("paper")
        assert paper.scale.n_persons == 2_900_000
        assert paper.duration_hours == 4 * HOURS_PER_WEEK
        assert paper.n_ranks == 256

    def test_unknown_scenario(self):
        with pytest.raises(ConfigError, match="available"):
            get_scenario("galaxy")

    def test_configs_build(self):
        for scenario in SCENARIOS.values():
            cfg = scenario.simulation_config()
            assert cfg.n_ranks == scenario.n_ranks

    def test_smoke_scenario_runs_end_to_end(self):
        scenario = get_scenario("smoke")
        pop = repro.generate_population(scenario.scale)
        result = repro.Simulation(
            pop, scenario.simulation_config()
        ).run_fast()
        net, _ = repro.synthesize_network(
            result.records, pop.n_persons, 0, scenario.duration_hours
        )
        assert net.n_edges > 0

    def test_all_descriptions_non_empty(self):
        for scenario in SCENARIOS.values():
            assert scenario.description
