"""Tests for the ASCII plot renderers."""

from __future__ import annotations

import numpy as np

from repro.viz import ascii_histogram, ascii_loglog, ascii_series


class TestLogLog:
    def test_renders_points(self):
        x = np.array([1, 10, 100])
        y = np.array([100, 10, 1])
        out = ascii_loglog(x, y, width=30, height=10, title="t")
        assert "t" in out
        assert "o" in out
        assert "10^" in out

    def test_overlays_use_marks(self):
        x = np.arange(1, 50)
        y = 1000.0 / x
        out = ascii_loglog(x, y, overlays=[(x, 500.0 / x, "+")])
        assert "+" in out

    def test_nonpositive_filtered(self):
        out = ascii_loglog(np.array([0, 1, 2]), np.array([1, 0, 4]))
        assert isinstance(out, str)

    def test_empty_input(self):
        out = ascii_loglog(np.array([]), np.array([]))
        assert isinstance(out, str)


class TestHistogram:
    def test_bars_scale_with_counts(self):
        edges = np.array([0.0, 0.5, 1.0])
        out = ascii_histogram(edges, np.array([1, 10]), width=20)
        lines = [l for l in out.splitlines() if "#" in l]
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")

    def test_counts_printed(self):
        edges = np.array([0.0, 1.0])
        out = ascii_histogram(edges, np.array([42]))
        assert "42" in out

    def test_empty(self):
        out = ascii_histogram(np.array([0.0]), np.array([]), title="x")
        assert "empty" in out

    def test_log_scale_option(self):
        edges = np.linspace(0, 1, 4)
        out = ascii_histogram(edges, np.array([1, 1000, 10]), log_counts=True)
        assert isinstance(out, str)


class TestSeries:
    def test_renders(self):
        out = ascii_series(np.sin(np.linspace(0, 6, 100)) + 2, title="wave")
        assert "wave" in out
        assert "*" in out
