"""Tests for the ForceAtlas2 layout."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import LayoutError
from repro.viz import ForceAtlas2Layout, forceatlas2_layout


def clique(n):
    a = np.ones((n, n)) - np.eye(n)
    return sp.csr_matrix(a)


def two_cliques(n):
    """Two n-cliques joined by one bridge edge."""
    a = np.zeros((2 * n, 2 * n))
    a[:n, :n] = 1
    a[n:, n:] = 1
    np.fill_diagonal(a, 0)
    a[0, n] = a[n, 0] = 1
    return sp.csr_matrix(a)


class TestLayout:
    def test_returns_finite_positions(self):
        pos = forceatlas2_layout(clique(10), iterations=30)
        assert pos.shape == (10, 2)
        assert np.isfinite(pos).all()

    def test_deterministic_for_seed(self):
        a = forceatlas2_layout(clique(8), iterations=20, seed=3)
        b = forceatlas2_layout(clique(8), iterations=20, seed=3)
        assert (a == b).all()

    def test_seeds_differ(self):
        a = forceatlas2_layout(clique(8), iterations=20, seed=3)
        b = forceatlas2_layout(clique(8), iterations=20, seed=4)
        assert not np.allclose(a, b)

    def test_clusters_separate(self):
        """Force-directed layouts place dense clusters apart: the mean
        within-clique distance must be far below the cross-clique one."""
        n = 12
        pos = forceatlas2_layout(two_cliques(n), iterations=150, seed=1)
        a, b = pos[:n], pos[n:]
        within = np.linalg.norm(a - a.mean(axis=0), axis=1).mean() + np.linalg.norm(
            b - b.mean(axis=0), axis=1
        ).mean()
        between = np.linalg.norm(a.mean(axis=0) - b.mean(axis=0))
        assert between > within

    def test_disconnected_node_not_flung_to_infinity(self):
        """Gravity keeps isolated vertices near the origin."""
        a = sp.lil_matrix((6, 6))
        a[0, 1] = a[1, 0] = 1
        pos = forceatlas2_layout(a.tocsr(), iterations=100, seed=0)
        assert np.isfinite(pos).all()
        assert np.linalg.norm(pos, axis=1).max() < 1e4

    def test_run_on_real_ego(self, small_net):
        from repro.analysis import ego_network

        ego = ego_network(small_net, int(np.argmax(small_net.degrees())), radius=1)
        pos = forceatlas2_layout(ego.matrix, iterations=25)
        assert pos.shape == (ego.n_nodes, 2)
        assert np.isfinite(pos).all()


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(LayoutError):
            ForceAtlas2Layout(adjacency=sp.csr_matrix((2, 3)))

    def test_rejects_huge_graph(self):
        with pytest.raises(LayoutError):
            ForceAtlas2Layout(adjacency=sp.csr_matrix((100_001, 100_001)))

    def test_rejects_zero_iterations(self):
        layout = ForceAtlas2Layout(adjacency=clique(4))
        with pytest.raises(LayoutError):
            layout.run(iterations=0)

    def test_asymmetric_input_symmetrized(self):
        a = sp.lil_matrix((3, 3))
        a[0, 1] = 2  # only upper entry
        layout = ForceAtlas2Layout(adjacency=a.tocsr())
        assert layout.adjacency[1, 0] == layout.adjacency[0, 1]

    def test_block_size_does_not_change_result(self):
        a = two_cliques(6)
        p1 = ForceAtlas2Layout(adjacency=a, seed=5, block_rows=4)
        p2 = ForceAtlas2Layout(adjacency=a, seed=5, block_rows=1024)
        r1 = p1.run(iterations=10)
        r2 = p2.run(iterations=10)
        assert np.allclose(r1, r2)
