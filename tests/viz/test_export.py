"""Tests for GEXF/GraphML export (networkx readback as oracle)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import LayoutError
from repro.viz import write_gexf, write_graphml
from repro.viz.gexf import degree_colors


@pytest.fixture()
def small_graph():
    a = sp.lil_matrix((4, 4))
    a[0, 1] = 3
    a[1, 2] = 1
    a[0, 3] = 2
    a = a + a.T
    return a.tocsr()


class TestGexf:
    def test_readable_by_networkx(self, small_graph, tmp_path):
        path = write_gexf(tmp_path / "g.gexf", small_graph)
        g = nx.read_gexf(path)
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 3

    def test_weights_preserved(self, small_graph, tmp_path):
        path = write_gexf(tmp_path / "g.gexf", small_graph)
        g = nx.read_gexf(path)
        assert g["0"]["1"]["weight"] == 3.0

    def test_positions_written(self, small_graph, tmp_path):
        pos = np.arange(8, dtype=float).reshape(4, 2)
        path = write_gexf(tmp_path / "g.gexf", small_graph, positions=pos)
        text = path.read_text()
        assert "position" in text and 'x="0.0000"' in text

    def test_position_shape_checked(self, small_graph, tmp_path):
        with pytest.raises(LayoutError):
            write_gexf(tmp_path / "g.gexf", small_graph, positions=np.zeros((2, 2)))

    def test_labels(self, small_graph, tmp_path):
        labels = np.array([10, 20, 30, 40])
        path = write_gexf(tmp_path / "g.gexf", small_graph, node_labels=labels)
        g = nx.read_gexf(path)
        assert g.nodes["0"]["label"] == "10"

    def test_upper_triangular_input_works(self, tmp_path):
        up = sp.coo_matrix(([5], ([0], [1])), shape=(2, 2)).tocsr()
        path = write_gexf(tmp_path / "g.gexf", up)
        g = nx.read_gexf(path)
        assert g.number_of_edges() == 1


class TestDegreeColors:
    def test_darker_for_higher_degree(self):
        colors = degree_colors(np.array([1, 10, 100]))
        # grayscale, decreasing with degree
        assert colors[0, 0] > colors[1, 0] > colors[2, 0]
        assert (colors[:, 0] == colors[:, 1]).all()

    def test_uniform_degrees(self):
        colors = degree_colors(np.array([5, 5]))
        assert (colors[0] == colors[1]).all()

    def test_empty(self):
        assert degree_colors(np.array([])).shape == (0, 3)


class TestGraphML:
    def test_readable_by_networkx(self, small_graph, tmp_path):
        path = write_graphml(tmp_path / "g.graphml", small_graph)
        g = nx.read_graphml(path)
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 3
        assert g["n0"]["n1"]["weight"] == 3.0

    def test_node_attributes(self, small_graph, tmp_path):
        path = write_graphml(
            tmp_path / "g.graphml",
            small_graph,
            node_attrs={"age": np.array([5, 15, 30, 70])},
        )
        g = nx.read_graphml(path)
        assert g.nodes["n2"]["age"] == 30.0

    def test_string_attributes(self, small_graph, tmp_path):
        path = write_graphml(
            tmp_path / "g.graphml",
            small_graph,
            node_attrs={"name": np.array(["a", "b", "c", "d"])},
        )
        g = nx.read_graphml(path)
        assert g.nodes["n1"]["name"] == "b"

    def test_attr_length_checked(self, small_graph, tmp_path):
        with pytest.raises(LayoutError):
            write_graphml(
                tmp_path / "g.graphml",
                small_graph,
                node_attrs={"age": np.array([1])},
            )
