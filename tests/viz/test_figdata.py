"""Tests for the figure-data CSV exporters."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.viz import (
    export_all_figure_data,
    export_fig3_csv,
    export_fig4_csv,
    export_fig5_csv,
)


def read_csv(path):
    with open(path) as fh:
        comment = fh.readline()
        reader = csv.DictReader(fh)
        rows = list(reader)
    return comment, rows


class TestFig3:
    def test_columns_and_counts(self, small_net, tmp_path):
        path = export_fig3_csv(small_net, tmp_path / "fig3.csv")
        comment, rows = read_csv(path)
        assert "Figure 3" in comment
        assert set(rows[0]) == {
            "degree", "count", "fraction", "power_law",
            "truncated_power_law", "exponential",
        }
        total = sum(int(r["count"]) for r in rows)
        degrees = small_net.degrees()
        assert total == int(np.count_nonzero(degrees > 0))

    def test_fractions_sum_to_one(self, small_net, tmp_path):
        _, rows = read_csv(export_fig3_csv(small_net, tmp_path / "f.csv"))
        assert sum(float(r["fraction"]) for r in rows) == pytest.approx(
            1.0, abs=1e-3
        )


class TestFig4:
    def test_bins_cover_unit_interval(self, small_net, tmp_path):
        path = export_fig4_csv(small_net, tmp_path / "fig4.csv", n_bins=10)
        _, rows = read_csv(path)
        assert len(rows) == 10
        assert float(rows[0]["bin_lo"]) == 0.0
        assert float(rows[-1]["bin_hi"]) == 1.0

    def test_counts_match_defined_vertices(self, small_net, tmp_path):
        _, rows = read_csv(export_fig4_csv(small_net, tmp_path / "f.csv"))
        total = sum(int(r["count"]) for r in rows)
        assert total == int(np.count_nonzero(small_net.degrees() >= 2))


class TestFig5:
    def test_long_format_groups(self, small_net, small_pop, tmp_path):
        path = export_fig5_csv(small_net, small_pop.persons, tmp_path / "f.csv")
        _, rows = read_csv(path)
        groups = {r["group"] for r in rows}
        assert "0-14" in groups and "65+" in groups
        for r in rows[:20]:
            assert int(r["degree"]) >= 1
            assert int(r["count"]) >= 1


class TestAll:
    def test_writes_three_files(self, small_net, small_pop, tmp_path):
        paths = export_all_figure_data(
            small_net, small_pop.persons, tmp_path / "figs"
        )
        assert len(paths) == 3
        assert all(p.exists() for p in paths)
