"""End-to-end integration tests across every subsystem.

These are the whole-paper scenarios: simulate → log → synthesize →
analyze, serial vs distributed, in-memory vs on-disk, single-window vs
multi-window — all must agree.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import summarize
from repro.distrib import spatial_partition
from repro.evlog import LogReader, LogSet


@pytest.fixture(scope="module")
def pop():
    return repro.generate_population(repro.ScaleConfig(n_persons=500, seed=77))


class TestFullPipelineConsistency:
    def test_disk_roundtrip_equals_in_memory(self, pop, tmp_path):
        """simulate → EVL file → synthesize == simulate → synthesize."""
        cfg = repro.SimulationConfig(
            scale=pop.scale, duration_hours=repro.HOURS_PER_WEEK
        )
        path = tmp_path / "rank_0000.evl"
        res = repro.Simulation(pop, cfg).run_fast(log_path=path)
        net_mem, _ = repro.synthesize_network(
            res.records, pop.n_persons, 0, repro.HOURS_PER_WEEK
        )
        net_disk, _ = repro.synthesize_from_logs(
            tmp_path, pop.n_persons, 0, repro.HOURS_PER_WEEK
        )
        assert (net_mem.adjacency != net_disk.adjacency).nnz == 0

    def test_distributed_network_equals_serial_network(self, pop, tmp_path):
        cfg = repro.SimulationConfig(
            scale=pop.scale, duration_hours=repro.HOURS_PER_WEEK, n_ranks=4
        )
        part = spatial_partition(
            pop.places.coords(), pop.places.capacity.astype(float), 4
        )
        repro.DistributedSimulation(pop, cfg, part).run(log_dir=tmp_path)
        net_dist, _ = repro.synthesize_from_logs(
            tmp_path, pop.n_persons, 0, repro.HOURS_PER_WEEK, batch_size=2
        )

        serial_cfg = repro.SimulationConfig(
            scale=pop.scale, duration_hours=repro.HOURS_PER_WEEK
        )
        serial = repro.Simulation(pop, serial_cfg).run_fast()
        net_serial, _ = repro.synthesize_network(
            serial.records, pop.n_persons, 0, repro.HOURS_PER_WEEK
        )
        assert (net_dist.adjacency != net_serial.adjacency).nnz == 0

    def test_weekly_networks_sum_to_fortnight(self, pop):
        """Per-week synthesis + summation == one two-week synthesis
        (the paper's multi-log aggregation step)."""
        cfg = repro.SimulationConfig(
            scale=pop.scale, duration_hours=2 * repro.HOURS_PER_WEEK
        )
        res = repro.Simulation(pop, cfg).run_fast()
        w = repro.HOURS_PER_WEEK
        net1, _ = repro.synthesize_network(res.records, pop.n_persons, 0, w)
        net2, _ = repro.synthesize_network(res.records, pop.n_persons, w, 2 * w)
        total, _ = repro.synthesize_network(res.records, pop.n_persons, 0, 2 * w)
        summed = net1 + net2
        assert (summed.adjacency != total.adjacency).nnz == 0

    def test_network_self_consistency(self, pop):
        cfg = repro.SimulationConfig(
            scale=pop.scale, duration_hours=repro.HOURS_PER_WEEK
        )
        res = repro.Simulation(pop, cfg).run_fast()
        net, report = repro.synthesize_network(
            res.records, pop.n_persons, 0, repro.HOURS_PER_WEEK
        )
        s = summarize(net)
        # handshake lemma, weight bounds, household floor
        assert net.degrees().sum() == 2 * s.n_edges
        # max possible pair weight is the window length
        assert net.adjacency.data.max() <= repro.HOURS_PER_WEEK
        # household members share >= 7 nightly hours every day
        hh = pop.persons.household
        groups = np.flatnonzero(np.bincount(hh) >= 2)
        checked = 0
        for h in groups[:20]:
            members = np.flatnonzero(hh == h)
            for i in range(len(members) - 1):
                w = net.edge_weight(int(members[i]), int(members[i + 1]))
                assert w >= 7 * 7  # 7 forced home hours x 7 days
                checked += 1
        assert checked > 0


class TestEpidemicOnNetwork:
    def test_disease_spreads_along_collocation_edges(self, pop):
        """Every transmission pair must be an edge of the collocation
        network for the same window — the two pipelines agree."""
        cfg = repro.SimulationConfig(
            scale=pop.scale,
            duration_hours=repro.HOURS_PER_WEEK,
            disease=repro.DiseaseConfig(
                transmissibility=0.03, initial_infected=3
            ),
        )
        res = repro.Simulation(pop, cfg).run()
        net, _ = repro.synthesize_network(
            res.records, pop.n_persons, 0, repro.HOURS_PER_WEEK
        )
        assert res.disease is not None
        pairs = [
            (t.infected, t.infector) for t in res.disease.transmissions
        ]
        assert pairs, "outbreak failed to spread"
        for infected, infector in pairs:
            assert net.edge_weight(infected, infector) > 0


class TestCacheSizeInvariance:
    def test_log_content_independent_of_cache(self, pop, tmp_path):
        """The cache is an IO policy; bytes on disk differ (chunking) but
        records must not."""
        cfg_small = repro.SimulationConfig(
            scale=pop.scale, duration_hours=100, log_cache_records=37
        )
        cfg_big = repro.SimulationConfig(
            scale=pop.scale, duration_hours=100, log_cache_records=100_000
        )
        repro.Simulation(pop, cfg_small).run_fast(log_path=tmp_path / "s.evl")
        repro.Simulation(pop, cfg_big).run_fast(log_path=tmp_path / "b.evl")
        a = LogReader(tmp_path / "s.evl")
        b = LogReader(tmp_path / "b.evl")
        assert a.n_chunks > b.n_chunks
        assert (a.read_all() == b.read_all()).all()
