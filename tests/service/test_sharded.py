"""Sharded-cache service mode: same wire answers, N caches underneath.

With ``ServiceConfig(shards=N)`` the service builds a
``ShardedTileCache`` per layer key instead of one ``TileCache``; every
answer a client decodes off the wire must remain **bit-identical** to
the single-cache mode (which is itself bit-identical to direct
synthesis), including after a reload recomputes the shard plan.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.analysis import degree_distribution, ego_network
from repro.core.layers import layer_caches
from repro.service import NetworkQueryService, ServiceClient, ServiceConfig

from .conftest import assert_bit_identical

pytestmark = pytest.mark.timeout(120)


def make_sharded(service_logs, small_pop, **overrides) -> NetworkQueryService:
    config = ServiceConfig(
        port=0, shards=3, shard_partition="refined", **overrides
    )
    return NetworkQueryService(
        service_logs,
        small_pop.n_persons,
        places=small_pop.places,
        config=config,
    )


class TestShardedService:
    def test_window_ego_degrees_bit_identical(
        self, service_logs, small_pop, direct_ref
    ):
        ref = direct_ref(24, 192)
        person = 7

        async def scenario():
            svc = make_sharded(service_logs, small_pop)
            async with svc:
                async with ServiceClient(port=svc.port) as client:
                    net = await client.query_window(24, 192)
                    ego = await client.query_ego(person, 24, 192)
                    deg = await client.degree_summary(24, 192)
            return net, ego, deg

        net, ego, deg = asyncio.run(scenario())
        assert_bit_identical(net.adjacency, ref.adjacency)
        ref_ego = ego_network(ref, person, radius=2)
        assert ego.center == person
        assert list(ego.persons) == list(ref_ego.persons)
        assert_bit_identical(ego.matrix, ref_ego.matrix)
        ref_dist = degree_distribution(ref.degrees())
        assert deg["n_vertices"] == ref_dist.n_vertices
        assert deg["mean_degree"] == pytest.approx(ref_dist.mean_degree)
        assert deg["degrees"] == ref_dist.degrees.tolist()

    def test_layers_served_from_masked_shards(
        self, service_logs, small_pop, direct_ref
    ):
        """Per-kind place masks intersect each shard's mask; the reduced
        layer answers still sum to the full network."""
        ref = direct_ref(0, 168)
        kinds = ["home", "school", "workplace", "other"]

        async def scenario():
            svc = make_sharded(service_logs, small_pop)
            async with svc:
                async with ServiceClient(port=svc.port) as client:
                    return {
                        kind: await client.query_layer(kind, 0, 168)
                        for kind in kinds
                    }

        layers = asyncio.run(scenario())
        total = sum(net.adjacency for net in layers.values())
        assert (total != ref.adjacency).nnz == 0
        caches = layer_caches(
            service_logs, small_pop.places, small_pop.n_persons
        )
        try:
            for kind, net in layers.items():
                expected = caches[kind].query_window(0, 168)
                assert_bit_identical(net.adjacency, expected.adjacency)
        finally:
            for cache in caches.values():
                cache.close()

    def test_sharded_matches_single_cache_mode(self, service_logs, small_pop):
        """The strong form: both modes of the *service* agree bitwise on
        an unaligned window."""

        async def run_mode(shards):
            config = ServiceConfig(port=0, shards=shards)
            svc = NetworkQueryService(
                service_logs,
                small_pop.n_persons,
                places=small_pop.places,
                config=config,
            )
            async with svc:
                async with ServiceClient(port=svc.port) as client:
                    return await client.query_window(5, 107)

        a = asyncio.run(run_mode(1))
        b = asyncio.run(run_mode(4))
        assert_bit_identical(a.adjacency, b.adjacency)

    def test_reload_recomputes_shard_plan(
        self, service_logs, small_pop, direct_ref
    ):
        ref = direct_ref(0, 168)

        async def scenario():
            svc = make_sharded(service_logs, small_pop)
            async with svc:
                async with ServiceClient(port=svc.port) as client:
                    before = await client.query_window(0, 168)
                    resp = await client.reload()
                    assert resp["ok"]
                    after = await client.query_window(0, 168)
            return before, after

        before, after = asyncio.run(scenario())
        assert_bit_identical(before.adjacency, ref.adjacency)
        assert_bit_identical(after.adjacency, ref.adjacency)

    def test_stats_reflect_sharded_cache(self, service_logs, small_pop):
        async def scenario():
            svc = make_sharded(service_logs, small_pop)
            async with svc:
                async with ServiceClient(port=svc.port) as client:
                    await client.query_window(0, 168)
                    return await client.stats()

        stats = asyncio.run(scenario())
        assert stats["stats"]["queries"] >= 1
        full = stats["caches"]["full"]
        assert full["queries"] >= 1
        assert full["cached_nnz"] >= 0
        assert len(full["digest"]) == 64
