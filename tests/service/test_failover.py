"""FailoverClient: replica failover, circuit breakers, hedging.

Two real services back each set; failures are injected by hard-killing
one replica (``kill_service``: listener and every connection reset, no
drain) or by parking its executor behind a gate.  The invariant
throughout is the service suite's: whatever the failover client returns
must be bit-identical to a direct synthesis of the same window, no
matter which replica answered.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.errors import ReplicaSetError, ServiceError
from repro.service import FailoverClient
from repro.service.resilience import CircuitBreaker

from ._chaos import kill_service
from .conftest import assert_bit_identical
from .test_faults import _Gate, make_service, wait_for

pytestmark = pytest.mark.timeout(120)

WINDOW = (0, 24)


def fast_breakers() -> dict:
    """Breakers that trip on the first failure and reset quickly."""
    return {
        "window": 2,
        "min_samples": 1,
        "failure_threshold": 0.5,
        "reset_timeout": 0.2,
    }


class TestFailover:
    def test_queries_continue_after_one_replica_is_killed(
        self, service_logs, small_pop, direct_ref
    ):
        async def scenario():
            a = make_service(service_logs, small_pop, prefetch_tiles=0)
            b = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with a, b:
                client = FailoverClient(
                    [("127.0.0.1", a.port), ("127.0.0.1", b.port)],
                    retries=3,
                    attempt_timeout=10.0,
                    breaker_kwargs=fast_breakers(),
                    rng=random.Random(11),
                )
                async with client:
                    net = await client.query_window(*WINDOW)
                    assert_bit_identical(
                        net.adjacency, direct_ref(*WINDOW).adjacency
                    )
                    await kill_service(a)
                    # every subsequent query fails over to b
                    for _ in range(4):
                        net = await client.query_window(*WINDOW)
                        assert_bit_identical(
                            net.adjacency, direct_ref(*WINDOW).adjacency
                        )
                    assert client.counters["failovers"] >= 1
                    assert b.stats.queries >= 1

        asyncio.run(scenario())

    def test_breaker_opens_and_dead_set_raises_replica_set_error(
        self, service_logs, small_pop
    ):
        async def scenario():
            a = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with a:
                client = FailoverClient(
                    [("127.0.0.1", a.port)],
                    retries=1,
                    attempt_timeout=1.0,
                    backoff_base=0.01,
                    backoff_cap=0.02,
                    breaker_kwargs=fast_breakers(),
                    rng=random.Random(5),
                )
                async with client:
                    await client.ping()
                    await kill_service(a)
                    with pytest.raises(ReplicaSetError) as exc_info:
                        await client.query_window(*WINDOW)
                    assert exc_info.value.__cause__ is not None
                    rep = client.replicas[0]
                    assert rep.breaker.state == CircuitBreaker.OPEN

        asyncio.run(scenario())

    def test_open_breaker_skips_replica_then_probe_recovers_it(
        self, service_logs, small_pop, direct_ref
    ):
        async def scenario():
            a = make_service(service_logs, small_pop, prefetch_tiles=0)
            b = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with a, b:
                port_a = a.port
                client = FailoverClient(
                    [("127.0.0.1", port_a), ("127.0.0.1", b.port)],
                    retries=2,
                    attempt_timeout=5.0,
                    breaker_kwargs=fast_breakers(),
                    rng=random.Random(3),
                )
                async with client:
                    await kill_service(a)
                    for _ in range(4):
                        await client.query_window(*WINDOW)
                    rep_a = client.replicas[0]
                    assert rep_a.breaker.state == CircuitBreaker.OPEN
                    skips_before = client.counters["breaker_skips"]
                    assert skips_before >= 1
                    # replica a comes back on the same port
                    revived = make_service(
                        service_logs, small_pop, prefetch_tiles=0,
                    )
                    revived.config.port = port_a
                    async with revived:
                        await asyncio.sleep(0.25)  # past reset_timeout
                        for _ in range(6):
                            net = await client.query_window(*WINDOW)
                            assert_bit_identical(
                                net.adjacency, direct_ref(*WINDOW).adjacency
                            )
                        # the half-open probe closed the breaker again
                        assert rep_a.breaker.state == CircuitBreaker.CLOSED
                        assert revived.stats.queries >= 1

        asyncio.run(scenario())

    def test_mutating_ops_are_refused(self, service_logs, small_pop):
        async def scenario():
            a = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with a:
                client = FailoverClient([("127.0.0.1", a.port)])
                async with client:
                    for op in ("reload", "shutdown"):
                        with pytest.raises(ServiceError) as exc_info:
                            await client.request(op)
                        assert exc_info.value.code == "bad-request"
                assert a.stats.requests == 0

        asyncio.run(scenario())

    def test_hedging_wins_on_a_stalled_primary(
        self, service_logs, small_pop, direct_ref
    ):
        """Replica a's executor is parked behind a gate; with hedging on,
        the client races b after hedge_after and b's answer wins."""

        async def scenario():
            a = make_service(
                service_logs, small_pop,
                prefetch_tiles=0, executor_threads=1,
            )
            b = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with a, b:
                gate = _Gate(await a._get_handle("full"))
                client = FailoverClient(
                    [("127.0.0.1", a.port), ("127.0.0.1", b.port)],
                    retries=1,
                    attempt_timeout=30.0,
                    hedge_after=0.2,
                    breaker_kwargs=fast_breakers(),
                    rng=random.Random(2),
                )
                async with client:
                    net = await client.query_window(*WINDOW)
                    assert_bit_identical(
                        net.adjacency, direct_ref(*WINDOW).adjacency
                    )
                    assert client.counters["hedges"] == 1
                    assert client.counters["hedged_wins"] == 1
                    assert b.stats.queries == 1
                    gate.release.set()

        asyncio.run(scenario())

    def test_string_addresses_parse(self, service_logs, small_pop):
        async def scenario():
            a = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with a:
                client = FailoverClient([f"127.0.0.1:{a.port}"])
                async with client:
                    assert (await client.ping())["pong"] is True

        asyncio.run(scenario())

    def test_deadline_bounds_the_whole_failover_dance(
        self, service_logs, small_pop
    ):
        """With every replica dead, a deadline turns the retry cycle into
        a bounded DeadlineError instead of a long exhaustion."""

        async def scenario():
            a = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with a:
                port = a.port
                await kill_service(a)
                client = FailoverClient(
                    [("127.0.0.1", port)],
                    retries=50,
                    attempt_timeout=0.2,
                    deadline=1.0,
                    backoff_base=0.05,
                    breaker_kwargs=fast_breakers(),
                    rng=random.Random(9),
                )
                loop = asyncio.get_running_loop()
                start = loop.time()
                async with client:
                    with pytest.raises(Exception) as exc_info:
                        await client.query_window(*WINDOW)
                elapsed = loop.time() - start
                from repro.errors import DeadlineError

                assert isinstance(
                    exc_info.value, (DeadlineError, ReplicaSetError)
                )
                assert elapsed < 10.0

        asyncio.run(scenario())
