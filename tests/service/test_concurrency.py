"""Concurrency: coalescing, bit-identity under load, tenant isolation.

The contracts under test:

* Identical in-flight windows share ONE composition (the instrumented
  ``compositions`` / ``coalesced`` counters prove it), and every client —
  leader or follower — decodes a CSR bit-identical to a direct
  ``kernel="intervals"`` synthesis.
* Derived ops (``ego``, ``degrees``) coalesce with plain ``window``
  requests over the same window.
* Admission budgets are strictly per tenant: one tenant saturating its
  budget is rejected with ``retry_after`` while another tenant's
  identical query is admitted, and nothing leaks between ledgers.

Tests drive a real server over real sockets; determinism for the
admission tests comes from pinning ``executor_threads=1`` and parking a
gate job in the executor so admitted queries stay in flight for exactly
as long as the test wants.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.layers import layer_caches
from repro.errors import AdmissionError
from repro.analysis import degree_distribution, ego_network
from repro.service import (
    AdmissionController,
    NetworkQueryService,
    ServiceClient,
    ServiceConfig,
)

from .conftest import assert_bit_identical

pytestmark = pytest.mark.timeout(120)


def make_service(service_logs, small_pop, **overrides) -> NetworkQueryService:
    config = ServiceConfig(port=0, **overrides)
    return NetworkQueryService(
        service_logs,
        small_pop.n_persons,
        places=small_pop.places,
        config=config,
    )


async def connect_clients(port: int, n: int, **kw) -> list[ServiceClient]:
    clients = [ServiceClient(port=port, **kw) for _ in range(n)]
    await asyncio.gather(*(c.connect() for c in clients))
    return clients


async def close_clients(clients) -> None:
    await asyncio.gather(*(c.close() for c in clients))


async def wait_for(predicate, timeout: float = 30.0) -> None:
    """Poll an event-loop-side predicate until true (deterministic sync
    point: the watched state only changes on this same loop)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("timed out waiting for server state")
        await asyncio.sleep(0.005)


class TestCoalescing:
    def test_identical_windows_share_one_composition(
        self, service_logs, small_pop, direct_ref
    ):
        ref = direct_ref(24, 192)
        n_clients = 12

        async def scenario():
            svc = make_service(service_logs, small_pop)
            async with svc:
                clients = await connect_clients(svc.port, n_clients)
                try:
                    # the window is cold: the leader's composition also
                    # builds its tiles, giving every follower ample time
                    # to arrive in flight
                    nets = await asyncio.gather(
                        *(c.query_window(24, 192) for c in clients)
                    )
                finally:
                    await close_clients(clients)
                assert svc.stats.queries == n_clients
                assert svc.stats.compositions == 1
                assert svc.stats.coalesced == n_clients - 1
                return nets

        nets = asyncio.run(scenario())
        assert len(nets) == n_clients
        for net in nets:
            assert (net.t0, net.t1) == (24, 192)
            assert_bit_identical(net.adjacency, ref.adjacency)

    def test_distinct_windows_compose_once_each(
        self, service_logs, small_pop, direct_ref
    ):
        windows = [(0, 168), (24, 192), (5, 100)]
        per_window = 4
        refs = {w: direct_ref(*w) for w in windows}

        async def scenario():
            svc = make_service(service_logs, small_pop)
            async with svc:
                clients = await connect_clients(
                    svc.port, len(windows) * per_window
                )
                try:
                    jobs = [
                        c.query_window(*w)
                        for w, group in zip(
                            windows,
                            [
                                clients[i::len(windows)]
                                for i in range(len(windows))
                            ],
                        )
                        for c in group
                    ]
                    nets = await asyncio.gather(*jobs)
                finally:
                    await close_clients(clients)
                assert svc.stats.compositions == len(windows)
                assert svc.stats.coalesced == len(windows) * (per_window - 1)
                return nets

        nets = asyncio.run(scenario())
        for net in nets:
            assert_bit_identical(
                net.adjacency, refs[(net.t0, net.t1)].adjacency
            )

    def test_derived_ops_coalesce_with_window(
        self, service_logs, small_pop, direct_ref
    ):
        """ego + degrees + window over one window: one composition."""
        ref = direct_ref(0, 168)
        person = 7

        async def scenario():
            svc = make_service(service_logs, small_pop)
            async with svc:
                a, b, c = await connect_clients(svc.port, 3)
                try:
                    net, ego, deg = await asyncio.gather(
                        a.query_window(0, 168),
                        b.query_ego(person, 0, 168),
                        c.degree_summary(0, 168),
                    )
                finally:
                    await close_clients([a, b, c])
                assert svc.stats.queries == 3
                assert svc.stats.compositions == 1
                assert svc.stats.coalesced == 2
                return net, ego, deg

        net, ego, deg = asyncio.run(scenario())
        assert_bit_identical(net.adjacency, ref.adjacency)
        # the served derivations match those computed from the reference
        ref_ego = ego_network(ref, person, radius=2)
        assert ego.center == person
        assert list(ego.persons) == list(ref_ego.persons)
        assert_bit_identical(ego.matrix, ref_ego.matrix)
        ref_dist = degree_distribution(ref.degrees())
        assert deg["n_vertices"] == ref_dist.n_vertices
        assert deg["n_isolated"] == ref_dist.n_isolated
        assert deg["mean_degree"] == pytest.approx(ref_dist.mean_degree)
        assert deg["degrees"] == ref_dist.degrees.tolist()
        assert deg["counts"] == ref_dist.counts.tolist()

    def test_layers_decompose_served_full_network(
        self, service_logs, small_pop, direct_ref
    ):
        """Concurrent layer queries sum exactly to the full adjacency,
        and each layer matches its own direct per-kind cache."""
        ref = direct_ref(0, 168)
        kinds = ["home", "school", "workplace", "other"]

        async def scenario():
            svc = make_service(service_logs, small_pop)
            async with svc:
                clients = await connect_clients(svc.port, len(kinds))
                try:
                    nets = await asyncio.gather(
                        *(
                            c.query_layer(kind, 0, 168)
                            for c, kind in zip(clients, kinds)
                        )
                    )
                finally:
                    await close_clients(clients)
                return dict(zip(kinds, nets))

        layers = asyncio.run(scenario())
        total = sum(net.adjacency for net in layers.values())
        assert (total != ref.adjacency).nnz == 0
        caches = layer_caches(service_logs, small_pop.places, small_pop.n_persons)
        try:
            for kind, net in layers.items():
                expected = caches[kind].query_window(0, 168)
                assert_bit_identical(net.adjacency, expected.adjacency)
        finally:
            for cache in caches.values():
                cache.close()


class TestAdmission:
    def test_controller_is_strictly_per_tenant(self):
        ctl = AdmissionController(budget_nnz=100.0, assume_nnz_per_hour=10.0)
        cost = ctl.admit("alice", 24)  # idle tenant: over-budget admitted
        assert cost == 240.0
        with pytest.raises(AdmissionError) as err:
            ctl.admit("alice", 24)
        assert err.value.retry_after == ctl.retry_after
        # bob's ledger is untouched by alice's saturation
        assert ctl.admit("bob", 24) == 240.0
        ctl.release("alice", cost)
        assert ctl.tenants["alice"].in_flight_queries == 0
        assert ctl.admit("alice", 24) == 240.0  # idle again
        assert ctl.tenants["alice"].rejected == 1
        assert ctl.tenants["bob"].rejected == 0

    def test_density_ratchets_up_only(self):
        ctl = AdmissionController(budget_nnz=None)
        assert ctl.estimate(24) == 1.0  # no prior: concurrency cap
        ctl.observe(24, 2400)
        assert ctl.density == 100.0
        ctl.observe(24, 24)  # sparser window must not relax the estimate
        assert ctl.density == 100.0
        assert ctl.estimate(10) == 1000.0

    def test_server_rejects_over_budget_tenant_only(
        self, service_logs, small_pop, direct_ref
    ):
        ref = direct_ref(0, 24)

        async def scenario():
            svc = make_service(
                service_logs,
                small_pop,
                executor_threads=1,
                prefetch_tiles=0,
                tenant_budget_nnz=100.0,
                assume_nnz_per_hour=10.0,
            )
            async with svc:
                gate = threading.Event()
                try:
                    a1, a2 = await connect_clients(
                        svc.port, 2, tenant="alice"
                    )
                    (b1,) = await connect_clients(svc.port, 1, tenant="bob")
                    # park the only executor thread: admitted queries
                    # stay charged until the gate opens
                    svc._executor.submit(gate.wait)
                    first = asyncio.create_task(a1.query_window(0, 24))
                    await wait_for(
                        lambda: svc.admission.tenants.get("alice")
                        is not None
                        and svc.admission.tenants["alice"].in_flight_queries
                        == 1
                    )
                    # alice is over budget (240 in flight > 100): rejected
                    with pytest.raises(AdmissionError) as err:
                        await a2.query_window(0, 24)
                    assert err.value.retry_after == pytest.approx(0.05)
                    assert svc.stats.rejections == 1
                    # bob's identical query is admitted despite alice
                    second = asyncio.create_task(b1.query_window(0, 24))
                    await wait_for(
                        lambda: svc.admission.tenants.get("bob") is not None
                        and svc.admission.tenants["bob"].in_flight_queries
                        == 1
                    )
                    assert svc.admission.tenants["bob"].rejected == 0
                    gate.set()
                    net_a, net_b = await asyncio.gather(first, second)
                    # rejected-then-idle: alice's retry is admitted now
                    net_retry = await a2.query_window(0, 24)
                    await close_clients([a1, a2, b1])
                finally:
                    gate.set()
                alice = svc.admission.tenants["alice"]
                bob = svc.admission.tenants["bob"]
                assert (alice.admitted, alice.rejected) == (2, 1)
                assert (bob.admitted, bob.rejected) == (1, 0)
                assert alice.in_flight_queries == 0
                assert bob.in_flight_queries == 0
                return net_a, net_b, net_retry

        for net in asyncio.run(scenario()):
            assert_bit_identical(net.adjacency, ref.adjacency)

    def test_client_retry_loop_rides_out_rejection(
        self, service_logs, small_pop, direct_ref
    ):
        ref = direct_ref(0, 24)

        async def scenario():
            svc = make_service(
                service_logs,
                small_pop,
                executor_threads=1,
                prefetch_tiles=0,
                tenant_budget_nnz=100.0,
                assume_nnz_per_hour=10.0,
                retry_after=0.02,
            )
            async with svc:
                gate = threading.Event()
                try:
                    a1, a2 = await connect_clients(
                        svc.port, 2, tenant="alice", retries=100
                    )
                    svc._executor.submit(gate.wait)
                    first = asyncio.create_task(a1.query_window(0, 24))
                    await wait_for(
                        lambda: svc.admission.tenants.get("alice")
                        is not None
                        and svc.admission.tenants["alice"].in_flight_queries
                        == 1
                    )
                    second = asyncio.create_task(a2.query_window(0, 24))
                    # let the retry loop hit at least one rejection
                    await wait_for(lambda: svc.stats.rejections >= 1)
                    gate.set()
                    net1, net2 = await asyncio.gather(first, second)
                    await close_clients([a1, a2])
                finally:
                    gate.set()
                assert svc.stats.rejections >= 1
                return net1, net2

        for net in asyncio.run(scenario()):
            assert_bit_identical(net.adjacency, ref.adjacency)


class TestPrefetch:
    def test_prefetch_warms_tiles_beyond_queried_span(
        self, service_logs, small_pop
    ):
        async def scenario():
            svc = make_service(service_logs, small_pop, prefetch_tiles=2)
            async with svc:
                async with ServiceClient(port=svc.port) as client:
                    await client.query_window(48, 96)  # tiles 2..3
                    await svc.prefetch_idle()
                    resp = await client.stats()
                assert svc.stats.prefetched_tiles == 4  # tiles 0,1 + 4,5
                handle = svc._handles["full"]
                assert handle.prefetched == {0, 1, 4, 5}
                # prefetched tiles serve later queries without builds;
                # (0, 48) is deterministic here: its own prefetch
                # candidates (tiles 2..3) were built by the first query,
                # so the racing background warms cannot build anything
                built = handle.cache.stats.tiles_built
                async with ServiceClient(port=svc.port) as client:
                    await client.query_window(0, 48)  # tiles 0..1
                assert handle.cache.stats.tiles_built == built
                await svc.prefetch_idle()
                assert handle.cache.stats.tiles_built == built
                return resp

        resp = asyncio.run(scenario())
        assert resp["stats"]["prefetched_tiles"] == 4

    def test_prefetch_clamps_to_log_horizon(self, service_logs, small_pop):
        async def scenario():
            svc = make_service(service_logs, small_pop, prefetch_tiles=3)
            async with svc:
                horizon = svc._handles["full"].horizon
                last_tile = -(-horizon // 24)
                async with ServiceClient(port=svc.port) as client:
                    # the final tile: nothing exists ahead to warm
                    await client.query_window(
                        (last_tile - 1) * 24, last_tile * 24
                    )
                    await svc.prefetch_idle()
                ahead = {
                    i
                    for i in svc._handles["full"].prefetched
                    if i >= last_tile
                }
                assert ahead == set()

        asyncio.run(scenario())
