"""Chaos soak: the full resilience stack under combined fault injection.

One scenario, everything at once — the acceptance bar for the
resilience layer:

* replica A sits behind a :class:`ChaosProxy` that delays ~10% of its
  response frames and truncates ~5% mid-frame;
* A's tile store has one corrupted persisted tile (CRC mismatch on
  load) and A runs with ``budget_nnz=1`` so queries actually read disk;
* replica B is healthy until it is hard-killed a third of the way
  through the run;
* a :class:`FailoverClient` with per-replica breakers drives a stream
  of window queries across a handful of distinct windows.

Required outcome: ≥ 99% of queries complete (the rest may exhaust the
replica set while both replicas are simultaneously unusable — with B
dead the bar is total), every completed answer is bit-identical to a
direct synthesis, the corrupted tile was quarantined, injected faults
actually fired, nothing hangs (pytest-timeout is the hang detector),
and telemetry stays trustworthy: no span is dropped or duplicated —
every completed attempt's trace is a whole tree with exactly one server
request span.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core import TileCache
from repro.errors import ReplicaSetError
from repro.obs import get_collector
from repro.service import FailoverClient, ServiceClient

from ._chaos import ChaosProxy, corrupt_tile, kill_service
from .conftest import assert_bit_identical
from .test_faults import make_service

pytestmark = pytest.mark.timeout(300)

#: distinct windows the soak cycles through (aligned and unaligned)
WINDOWS = [(0, 24), (24, 72), (5, 50), (0, 168), (100, 148), (160, 200)]
N_QUERIES = 150
KILL_AT = N_QUERIES // 3


class TestChaosSoak:
    def test_soak_with_proxy_faults_replica_kill_and_corrupt_tile(
        self, service_logs, small_pop, tmp_path, direct_ref
    ):
        # pre-persist replica A's tile store, then damage one tile
        store = tmp_path / "replica-a-tiles"
        with TileCache(
            service_logs, small_pop.n_persons, cache_dir=store / "full"
        ) as cache:
            for t0, t1 in WINDOWS:
                cache.query_window(t0, t1)
        corrupt_tile(store / "full")

        async def scenario():
            get_collector().drain()  # span integrity is judged on this run
            a = make_service(
                service_logs, small_pop,
                prefetch_tiles=0,
                cache_dir=store,
                cache_budget_nnz=1,  # force disk reads -> hit the damage
            )
            b = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with a, b:
                rng = random.Random(1234)
                proxy = ChaosProxy(
                    "127.0.0.1", a.port, rng,
                    delay_p=0.10, delay_s=0.05, truncate_p=0.05,
                )
                async with proxy:
                    client = FailoverClient(
                        [("127.0.0.1", proxy.port), ("127.0.0.1", b.port)],
                        retries=8,
                        attempt_timeout=15.0,
                        deadline=60.0,
                        backoff_base=0.02,
                        backoff_cap=0.2,
                        breaker_kwargs={
                            "window": 8,
                            "min_samples": 2,
                            "failure_threshold": 0.5,
                            "reset_timeout": 0.2,
                        },
                        rng=random.Random(99),
                    )
                    completed = 0
                    failed = 0
                    async with client:
                        for i in range(N_QUERIES):
                            if i == KILL_AT:
                                await kill_service(b)
                            t0, t1 = WINDOWS[i % len(WINDOWS)]
                            try:
                                net = await client.query_window(t0, t1)
                            except ReplicaSetError:
                                failed += 1
                                continue
                            completed += 1
                            assert_bit_identical(
                                net.adjacency, direct_ref(t0, t1).adjacency
                            )
                    # -- acceptance criteria ----------------------------
                    assert completed >= 0.99 * N_QUERIES, (
                        f"only {completed}/{N_QUERIES} queries completed "
                        f"({failed} failed); proxy={proxy.counters}, "
                        f"client={client.counters}"
                    )
                    # the injected faults actually fired
                    assert proxy.counters["delayed"] > 0
                    assert proxy.counters["truncated"] > 0
                    assert client.counters["failovers"] >= 1
                    # the corrupted tile was quarantined, never served
                    full = a._handles["full"].cache
                    assert full.stats.tiles_quarantined >= 1
                    quarantined = list(
                        (store / "full").glob("*.quarantined")
                    )
                    assert quarantined
                    return completed

        completed = asyncio.run(scenario())

        # -- span integrity under kill + truncation ---------------------
        # both halves of every trace land in this process's collector
        # (client and servers share it), so the soak can assert that
        # chaos never dropped or duplicated spans.
        spans = get_collector().drain()
        span_ids = [s["span_id"] for s in spans]
        assert len(span_ids) == len(set(span_ids)), "duplicated span ids"
        by_trace: dict[str, list[dict]] = {}
        for s in spans:
            by_trace.setdefault(s["trace_id"], []).append(s)
        # a trace whose client.request completed ok is a completed
        # attempt: its tree must be whole — exactly one server request
        # span, every parent link resolving inside the trace
        ok_traces = [
            tid for tid, ss in by_trace.items()
            if any(
                s["name"] == "client.request" and s["status"] == "ok"
                for s in ss
            )
        ]
        assert len(ok_traces) >= completed, (
            f"{completed} queries completed but only {len(ok_traces)} "
            "traces have an ok client span: spans were dropped"
        )
        for tid in ok_traces:
            ss = by_trace[tid]
            requests = [s for s in ss if s["name"] == "request"]
            assert len(requests) == 1, (
                f"trace {tid} has {len(requests)} server request spans"
            )
            ids = {s["span_id"] for s in ss}
            for s in ss:
                assert s["parent_id"] is None or s["parent_id"] in ids, (
                    f"trace {tid}: span {s['name']} dangles"
                )

    def test_blackhole_replica_is_timed_out_and_failed_over(
        self, service_logs, small_pop, direct_ref
    ):
        """A replica that accepts frames but never answers (100%
        black-hole proxy) must cost one attempt_timeout, not a hang."""

        async def scenario():
            a = make_service(service_logs, small_pop, prefetch_tiles=0)
            b = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with a, b:
                proxy = ChaosProxy(
                    "127.0.0.1", a.port, random.Random(7), blackhole_p=1.0
                )
                async with proxy:
                    client = FailoverClient(
                        [("127.0.0.1", proxy.port), ("127.0.0.1", b.port)],
                        retries=2,
                        attempt_timeout=0.5,
                        breaker_kwargs={
                            "window": 4,
                            "min_samples": 1,
                            "failure_threshold": 0.5,
                            "reset_timeout": 5.0,
                        },
                        rng=random.Random(21),
                    )
                    async with client:
                        for t0, t1 in WINDOWS[:3]:
                            net = await client.query_window(t0, t1)
                            assert_bit_identical(
                                net.adjacency, direct_ref(t0, t1).adjacency
                            )
                        assert proxy.counters["blackholed"] >= 1
                        # the black hole tripped its breaker: later
                        # queries stop paying the timeout
                        rep = client.replicas[0]
                        assert rep.breaker.opens >= 1

        asyncio.run(scenario())

    def test_expired_deadlines_under_chaos_are_rejected_not_queued(
        self, service_logs, small_pop
    ):
        """Even mid-soak the deadline contract holds: a dead-on-arrival
        request is answered with code="expired" and never queued."""

        async def scenario():
            a = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with a:
                async with ServiceClient(port=a.port) as client:
                    from repro.errors import DeadlineError

                    for _ in range(5):
                        with pytest.raises(DeadlineError) as exc_info:
                            await client.request(
                                "window", t0=0, t1=24, deadline=-1.0
                            )
                        assert exc_info.value.code == "expired"
                assert a.stats.expired == 5
                assert a.stats.compositions == 0

        asyncio.run(scenario())
