"""Fault injection: the server must outlive its misbehaving clients.

Scenarios, mirroring the failure taxonomy of ``tests/_faults.py``:

* malformed frames (bad length prefix, non-JSON, non-object header, bad
  ``blob_len``) — answered once with ``code="malformed"``, connection
  closed, server keeps serving everyone else;
* clients that vanish mid-request and mid-response (the latter with an
  RST while their composition is still parked in the executor);
* log-set digest invalidation (``reload``) while a query is in flight —
  the in-flight query finishes bit-identical on the cache snapshot it
  started on, the retired cache closes only after its last reference;
* graceful shutdown draining an in-flight query to a complete response
  while refusing new work with ``code="shutting-down"``.

The executor-gate idiom from the concurrency suite keeps every "while in
flight" window deterministic: a query is provably mid-composition when
its wrapped ``query_window`` has signalled ``started``.
"""

from __future__ import annotations

import asyncio
import shutil
import socket
import struct
import threading

import pytest

from repro.core import synthesize_from_logs
from repro.errors import ServiceError
from repro.service import NetworkQueryService, ServiceClient, ServiceConfig
from repro.service.protocol import read_frame

from .conftest import assert_bit_identical

pytestmark = pytest.mark.timeout(120)


def make_service(service_logs, small_pop, **overrides) -> NetworkQueryService:
    config = ServiceConfig(port=0, **overrides)
    return NetworkQueryService(
        service_logs,
        small_pop.n_persons,
        places=small_pop.places,
        config=config,
    )


async def wait_for(predicate, timeout: float = 30.0) -> None:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("timed out waiting for server state")
        await asyncio.sleep(0.005)


class _Gate:
    """Wrap a handle's ``cache.query_window`` so compositions announce
    themselves and block until the test releases them."""

    def __init__(self, handle) -> None:
        self.started = threading.Event()
        self.release = threading.Event()
        self._orig = handle.cache.query_window

        def gated(t0, t1):
            self.started.set()
            assert self.release.wait(60)
            return self._orig(t0, t1)

        handle.cache.query_window = gated


MALFORMED_FRAMES = [
    # length prefix far beyond max_frame
    struct.pack(">I", 0xFFFFFFFF),
    # zero-length frame
    struct.pack(">I", 0),
    # header is not JSON
    struct.pack(">I", 7) + b"notjson",
    # header is JSON but not an object
    struct.pack(">I", 5) + b"[1,2]",
    # blob_len is negative
    struct.pack(">I", 29) + b'{"op":"ping","blob_len":-512}',
]


class TestMalformedFrames:
    def test_each_malformed_frame_answered_once_then_closed(
        self, service_logs, small_pop
    ):
        async def scenario():
            svc = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with svc:
                for i, frame in enumerate(MALFORMED_FRAMES):
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", svc.port
                    )
                    writer.write(frame)
                    await writer.drain()
                    header, blob = await read_frame(reader)
                    assert header["ok"] is False
                    assert header["code"] == "malformed"
                    assert blob == b""
                    # the server closed its side: EOF, not another frame
                    assert await reader.read(1) == b""
                    writer.close()
                    await writer.wait_closed()
                    assert svc.stats.malformed == i + 1
                # everyone else is unaffected
                async with ServiceClient(port=svc.port) as client:
                    assert (await client.ping())["pong"] is True
                assert svc.stats.errors == 0

        asyncio.run(scenario())

    def test_clean_errors_do_not_lose_stream_phase(
        self, service_logs, small_pop, direct_ref
    ):
        """Validation failures are answered in-band; the same connection
        keeps working afterwards."""
        ref = direct_ref(0, 24)

        async def scenario():
            svc = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with svc:
                async with ServiceClient(port=svc.port) as client:
                    bad = [
                        ("nope", {}),
                        ("window", {"t0": 5, "t1": 5}),
                        ("window", {"t0": -1, "t1": 24}),
                        ("window", {"t0": 0, "t1": 24, "tenant": ""}),
                        ("layer", {"kind": "mall", "t0": 0, "t1": 24}),
                        ("ego", {"person": -1, "t0": 0, "t1": 24}),
                        ("ego", {"person": 1, "radius": 0, "t0": 0, "t1": 24}),
                        ("degrees", {"kind": 42, "t0": 0, "t1": 24}),
                    ]
                    for op, params in bad:
                        with pytest.raises(ServiceError) as err:
                            await client.request(op, **params)
                        assert err.value.code == "bad-request"
                    net = await client.query_window(0, 24)
                assert svc.stats.malformed == 0
                assert svc.stats.errors == 0
                return net

        net = asyncio.run(scenario())
        assert_bit_identical(net.adjacency, ref.adjacency)


class TestDisconnects:
    def test_disconnect_mid_request_is_silent(self, service_logs, small_pop):
        async def scenario():
            svc = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with svc:
                _, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                await wait_for(lambda: svc.stats.connections == 1)
                # half a frame: claim 100 bytes, deliver 10, vanish
                writer.write(struct.pack(">I", 100) + b"x" * 10)
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                async with ServiceClient(port=svc.port) as client:
                    assert (await client.ping())["pong"] is True
                assert svc.stats.malformed == 0
                assert svc.stats.errors == 0

        asyncio.run(scenario())

    def test_disconnect_mid_response_counts_and_survives(
        self, service_logs, small_pop, direct_ref
    ):
        ref = direct_ref(0, 168)

        async def scenario():
            svc = make_service(
                service_logs,
                small_pop,
                prefetch_tiles=0,
                executor_threads=1,
            )
            async with svc:
                gate = threading.Event()
                try:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", svc.port
                    )
                    # park the executor so the query is provably
                    # unanswered when the client resets the connection
                    svc._executor.submit(gate.wait)
                    payload = b'{"op":"window","id":1,"t0":0,"t1":168}'
                    writer.write(struct.pack(">I", len(payload)) + payload)
                    await writer.drain()
                    await wait_for(lambda: svc.stats.queries == 1)
                    # SO_LINGER(on, 0): close sends RST, not FIN
                    sock = writer.get_extra_info("socket")
                    sock.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                    writer.close()
                    gate.set()
                    await wait_for(lambda: svc.stats.disconnects == 1)
                finally:
                    gate.set()
                # the tenant's admission charge was still released
                assert (
                    svc.admission.tenants["anon"].in_flight_queries == 0
                )
                async with ServiceClient(port=svc.port) as client:
                    net = await client.query_window(0, 168)
                assert svc.stats.errors == 0
                return net

        net = asyncio.run(scenario())
        assert_bit_identical(net.adjacency, ref.adjacency)


class TestReloadInFlight:
    def test_digest_invalidation_while_query_in_flight(
        self, service_logs, small_pop, tmp_path
    ):
        """Reload under load: the in-flight query completes on the cache
        it started on; later queries see the new log bytes."""
        log_dir = tmp_path / "logs"
        shutil.copytree(service_logs, log_dir)
        ref_old, _ = synthesize_from_logs(
            log_dir, small_pop.n_persons, 24, 192, kernel="intervals"
        )

        async def scenario():
            svc = make_service(
                log_dir, small_pop, prefetch_tiles=0, executor_threads=2
            )
            async with svc:
                old_handle = svc._handles["full"]
                old_digest = old_handle.cache.digest
                gate = _Gate(old_handle)
                async with ServiceClient(port=svc.port) as a:
                    async with ServiceClient(port=svc.port) as b:
                        inflight = asyncio.create_task(
                            a.query_window(24, 192)
                        )
                        await wait_for(gate.started.is_set)
                        # invalidate the digest: one rank's log vanishes
                        # (the old cache's mmap keeps the inode alive, so
                        # its in-flight query is unaffected)
                        (log_dir / "rank_0001.evl").unlink()
                        resp = await b.reload()
                        assert resp["reloaded"] is True
                        assert resp["digest"] != old_digest
                        # swapped, retired, but NOT closed: the in-flight
                        # query still holds a reference
                        assert svc._handles["full"] is not old_handle
                        assert old_handle.retired
                        assert old_handle in svc._retired
                        gate.release.set()
                        net_old = await inflight
                        # last reference gone -> retired cache closed
                        assert old_handle not in svc._retired
                        net_new = await b.query_window(24, 192)
                assert svc.stats.reloads == 1
                assert svc.stats.errors == 0
                return net_old, net_new

        net_old, net_new = asyncio.run(scenario())
        # consistency: the in-flight query saw the pre-reload logs
        assert_bit_identical(net_old.adjacency, ref_old.adjacency)
        # freshness: the next query no longer sees the deleted rank
        ref_new, _ = synthesize_from_logs(
            log_dir, small_pop.n_persons, 24, 192, kernel="intervals"
        )
        assert_bit_identical(net_new.adjacency, ref_new.adjacency)
        assert net_new.total_weight < net_old.total_weight


class TestGracefulShutdown:
    def test_shutdown_drains_in_flight_query(
        self, service_logs, small_pop, direct_ref
    ):
        ref = direct_ref(0, 24)

        async def scenario():
            svc = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with svc:
                gate = _Gate(svc._handles["full"])
                a = await ServiceClient(port=svc.port).connect()
                b = await ServiceClient(port=svc.port).connect()
                inflight = asyncio.create_task(a.query_window(0, 24))
                await wait_for(gate.started.is_set)
                resp = await b.shutdown()
                assert resp["stopping"] is True
                await wait_for(lambda: svc._draining)
                # draining: pings answer (and say so), queries refused
                assert (await b.ping())["draining"] is True
                with pytest.raises(ServiceError) as err:
                    await b.query_window(0, 24)
                assert err.value.code == "shutting-down"
                gate.release.set()
                net = await inflight
                await svc.wait_stopped()
                assert svc.stats.errors == 0
                assert svc.stats.disconnects == 0
                await a.close()
                await b.close()
                return net

        net = asyncio.run(scenario())
        # the drained query's response arrived complete and correct
        assert_bit_identical(net.adjacency, ref.adjacency)

    def test_new_connection_mid_drain_is_answered_not_hung(
        self, service_logs, small_pop
    ):
        """The listener stays open while the drain waits, so a client
        racing the shutdown gets a fast ``shutting-down`` answer instead
        of a connection refusal or a hang on half-sent bytes."""

        async def scenario():
            svc = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with svc:
                gate = _Gate(svc._handles["full"])
                holder = await ServiceClient(port=svc.port).connect()
                inflight = asyncio.create_task(holder.query_window(0, 24))
                await wait_for(gate.started.is_set)
                stop_task = asyncio.create_task(svc.stop())
                await wait_for(lambda: svc._draining)
                # a brand-new connection mid-drain: accepted and answered
                late = await ServiceClient(port=svc.port).connect()
                with pytest.raises(ServiceError) as err:
                    await late.query_window(0, 24)
                assert err.value.code == "shutting-down"
                # control ops still answer mid-drain, including probes
                assert (await late.ping())["draining"] is True
                assert (await late.liveness())["state"] == "draining"
                assert (await late.readiness())["ready"] is False
                gate.release.set()
                await inflight
                await stop_task
                await holder.close()
                await late.close()

        asyncio.run(scenario())

    def test_drain_timeout_force_closes_wedged_connection(
        self, service_logs, small_pop
    ):
        """A composition that never finishes must not wedge stop():
        after drain_timeout the writer is force-aborted and stop()
        returns, with the executor torn down without joining the hung
        thread."""

        async def scenario():
            svc = make_service(
                service_logs, small_pop,
                prefetch_tiles=0, executor_threads=1, drain_timeout=0.3,
            )
            async with svc:
                gate = _Gate(svc._handles["full"])
                client = await ServiceClient(port=svc.port).connect()
                stuck = asyncio.create_task(client.query_window(0, 24))
                await wait_for(gate.started.is_set)
                loop = asyncio.get_running_loop()
                start = loop.time()
                await svc.stop()  # gate never released before this
                assert loop.time() - start < 5.0  # bounded, not hung
                # the wedged client was reset, not waited on
                with pytest.raises(
                    (ServiceError, ConnectionError, OSError,
                     asyncio.IncompleteReadError)
                ):
                    await stuck
                gate.release.set()  # unwedge the executor thread
                await client.close()

        asyncio.run(scenario())

    def test_disconnect_during_response_write_counts_exactly_once(
        self, service_logs, small_pop
    ):
        """A client that vanishes while its response is being written is
        one disconnect — not one per cleanup path."""

        async def scenario():
            svc = make_service(
                service_logs, small_pop,
                prefetch_tiles=0, executor_threads=1,
            )
            async with svc:
                gate = threading.Event()
                try:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", svc.port
                    )
                    svc._executor.submit(gate.wait)
                    payload = b'{"op":"window","id":1,"t0":0,"t1":336}'
                    writer.write(struct.pack(">I", len(payload)) + payload)
                    await writer.drain()
                    await wait_for(lambda: svc.stats.queries == 1)
                    sock = writer.get_extra_info("socket")
                    sock.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                    writer.close()
                    gate.set()
                    await wait_for(lambda: svc.stats.disconnects >= 1)
                finally:
                    gate.set()
                # settle every cleanup path, then recount
                async with ServiceClient(port=svc.port) as probe:
                    for _ in range(3):
                        await probe.ping()
                assert svc.stats.disconnects == 1
                assert svc.stats.errors == 0

        asyncio.run(scenario())
