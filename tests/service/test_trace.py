"""Trace propagation across the service wire protocol.

The contract: a client query produces ONE connected span tree spanning
both halves — the client's ``client.request`` root, the server's
``request`` span parented to it via ``header["trace"]``, and the
server-side children (admission, coalesce, compose, kernel).  Malformed
trace headers must never kill a request, and the ``--trace-log`` sink
must capture the same tree durably."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs import default_registry, get_collector, read_spans_jsonl
from repro.service import NetworkQueryService, ServiceClient, ServiceConfig
from repro.service.protocol import read_frame, write_frame

pytestmark = pytest.mark.timeout(120)


def make_service(service_logs, small_pop, **overrides) -> NetworkQueryService:
    config = ServiceConfig(port=0, prefetch_tiles=0, **overrides)
    return NetworkQueryService(
        service_logs,
        small_pop.n_persons,
        places=small_pop.places,
        config=config,
    )


@pytest.fixture(autouse=True)
def clean_collector():
    get_collector().drain()
    yield
    get_collector().drain()


def tree_for(spans, trace_id):
    mine = [s for s in spans if s["trace_id"] == trace_id]
    by_id = {s["span_id"]: s for s in mine}
    for s in mine:
        if s["parent_id"] is not None:
            assert s["parent_id"] in by_id, (
                f"span {s['name']} dangles off the tree"
            )
    roots = [s for s in mine if s["parent_id"] is None]
    assert len(roots) == 1, [s["name"] for s in mine]
    return mine, roots[0]


class TestWirePropagation:
    def test_cold_query_yields_one_connected_tree(
        self, service_logs, small_pop
    ):
        async def scenario():
            async with make_service(service_logs, small_pop) as svc:
                async with ServiceClient(port=svc.port) as client:
                    await client.query_window(0, 24)
                    return client.last_trace_id

        trace_id = asyncio.run(scenario())
        assert trace_id, "response must echo the request's trace id"
        spans = get_collector().drain()
        mine, root = tree_for(spans, trace_id)
        names = {s["name"] for s in mine}
        # both halves of the conversation are in the same tree, from the
        # client socket write down to the kernel that built the tiles
        assert root["name"] == "client.request"
        assert {"request", "admission", "coalesce", "compose",
                "kernel"} <= names
        request = next(s for s in mine if s["name"] == "request")
        assert request["parent_id"] == root["span_id"]
        assert request["attrs"]["op"] == "window"

    def test_warm_query_tree_connects_without_composition(
        self, service_logs, small_pop
    ):
        async def scenario():
            async with make_service(service_logs, small_pop) as svc:
                async with ServiceClient(port=svc.port) as client:
                    await client.query_window(0, 24)  # cold: builds tiles
                    get_collector().drain()
                    await client.query_window(0, 24)  # warm: tile hit
                    return client.last_trace_id

        trace_id = asyncio.run(scenario())
        mine, root = tree_for(get_collector().drain(), trace_id)
        assert root["name"] == "client.request"
        assert "request" in {s["name"] for s in mine}

    def test_distinct_queries_get_distinct_traces(
        self, service_logs, small_pop
    ):
        async def scenario():
            ids = []
            async with make_service(service_logs, small_pop) as svc:
                async with ServiceClient(port=svc.port) as client:
                    for _ in range(3):
                        await client.query_window(0, 24)
                        ids.append(client.last_trace_id)
            return ids

        ids = asyncio.run(scenario())
        assert all(ids)
        assert len(set(ids)) == 3

    def test_error_response_flags_request_span(
        self, service_logs, small_pop
    ):
        async def scenario():
            async with make_service(service_logs, small_pop) as svc:
                async with ServiceClient(port=svc.port) as client:
                    with pytest.raises(Exception):
                        await client.query_window(24, 0)  # bad window
                    return client.last_trace_id

        trace_id = asyncio.run(scenario())
        assert trace_id
        mine, _root = tree_for(get_collector().drain(), trace_id)
        request = next(s for s in mine if s["name"] == "request")
        assert request["status"].startswith("error:")


class TestRawHeaders:
    async def _raw(self, port, header):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            write_frame(writer, header)
            await writer.drain()
            resp, _blob = await read_frame(reader)
            return resp
        finally:
            writer.close()
            await writer.wait_closed()

    def test_malformed_trace_header_never_kills_the_request(
        self, service_logs, small_pop
    ):
        async def scenario():
            async with make_service(service_logs, small_pop) as svc:
                out = []
                for bad in ("garbage", 42, {"trace_id": 9},
                            {"trace_id": "x" * 999, "span_id": "s"}):
                    resp = await self._raw(
                        svc.port,
                        {"op": "degrees", "id": 1, "t0": 0, "t1": 24,
                         "trace": bad},
                    )
                    out.append(resp)
                return out

        for resp in asyncio.run(scenario()):
            assert resp["ok"], resp
            # a fresh server-side trace id is still minted and echoed
            assert resp.get("trace_id")

    def test_control_ops_echo_trace_id_without_spans(
        self, service_logs, small_pop
    ):
        async def scenario():
            async with make_service(service_logs, small_pop) as svc:
                return await self._raw(
                    svc.port,
                    {"op": "ping", "id": 1,
                     "trace": {"trace_id": "abc123", "span_id": "def456"}},
                )

        resp = asyncio.run(scenario())
        assert resp["ok"]
        assert resp["trace_id"] == "abc123"  # echoed for correlation...
        spans = get_collector().drain()
        # ...but load-balancer probes don't pollute the span stream
        assert not [s for s in spans if s["trace_id"] == "abc123"]


class TestServerSideTelemetry:
    def test_trace_log_sink_captures_the_tree_durably(
        self, service_logs, small_pop, tmp_path
    ):
        trace_log = tmp_path / "spans.jsonl"

        async def scenario():
            async with make_service(
                service_logs, small_pop, trace_log=trace_log
            ) as svc:
                async with ServiceClient(port=svc.port) as client:
                    await client.query_window(0, 24)
                    return client.last_trace_id

        trace_id = asyncio.run(scenario())
        logged = read_spans_jsonl(trace_log)
        names = {s["name"] for s in logged if s["trace_id"] == trace_id}
        assert {"client.request", "request", "compose", "kernel"} <= names

    def test_metrics_op_matches_registry_snapshot(
        self, service_logs, small_pop
    ):
        async def scenario():
            async with make_service(service_logs, small_pop) as svc:
                async with ServiceClient(port=svc.port) as client:
                    await client.query_window(0, 24)
                    resp = await client.metrics()
            return resp

        resp = asyncio.run(scenario())
        assert resp["ok"]
        snap = resp["metrics"]
        assert snap["counters"]["service.queries"] >= 1
        # the op serves the same process-wide registry the CLI reads
        local = default_registry().snapshot()
        assert (
            local["counters"]["service.queries"]
            >= snap["counters"]["service.queries"]
        )

    def test_stats_snapshot_carries_uptime_and_inflight(
        self, service_logs, small_pop
    ):
        async def scenario():
            async with make_service(service_logs, small_pop) as svc:
                async with ServiceClient(port=svc.port) as client:
                    return await client.stats()

        stats = asyncio.run(scenario())["stats"]
        assert stats["uptime"] >= 0
        assert stats["inflight"] >= 0
        assert "_lock" not in stats
