"""Resilience layer: deadlines, load shedding, breakers, drain edges.

Unit tests drive :class:`Deadline`, :class:`LoadShedder`, and
:class:`CircuitBreaker` on a fake clock — no sleeping, no server.
Integration tests then pin the server-side behaviors the chaos soak
relies on: dead-on-arrival rejection (never silently queued), mid-flight
deadline timeouts that leave coalesced peers unharmed, overload shedding
with control ops exempt, health probes, and the slow-client write
timeout.
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.errors import DeadlineError, OverloadError
from repro.service import ServiceClient
from repro.service.health import HealthMonitor
from repro.service.resilience import (
    PRIORITY_CONTROL,
    PRIORITY_PREFETCH,
    PRIORITY_QUERY,
    CircuitBreaker,
    Deadline,
    LoadShedder,
    jittered_backoff,
)
from repro.service.protocol import read_frame, write_frame

from .conftest import assert_bit_identical
from .test_faults import _Gate, make_service, wait_for

pytestmark = pytest.mark.timeout(120)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestDeadline:
    def test_none_budget_never_expires(self):
        clock = FakeClock()
        dl = Deadline.after(None, time_fn=clock)
        clock.now += 1e9
        assert not dl.expired
        assert dl.remaining() is None
        assert dl.bound(5.0) == 5.0
        assert dl.bound(None) is None

    def test_budget_counts_down_on_the_injected_clock(self):
        clock = FakeClock()
        dl = Deadline.after(2.0, time_fn=clock)
        assert not dl.expired
        assert dl.remaining() == pytest.approx(2.0)
        clock.now += 1.5
        assert dl.bound(10.0) == pytest.approx(0.5)
        assert dl.bound(0.2) == pytest.approx(0.2)
        clock.now += 1.0
        assert dl.expired
        assert dl.remaining() < 0

    def test_non_positive_budget_is_born_expired(self):
        clock = FakeClock()
        assert Deadline.after(0.0, time_fn=clock).expired
        assert Deadline.after(-3.0, time_fn=clock).expired


class TestJitteredBackoff:
    def test_capped_exponential_with_bounded_jitter(self):
        import random

        rng = random.Random(7)
        for attempt in range(8):
            for _ in range(20):
                s = jittered_backoff(attempt, base=0.1, cap=0.8, rng=rng)
                full = min(0.8, 0.1 * 2**attempt)
                assert 0.5 * full <= s <= full

    def test_grows_then_saturates_at_cap(self):
        class One:
            def random(self):
                return 1.0

        values = [
            jittered_backoff(a, base=0.1, cap=0.8, rng=One())
            for a in range(6)
        ]
        assert values[:4] == pytest.approx([0.1, 0.2, 0.4, 0.8])
        assert values[4] == values[5] == pytest.approx(0.8)


class TestLoadShedder:
    def test_depth_limit_sheds_queries_but_never_control(self):
        shed = LoadShedder(limit=2)
        t1 = shed.admit(PRIORITY_QUERY)
        shed.admit(PRIORITY_QUERY)
        with pytest.raises(OverloadError) as exc_info:
            shed.admit(PRIORITY_QUERY)
        assert exc_info.value.retry_after > 0
        # control is exempt even at the limit
        shed.admit(PRIORITY_CONTROL)
        # release frees a slot
        shed.release(t1)
        shed.admit(PRIORITY_QUERY)

    def test_prefetch_is_shed_before_queries(self):
        shed = LoadShedder(limit=4, prefetch_headroom=0.5)
        shed.admit(PRIORITY_QUERY)
        shed.admit(PRIORITY_QUERY)
        # depth 2 >= prefetch cap 2: prefetch shed, queries still fine
        with pytest.raises(OverloadError):
            shed.admit(PRIORITY_PREFETCH)
        shed.admit(PRIORITY_QUERY)

    def test_inflight_age_sheds_new_work(self):
        clock = FakeClock()
        shed = LoadShedder(shed_inflight_age=1.0, time_fn=clock)
        token = shed.admit(PRIORITY_QUERY)
        clock.now += 2.0
        assert shed.oldest_age() == pytest.approx(2.0)
        with pytest.raises(OverloadError):
            shed.admit(PRIORITY_QUERY)
        shed.admit(PRIORITY_CONTROL)  # control still exempt
        shed.release(token)
        shed.admit(PRIORITY_QUERY)  # convoy cleared

    def test_release_is_idempotent_and_unknown_tokens_ignored(self):
        shed = LoadShedder(limit=1)
        token = shed.admit(PRIORITY_QUERY)
        shed.release(token)
        shed.release(token)
        shed.release(99999)
        assert shed.depth == 0


class TestCircuitBreaker:
    def test_opens_on_failure_rate_then_half_open_probe_closes(self):
        clock = FakeClock()
        br = CircuitBreaker(
            window=4, min_samples=4, failure_threshold=0.5,
            reset_timeout=5.0, time_fn=clock,
        )
        for _ in range(2):
            br.record_success()
        for _ in range(2):
            br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        assert br.opens == 1
        assert not br.allow()
        assert br.reopen_in() == pytest.approx(5.0)
        clock.now += 5.0
        assert br.allow()  # the half-open probe
        assert br.state == CircuitBreaker.HALF_OPEN
        assert not br.allow()  # only one probe at a time
        br.record_success(latency=0.01)
        assert br.state == CircuitBreaker.CLOSED
        assert br.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        br = CircuitBreaker(
            window=2, min_samples=2, reset_timeout=1.0, time_fn=clock
        )
        br.record_failure()
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        clock.now += 1.0
        assert br.allow()
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        assert br.opens == 2
        assert not br.allow()

    def test_slow_successes_count_as_unhealthy(self):
        br = CircuitBreaker(
            window=4, min_samples=4, failure_threshold=0.5,
            latency_threshold=0.1,
        )
        for _ in range(2):
            br.record_success(latency=0.01)
        for _ in range(2):
            br.record_success(latency=5.0)  # correct but useless
        assert br.state == CircuitBreaker.OPEN


class TestHealthMonitor:
    def test_lifecycle_and_shed_grace(self):
        clock = FakeClock()
        mon = HealthMonitor(shed_grace=0.5, time_fn=clock)
        assert mon.liveness()["live"] is True
        assert mon.readiness()["ready"] is False  # still starting
        mon.to_ready()
        assert mon.readiness()["ready"] is True
        mon.note_shed()
        verdict = mon.readiness()
        assert verdict["ready"] is False
        assert any("shed" in r for r in verdict["reasons"])
        clock.now += 0.6
        assert mon.readiness()["ready"] is True
        assert mon.readiness(queue_depth=8, queue_limit=8)["ready"] is False
        mon.to_draining()
        assert mon.readiness()["ready"] is False
        assert mon.liveness()["state"] == "draining"


WINDOW = (0, 24)


class TestServerDeadlines:
    def test_expired_deadline_rejected_never_queued(
        self, service_logs, small_pop
    ):
        async def scenario():
            svc = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with svc:
                async with ServiceClient(port=svc.port) as client:
                    with pytest.raises(DeadlineError) as exc_info:
                        await client.request(
                            "window", t0=0, t1=24, deadline=0.0
                        )
                    assert exc_info.value.code == "expired"
                assert svc.stats.expired == 1
                # the work never reached composition or admission
                assert svc.stats.compositions == 0
                assert svc.stats.queries == 0

        asyncio.run(scenario())

    def test_bad_deadline_type_is_bad_request(self, service_logs, small_pop):
        async def scenario():
            svc = make_service(service_logs, small_pop, prefetch_tiles=0)
            async with svc:
                async with ServiceClient(port=svc.port) as client:
                    with pytest.raises(Exception) as exc_info:
                        await client.request(
                            "window", t0=0, t1=24, deadline="soon"
                        )
                    assert getattr(exc_info.value, "code", "") == "bad-request"

        asyncio.run(scenario())

    def test_midflight_timeout_leaves_coalesced_peer_unharmed(
        self, service_logs, small_pop, direct_ref
    ):
        """An impatient waiter gets code="deadline"; the patient peer
        sharing the same composition still gets a bit-identical answer."""

        async def scenario():
            svc = make_service(
                service_logs, small_pop,
                prefetch_tiles=0, executor_threads=1,
            )
            async with svc:
                handle = await svc._get_handle("full")
                gate = _Gate(handle)
                async with ServiceClient(port=svc.port) as impatient:
                    async with ServiceClient(port=svc.port) as patient:
                        slow = asyncio.ensure_future(
                            patient.query_window(*WINDOW)
                        )
                        await wait_for(gate.started.is_set)
                        fast = asyncio.ensure_future(
                            impatient.request(
                                "window", t0=0, t1=24, deadline=0.2
                            )
                        )
                        with pytest.raises(DeadlineError) as exc_info:
                            await fast
                        assert exc_info.value.code == "deadline"
                        assert svc.stats.deadline_timeouts >= 1
                        gate.release.set()
                        net = await slow
                        assert_bit_identical(
                            net.adjacency, direct_ref(*WINDOW).adjacency
                        )
                # one shared composition served the survivor
                assert svc.stats.compositions == 1

        asyncio.run(scenario())

    def test_default_deadline_caps_deadline_less_requests(
        self, service_logs, small_pop
    ):
        async def scenario():
            svc = make_service(
                service_logs, small_pop,
                prefetch_tiles=0, executor_threads=1,
                default_deadline=0.2,
            )
            async with svc:
                handle = await svc._get_handle("full")
                gate = _Gate(handle)
                async with ServiceClient(port=svc.port) as client:
                    fut = asyncio.ensure_future(client.query_window(*WINDOW))
                    await wait_for(gate.started.is_set)
                    with pytest.raises(DeadlineError):
                        await fut
                    gate.release.set()

        asyncio.run(scenario())


class TestServerLoadShedding:
    def test_queries_shed_at_queue_limit_control_exempt(
        self, service_logs, small_pop
    ):
        async def scenario():
            svc = make_service(
                service_logs, small_pop,
                prefetch_tiles=0, executor_threads=1, queue_limit=1,
            )
            async with svc:
                handle = await svc._get_handle("full")
                gate = _Gate(handle)
                async with ServiceClient(port=svc.port) as holder:
                    held = asyncio.ensure_future(holder.query_window(*WINDOW))
                    await wait_for(gate.started.is_set)
                    async with ServiceClient(port=svc.port) as probe:
                        with pytest.raises(OverloadError) as exc_info:
                            await probe.request("window", t0=0, t1=48)
                        assert exc_info.value.retry_after > 0
                        # control ops answer while queries are shed
                        assert (await probe.ping())["pong"] is True
                        assert (await probe.liveness())["live"] is True
                        ready = await probe.readiness()
                        assert ready["ready"] is False  # recently shed
                    assert svc.stats.shed == 1
                    gate.release.set()
                    await held
                    # pressure gone: queries admitted again
                    async with ServiceClient(port=svc.port) as after:
                        await after.query_window(*WINDOW)

        asyncio.run(scenario())

    def test_client_retries_overload_with_jittered_backoff(
        self, service_logs, small_pop
    ):
        async def scenario():
            svc = make_service(
                service_logs, small_pop,
                prefetch_tiles=0, executor_threads=1, queue_limit=1,
            )
            async with svc:
                handle = await svc._get_handle("full")
                gate = _Gate(handle)
                async with ServiceClient(port=svc.port) as holder:
                    held = asyncio.ensure_future(holder.query_window(*WINDOW))
                    await wait_for(gate.started.is_set)
                    async with ServiceClient(
                        port=svc.port, retries=50, max_retry_sleep=0.05
                    ) as retrier:
                        fut = asyncio.ensure_future(
                            retrier.query_window(*WINDOW)
                        )
                        await wait_for(lambda: svc.stats.shed >= 2)
                        gate.release.set()
                        await fut  # retried into an admission slot
                    await held

        asyncio.run(scenario())


class TestSlowClientWriteTimeout:
    def test_stalled_reader_is_aborted_not_waited_on(
        self, service_logs, small_pop
    ):
        """A client that never reads its responses eventually fills the
        socket buffers; the server must abort it within write_timeout
        instead of parking the handler forever."""

        async def scenario():
            svc = make_service(
                service_logs, small_pop,
                prefetch_tiles=0, write_timeout=0.5,
            )
            async with svc:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", svc.port
                )
                # pipeline many large window responses and read none of
                # them: kernel + transport buffers fill, drain() stalls
                for i in range(64):
                    write_frame(
                        writer,
                        {"op": "window", "id": i, "tenant": "slow",
                         "t0": 0, "t1": 336},
                    )
                await writer.drain()
                await wait_for(lambda: svc.stats.slow_writes >= 1)
                # the server reset us: reads terminate, not hang
                with pytest.raises(
                    (ConnectionError, OSError, asyncio.IncompleteReadError)
                ):
                    while True:
                        await read_frame(reader)
                writer.close()
                # and it still serves everyone else
                async with ServiceClient(port=svc.port) as client:
                    assert (await client.ping())["pong"] is True

        asyncio.run(scenario())
