"""Frame protocol unit tests: framing round-trips, CSR bit-identity,
malformed-input detection — no sockets, just in-memory streams."""

from __future__ import annotations

import asyncio
import struct

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.network import CollocationNetwork
from repro.errors import FrameError
from repro.service.protocol import (
    MAX_FRAME,
    decode_csr,
    decode_network,
    encode_csr,
    encode_network,
    read_frame,
    write_frame,
)

from .conftest import assert_bit_identical

pytestmark = pytest.mark.timeout(60)


class _SinkWriter:
    """Minimal StreamWriter stand-in capturing written bytes."""

    def __init__(self) -> None:
        self.buffer = bytearray()

    def write(self, data: bytes) -> None:
        self.buffer.extend(data)


def feed(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def roundtrip(header: dict, blob: bytes = b"") -> tuple[dict, bytes]:
    writer = _SinkWriter()
    write_frame(writer, header, blob)

    async def read():
        return await read_frame(feed(bytes(writer.buffer)))

    return asyncio.run(read())


def random_csr(rng, n=50, density=0.1) -> sp.csr_matrix:
    mat = sp.random(
        n, n, density=density, format="csr", dtype=np.int64, random_state=42
    )
    mat.data[:] = rng.integers(1, 100, mat.nnz)
    return mat


class TestFraming:
    def test_json_only_roundtrip(self):
        header, blob = roundtrip({"op": "ping", "id": 3})
        assert header == {"op": "ping", "id": 3}
        assert blob == b""

    def test_blob_roundtrip_sets_blob_len(self):
        payload = bytes(range(256)) * 10
        header, blob = roundtrip({"op": "x", "id": 1}, payload)
        assert blob == payload
        assert header["blob_len"] == len(payload)

    def test_two_frames_back_to_back_keep_phase(self):
        writer = _SinkWriter()
        write_frame(writer, {"id": 1}, b"abc")
        write_frame(writer, {"id": 2})

        async def read_both():
            reader = feed(bytes(writer.buffer))
            return await read_frame(reader), await read_frame(reader)

        (h1, b1), (h2, b2) = asyncio.run(read_both())
        assert (h1["id"], b1) == (1, b"abc")
        assert (h2["id"], b2) == (2, b"")

    @pytest.mark.parametrize(
        "raw,match",
        [
            (struct.pack(">I", 0), "outside"),
            (struct.pack(">I", MAX_FRAME + 1), "outside"),
            (struct.pack(">I", 4) + b"nope", "not JSON"),
            (struct.pack(">I", 4) + b'"hi"', "JSON object"),
            (struct.pack(">I", 16) + b'{"blob_len":-10}', "blob_len"),
            (struct.pack(">I", 18) + b'{"blob_len":"big"}', "blob_len"),
        ],
    )
    def test_malformed_frames_raise_frame_error(self, raw, match):
        async def read():
            await read_frame(feed(raw))

        with pytest.raises(FrameError, match=match):
            asyncio.run(read())

    def test_truncated_stream_is_not_a_frame_error(self):
        """A peer that vanished mid-frame is a disconnect, not malice."""

        async def read():
            await read_frame(feed(struct.pack(">I", 100) + b"x" * 10))

        with pytest.raises(asyncio.IncompleteReadError):
            asyncio.run(read())


class TestCsrEncoding:
    def test_csr_roundtrip_bit_identical(self, rng):
        mat = random_csr(rng)
        out, extra = decode_csr(encode_csr(mat))
        assert_bit_identical(out, mat)
        assert extra == {}

    def test_extras_round_trip(self, rng):
        mat = random_csr(rng)
        persons = rng.integers(0, 1000, 17).astype(np.int64)
        out, extra = decode_csr(encode_csr(mat, persons=persons))
        assert_bit_identical(out, mat)
        assert np.array_equal(extra["persons"], persons)

    def test_network_roundtrip_preserves_window(self, rng):
        mat = sp.triu(random_csr(rng), k=1).tocsr()  # strictly upper
        net = CollocationNetwork(mat, t0=24, t1=192)
        out = decode_network(encode_network(net))
        assert (out.t0, out.t1) == (24, 192)
        assert_bit_identical(out.adjacency, net.adjacency)
