"""Fault injectors for the service chaos tests.

Three layers of mischief, each deterministic under a seeded RNG:

* :class:`ChaosProxy` — a TCP proxy in front of one replica that rolls a
  fate per *response frame*: deliver, delay, truncate mid-frame (then
  reset both sides), or black-hole (stop forwarding, keep the socket
  open — the nastiest failure, detectable only by timeout).  Requests
  pass through untouched so the server sees well-formed traffic; it is
  the *client's* view that gets corrupted, which is exactly what the
  failover client must survive.
* :func:`kill_service` — a hard replica kill: abort every connection and
  the listener with no drain, as if the process got SIGKILLed.
* :func:`corrupt_tile` — flip bytes in the middle of a persisted tile
  file, as if the disk or a torn write damaged it; the cache must
  quarantine and rebuild, never serve the damage.
"""

from __future__ import annotations

import asyncio
import random
import struct
from pathlib import Path

__all__ = ["ChaosProxy", "kill_service", "corrupt_tile"]


class ChaosProxy:
    """Fault-injecting TCP proxy in front of a single backend.

    Fates are rolled per server->client frame with the seeded ``rng``;
    probabilities are independent and checked in order (delay, truncate,
    blackhole), the remainder delivering cleanly.  Client->server bytes
    are never touched.
    """

    def __init__(
        self,
        backend_host: str,
        backend_port: int,
        rng: random.Random,
        delay_p: float = 0.0,
        delay_s: float = 0.05,
        truncate_p: float = 0.0,
        blackhole_p: float = 0.0,
    ) -> None:
        self.backend_host = backend_host
        self.backend_port = int(backend_port)
        self.rng = rng
        self.delay_p = delay_p
        self.delay_s = delay_s
        self.truncate_p = truncate_p
        self.blackhole_p = blackhole_p
        self.counters = {
            "frames": 0,
            "delivered": 0,
            "delayed": 0,
            "truncated": 0,
            "blackholed": 0,
        }
        self._server: asyncio.base_events.Server | None = None
        self._tasks: set[asyncio.Task] = set()

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "ChaosProxy":
        self._server = await asyncio.start_server(
            self._handle, host="127.0.0.1", port=0
        )
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()

    async def __aenter__(self) -> "ChaosProxy":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def _handle(
        self, creader: asyncio.StreamReader, cwriter: asyncio.StreamWriter
    ) -> None:
        try:
            sreader, swriter = await asyncio.open_connection(
                self.backend_host, self.backend_port
            )
        except (ConnectionError, OSError):
            cwriter.close()
            return
        up = self._spawn(self._pump_up(creader, swriter))
        down = self._spawn(self._pump_down(sreader, cwriter))
        await asyncio.wait({up, down}, return_when=asyncio.FIRST_COMPLETED)
        for w in (cwriter, swriter):
            try:
                w.transport.abort()
            except (AttributeError, RuntimeError):
                w.close()
        up.cancel()
        down.cancel()

    async def _pump_up(self, reader, writer) -> None:
        """client -> server: byte-transparent."""
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass

    async def _read_response_frame(self, reader) -> bytes | None:
        """One whole length-prefixed frame (header + blob) as raw bytes."""
        try:
            prefix = await reader.readexactly(4)
            (hlen,) = struct.unpack(">I", prefix)
            header = await reader.readexactly(hlen)
            blob_len = 0
            try:
                import json

                blob_len = int(json.loads(header).get("blob_len", 0))
            except (ValueError, AttributeError):
                pass
            blob = await reader.readexactly(blob_len) if blob_len > 0 else b""
            return prefix + header + blob
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
        ):
            return None

    async def _pump_down(self, reader, writer) -> None:
        """server -> client: frame-aware fate roll per response."""
        while True:
            frame = await self._read_response_frame(reader)
            if frame is None:
                break
            self.counters["frames"] += 1
            roll = self.rng.random()
            try:
                if roll < self.blackhole_p:
                    # stop forwarding but keep the socket open: the
                    # client's read must time out, nothing else fires
                    self.counters["blackholed"] += 1
                    await asyncio.sleep(3600)
                roll -= self.blackhole_p
                if roll < self.truncate_p:
                    self.counters["truncated"] += 1
                    writer.write(frame[: max(1, len(frame) // 2)])
                    await writer.drain()
                    break  # connection reset by _handle's cleanup
                roll -= self.truncate_p
                if roll < self.delay_p:
                    self.counters["delayed"] += 1
                    await asyncio.sleep(self.delay_s)
                self.counters["delivered"] += 1
                writer.write(frame)
                await writer.drain()
            except (ConnectionError, OSError):
                break


async def kill_service(svc) -> None:
    """SIGKILL-shaped stop: no drain, every connection reset."""
    if svc._server is not None:
        svc._server.close()
        await svc._server.wait_closed()
        svc._server = None
    for writer in list(svc._writers):
        try:
            writer.transport.abort()
        except (AttributeError, RuntimeError):
            writer.close()
    svc.config.drain_timeout = 0.0
    await svc.stop()


def corrupt_tile(cache_dir: str | Path, which: int = 0) -> Path:
    """Flip bytes in the middle of the ``which``-th persisted tile."""
    tiles = sorted(Path(cache_dir).glob("tile_*.npz"))
    assert tiles, f"no persisted tiles under {cache_dir}"
    path = tiles[which % len(tiles)]
    raw = bytearray(path.read_bytes())
    mid = len(raw) // 2
    for i in range(mid, min(mid + 64, len(raw))):
        raw[i] ^= 0xFF
    path.write_bytes(bytes(raw))
    return path
