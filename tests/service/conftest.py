"""Shared fixtures for the network-query service tests.

The log directory is package-scoped (built once, read by every service
test) and the direct-synthesis references are cached per window, because
the load-bearing assertion everywhere is the same as the tile-cache
suite's: whatever a client decodes off the wire must be bit-identical to
a direct ``kernel="intervals"`` synthesis of the same window.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import synthesize_from_logs
from repro.distrib import DistributedSimulation, spatial_partition


@pytest.fixture(scope="package")
def service_logs(tmp_path_factory, small_pop):
    """Two weeks of 2-rank logs, shared by every service test."""
    d = tmp_path_factory.mktemp("service-logs")
    cfg = repro.SimulationConfig(
        scale=small_pop.scale,
        duration_hours=2 * repro.HOURS_PER_WEEK,
        n_ranks=2,
    )
    part = spatial_partition(
        small_pop.places.coords(), small_pop.places.capacity.astype(float), 2
    )
    DistributedSimulation(small_pop, cfg, part).run(log_dir=d)
    return d


@pytest.fixture(scope="package")
def direct_ref(service_logs, small_pop):
    """Memoized direct-synthesis reference: ``direct_ref(t0, t1)``."""
    refs: dict[tuple[int, int], object] = {}

    def get(t0: int, t1: int):
        key = (t0, t1)
        if key not in refs:
            net, _ = synthesize_from_logs(
                service_logs, small_pop.n_persons, t0, t1, kernel="intervals"
            )
            refs[key] = net
        return refs[key]

    return get


def assert_bit_identical(a, b):
    """Same canonical CSR: data, indices, indptr all exactly equal."""
    assert a.shape == b.shape
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data, b.data)
