"""Tests for grid↔event conversion — the lossless-compression invariant."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.events import OpenSpells, events_to_grid, grid_to_events


def random_grids(rng, n, hours, n_states=5):
    """Random sticky state grids (runs of varying length)."""
    act = np.zeros((n, hours), dtype=np.uint8)
    plc = np.zeros((n, hours), dtype=np.uint32)
    act[:, 0] = rng.integers(0, n_states, n)
    plc[:, 0] = rng.integers(0, n_states * 3, n)
    for h in range(1, hours):
        change = rng.random(n) < 0.3
        act[:, h] = np.where(change, rng.integers(0, n_states, n), act[:, h - 1])
        plc[:, h] = np.where(change, rng.integers(0, n_states * 3, n), plc[:, h - 1])
    return act, plc


class TestRoundTrip:
    def test_single_grid_lossless(self, rng):
        act, plc = random_grids(rng, 50, 40)
        rec, spells = grid_to_events(act, plc, 0)
        final = spells.close_all(40)
        all_rec = np.concatenate([rec, final])
        act2, plc2 = events_to_grid(all_rec, 50, 0, 40)
        assert (act2 == act).all()
        assert (plc2 == plc).all()

    def test_chained_grids_equal_single(self, rng):
        """Processing in two chunks with carried spells == one chunk."""
        act, plc = random_grids(rng, 30, 60)
        rec_a, spells = grid_to_events(act[:, :25], plc[:, :25], 0)
        rec_b, spells = grid_to_events(act[:, 25:], plc[:, 25:], 25, spells)
        final = spells.close_all(60)
        chunked = np.concatenate([rec_a, rec_b, final])

        rec_full, spells_full = grid_to_events(act, plc, 0)
        full = np.concatenate([rec_full, spells_full.close_all(60)])

        key = ["person", "start", "stop"]
        assert (np.sort(chunked, order=key) == np.sort(full, order=key)).all()

    def test_spell_spanning_chunk_boundary_is_one_record(self):
        """No artificial event at the chunk seam (week boundary)."""
        act = np.zeros((1, 10), dtype=np.uint8)
        plc = np.full((1, 10), 7, dtype=np.uint32)
        rec_a, spells = grid_to_events(act[:, :5], plc[:, :5], 0)
        rec_b, spells = grid_to_events(act[:, 5:], plc[:, 5:], 5, spells)
        final = spells.close_all(10)
        assert len(rec_a) == 0 and len(rec_b) == 0
        assert len(final) == 1
        assert final["start"][0] == 0 and final["stop"][0] == 10

    @given(st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 20))
        hours = int(rng.integers(1, 30))
        act, plc = random_grids(rng, n, hours)
        rec, spells = grid_to_events(act, plc, 0)
        all_rec = np.concatenate([rec, spells.close_all(hours)])
        # event count == number of maximal runs
        runs = 1 * n + int(
            (
                (act[:, 1:] != act[:, :-1]) | (plc[:, 1:] != plc[:, :-1])
            ).sum()
        )
        assert len(all_rec) == runs
        act2, plc2 = events_to_grid(all_rec, n, 0, hours)
        assert (act2 == act).all() and (plc2 == plc).all()

    def test_events_are_maximal_runs(self, rng):
        """No two consecutive records of one person share state (each
        record is a *change*)."""
        act, plc = random_grids(rng, 40, 50)
        rec, spells = grid_to_events(act, plc, 0)
        all_rec = np.concatenate([rec, spells.close_all(50)])
        order = np.lexsort((all_rec["start"], all_rec["person"]))
        s = all_rec[order]
        same_person = s["person"][1:] == s["person"][:-1]
        contiguous = s["start"][1:] == s["stop"][:-1]
        same_state = (s["activity"][1:] == s["activity"][:-1]) & (
            s["place"][1:] == s["place"][:-1]
        )
        assert not (same_person & contiguous & same_state).any()
        # person timelines have no gaps or overlaps
        assert (s["start"][1:][same_person] == s["stop"][:-1][same_person]).all()


class TestValidation:
    def test_mismatched_grids(self):
        with pytest.raises(SimulationError):
            grid_to_events(
                np.zeros((2, 5), dtype=np.uint8),
                np.zeros((2, 6), dtype=np.uint32),
                0,
            )

    def test_empty_grid(self):
        with pytest.raises(SimulationError):
            grid_to_events(
                np.zeros((2, 0), dtype=np.uint8),
                np.zeros((2, 0), dtype=np.uint32),
                0,
            )

    def test_carried_spells_wrong_size(self, rng):
        act, plc = random_grids(rng, 5, 10)
        spells = OpenSpells.begin(np.zeros(3), np.zeros(3), 0)
        with pytest.raises(SimulationError):
            grid_to_events(act, plc, 10, spells)

    def test_person_ids_subset(self, rng):
        act, plc = random_grids(rng, 4, 6)
        ids = np.array([10, 20, 30, 40], dtype=np.uint32)
        rec, spells = grid_to_events(act, plc, 0, person_ids=ids)
        final = spells.close_all(6)
        assert set(np.concatenate([rec, final])["person"]) <= set(ids.tolist())

    def test_events_to_grid_bad_person(self):
        from repro.evlog.schema import make_records

        rec = make_records([0], [3], [99], [0], [0])
        with pytest.raises(SimulationError):
            events_to_grid(rec, 5, 0, 4)

    def test_events_to_grid_bad_window(self):
        from repro.evlog.schema import empty_records

        with pytest.raises(SimulationError):
            events_to_grid(empty_records(0), 5, 4, 4)
