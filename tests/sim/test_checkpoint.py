"""Simulation checkpoint/resume: atomic commit and bit-for-bit replay."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.config import DiseaseConfig, ScaleConfig, SimulationConfig
from repro.errors import CheckpointError, SimulationError
from repro.sim import MovementObserver, PrevalenceObserver, Simulation
from repro.sim.checkpoint import (
    SIM_MANIFEST,
    SIM_STATE,
    SimSnapshot,
    load_sim_checkpoint,
    save_sim_checkpoint,
    sim_checkpoint_digest,
)
from repro.synthpop import generate_population

SCALE = ScaleConfig(n_persons=250, seed=77)
HOURS = 48


@pytest.fixture(scope="module")
def pop():
    return generate_population(SCALE)


def _config(**overrides):
    defaults = dict(
        scale=SCALE,
        duration_hours=HOURS,
        disease=DiseaseConfig(initial_infected=4),
        checkpoint_every_hours=10,
        log_durability="wal",
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class Boom(Exception):
    pass


def _kill_at(hour_to_die: int):
    def hook(hour: int) -> None:
        if hour == hour_to_die:
            raise Boom(f"injected crash at hour {hour}")

    return hook


class TestSnapshotStore:
    def _snapshot(self):
        return SimSnapshot(
            next_hour=12,
            spell_start=np.arange(5, dtype=np.int64),
            spell_activity=np.ones(5, dtype=np.uint32),
            spell_place=np.arange(5, dtype=np.uint32),
            records=np.empty(0, dtype=np.uint32),
            writer_offset=-1,
            disease=None,
            observers=[{"hours": [1, 2]}],
        )

    def test_roundtrip(self, tmp_path):
        save_sim_checkpoint(tmp_path, "d1", self._snapshot())
        snap = load_sim_checkpoint(tmp_path, "d1")
        assert snap.next_hour == 12
        assert snap.spell_start.tolist() == list(range(5))
        assert snap.observers == [{"hours": [1, 2]}]

    def test_digest_mismatch_refused(self, tmp_path):
        save_sim_checkpoint(tmp_path, "d1", self._snapshot())
        with pytest.raises(CheckpointError, match="different"):
            load_sim_checkpoint(tmp_path, "d2")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CheckpointError, match="manifest"):
            load_sim_checkpoint(tmp_path, "d1")

    def test_manifest_without_state(self, tmp_path):
        save_sim_checkpoint(tmp_path, "d1", self._snapshot())
        (tmp_path / SIM_STATE).unlink()
        with pytest.raises(CheckpointError, match=SIM_STATE):
            load_sim_checkpoint(tmp_path, "d1")

    def test_corrupt_manifest(self, tmp_path):
        save_sim_checkpoint(tmp_path, "d1", self._snapshot())
        (tmp_path / SIM_MANIFEST).write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_sim_checkpoint(tmp_path, "d1")

    def test_digest_covers_config_and_log(self):
        a = sim_checkpoint_digest(_config(), with_log=True)
        b = sim_checkpoint_digest(_config(), with_log=False)
        c = sim_checkpoint_digest(
            _config(checkpoint_every_hours=11), with_log=True
        )
        assert len({a, b, c}) == 3


class TestResumeEquivalence:
    def test_bit_for_bit_resume(self, pop, tmp_path):
        obs_a = [PrevalenceObserver(), MovementObserver()]
        res_a = Simulation(pop, _config()).run(
            observers=obs_a,
            log_path=tmp_path / "a.evl",
            checkpoint_dir=tmp_path / "ck_a",
        )
        assert res_a.checkpoints_written == 4
        assert res_a.resumed_from_hour is None

        obs_b = [PrevalenceObserver(), MovementObserver()]
        with pytest.raises(Boom):
            Simulation(pop, _config()).run(
                observers=obs_b,
                log_path=tmp_path / "b.evl",
                checkpoint_dir=tmp_path / "ck_b",
                fault_hook=_kill_at(33),
            )

        obs_c = [PrevalenceObserver(), MovementObserver()]
        res_c = Simulation(pop, _config()).run(
            observers=obs_c,
            log_path=tmp_path / "b.evl",
            checkpoint_dir=tmp_path / "ck_b",
            resume=True,
        )
        assert res_c.resumed_from_hour == 30

        assert np.array_equal(res_a.records, res_c.records)
        ha = hashlib.sha256((tmp_path / "a.evl").read_bytes()).hexdigest()
        hb = hashlib.sha256((tmp_path / "b.evl").read_bytes()).hexdigest()
        assert ha == hb  # identical log bytes, not just identical events
        assert obs_a[0].state_dict() == obs_c[0].state_dict()
        assert obs_a[1].moves_per_hour == obs_c[1].moves_per_hour
        assert res_a.disease is not None and res_c.disease is not None
        assert res_a.disease.transmissions == res_c.disease.transmissions

    def test_resume_without_log(self, pop, tmp_path):
        res_a = Simulation(pop, _config()).run(
            checkpoint_dir=tmp_path / "ck_a"
        )
        with pytest.raises(Boom):
            Simulation(pop, _config()).run(
                checkpoint_dir=tmp_path / "ck_b", fault_hook=_kill_at(25)
            )
        res_c = Simulation(pop, _config()).run(
            checkpoint_dir=tmp_path / "ck_b", resume=True
        )
        assert np.array_equal(res_a.records, res_c.records)

    def test_no_checkpoints_without_dir(self, pop):
        result = Simulation(pop, _config()).run()
        assert result.checkpoints_written == 0

    def test_resume_requires_checkpoint_dir(self, pop):
        with pytest.raises(SimulationError, match="checkpoint_dir"):
            Simulation(pop, _config()).run(resume=True)

    def test_resume_rejects_changed_config(self, pop, tmp_path):
        with pytest.raises(Boom):
            Simulation(pop, _config()).run(
                checkpoint_dir=tmp_path / "ck", fault_hook=_kill_at(25)
            )
        changed = _config(disease=DiseaseConfig(initial_infected=5))
        with pytest.raises(CheckpointError, match="different"):
            Simulation(pop, changed).run(
                checkpoint_dir=tmp_path / "ck", resume=True
            )

    def test_resume_rejects_missing_observers(self, pop, tmp_path):
        with pytest.raises(Boom):
            Simulation(pop, _config()).run(
                observers=[PrevalenceObserver()],
                checkpoint_dir=tmp_path / "ck",
                fault_hook=_kill_at(25),
            )
        with pytest.raises(SimulationError, match="observer"):
            Simulation(pop, _config()).run(
                checkpoint_dir=tmp_path / "ck", resume=True
            )
