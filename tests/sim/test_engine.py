"""Tests for the serial engine: fast/slow equivalence, logging, results."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.config import ScaleConfig, SimulationConfig
from repro.errors import SimulationError
from repro.evlog import LogReader
from repro.sim import MovementObserver, Simulation
from repro.sim.events import events_to_grid


@pytest.fixture(scope="module")
def pop():
    return repro.generate_population(ScaleConfig(n_persons=300, seed=9))


def config_for(pop, hours=repro.HOURS_PER_WEEK, **kw):
    return SimulationConfig(scale=pop.scale, duration_hours=hours, **kw)


class TestEquivalence:
    def test_fast_equals_slow(self, pop):
        cfg = config_for(pop)
        fast = Simulation(pop, cfg).run_fast()
        slow = Simulation(pop, cfg).run()
        assert len(fast.records) == len(slow.records)
        assert (fast.records == slow.records).all()

    def test_multi_week_fast_equals_slow(self, pop):
        cfg = config_for(pop, hours=2 * repro.HOURS_PER_WEEK + 13)
        fast = Simulation(pop, cfg).run_fast()
        slow = Simulation(pop, cfg).run()
        assert (fast.records == slow.records).all()

    def test_rerun_deterministic(self, pop):
        cfg = config_for(pop)
        a = Simulation(pop, cfg).run_fast()
        b = Simulation(pop, cfg).run_fast()
        assert (a.records == b.records).all()


class TestEventSemantics:
    def test_events_cover_full_duration(self, pop):
        cfg = config_for(pop, hours=100)
        res = Simulation(pop, cfg).run_fast()
        rec = res.records
        # per person: intervals tile [0, 100) exactly
        order = np.lexsort((rec["start"], rec["person"]))
        s = rec[order]
        bounds = np.searchsorted(s["person"], np.arange(pop.n_persons + 1))
        for p in range(0, pop.n_persons, 37):
            mine = s[bounds[p] : bounds[p + 1]]
            assert mine["start"][0] == 0
            assert mine["stop"][-1] == 100
            assert (mine["start"][1:] == mine["stop"][:-1]).all()

    def test_grid_reconstruction_matches_schedule(self, pop):
        cfg = config_for(pop)
        res = Simulation(pop, cfg).run_fast()
        grid = pop.schedule_generator().week(0)
        act, plc = events_to_grid(
            res.records, pop.n_persons, 0, repro.HOURS_PER_WEEK
        )
        assert (act == grid.activity).all()
        assert (plc == grid.place).all()

    def test_event_rate_plausible(self, pop):
        res = Simulation(pop, config_for(pop)).run_fast()
        rate = res.events_per_person_day(pop.n_persons)
        assert 2.0 < rate < 7.0


class TestLogging:
    def test_run_writes_evl(self, pop, tmp_path):
        path = tmp_path / "run.evl"
        cfg = config_for(pop, hours=50)
        res = Simulation(pop, cfg).run(log_path=path)
        r = LogReader(path)
        assert r.n_records == res.n_events
        key = ["person", "start", "place"]
        assert (np.sort(r.read_all(), order=key)
                == np.sort(res.records, order=key)).all()

    def test_fast_log_matches_slow_log(self, pop, tmp_path):
        cfg = config_for(pop, hours=72)
        Simulation(pop, cfg).run(log_path=tmp_path / "slow.evl")
        Simulation(pop, cfg).run_fast(log_path=tmp_path / "fast.evl")
        a = LogReader(tmp_path / "slow.evl").read_all()
        b = LogReader(tmp_path / "fast.evl").read_all()
        assert (a == b).all()

    def test_compressed_log(self, pop, tmp_path):
        cfg = config_for(pop, hours=50)
        Simulation(pop, cfg).run(log_path=tmp_path / "z.evl", compress_log=True)
        assert LogReader(tmp_path / "z.evl").header.compressed


class TestObservers:
    def test_movement_observer_counts(self, pop):
        cfg = config_for(pop, hours=48)
        obs = MovementObserver()
        res = Simulation(pop, cfg).run(observers=[obs])
        assert len(obs.moves_per_hour) == 47
        # moves == events whose spell ended at hours 1..47 with place change
        assert obs.total_moves > 0

    def test_config_population_mismatch(self, pop):
        bad = SimulationConfig(scale=ScaleConfig(n_persons=999))
        with pytest.raises(SimulationError):
            Simulation(pop, bad)

    def test_run_fast_rejects_disease(self, pop):
        cfg = config_for(
            pop, hours=24, disease=repro.DiseaseConfig(initial_infected=1)
        )
        with pytest.raises(SimulationError):
            Simulation(pop, cfg).run_fast()
