"""Tests for the serial engine: fast/slow equivalence, logging, results."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.config import ScaleConfig, SimulationConfig
from repro.errors import SimulationError
from repro.evlog import LogReader
from repro.sim import MovementObserver, Simulation
from repro.sim.events import events_to_grid


@pytest.fixture(scope="module")
def pop():
    return repro.generate_population(ScaleConfig(n_persons=300, seed=9))


def config_for(pop, hours=repro.HOURS_PER_WEEK, **kw):
    return SimulationConfig(scale=pop.scale, duration_hours=hours, **kw)


class TestEquivalence:
    def test_fast_equals_slow(self, pop):
        cfg = config_for(pop)
        fast = Simulation(pop, cfg).run_fast()
        slow = Simulation(pop, cfg).run()
        assert len(fast.records) == len(slow.records)
        assert (fast.records == slow.records).all()

    def test_multi_week_fast_equals_slow(self, pop):
        cfg = config_for(pop, hours=2 * repro.HOURS_PER_WEEK + 13)
        fast = Simulation(pop, cfg).run_fast()
        slow = Simulation(pop, cfg).run()
        assert (fast.records == slow.records).all()

    def test_rerun_deterministic(self, pop):
        cfg = config_for(pop)
        a = Simulation(pop, cfg).run_fast()
        b = Simulation(pop, cfg).run_fast()
        assert (a.records == b.records).all()


class TestEventSemantics:
    def test_events_cover_full_duration(self, pop):
        cfg = config_for(pop, hours=100)
        res = Simulation(pop, cfg).run_fast()
        rec = res.records
        # per person: intervals tile [0, 100) exactly
        order = np.lexsort((rec["start"], rec["person"]))
        s = rec[order]
        bounds = np.searchsorted(s["person"], np.arange(pop.n_persons + 1))
        for p in range(0, pop.n_persons, 37):
            mine = s[bounds[p] : bounds[p + 1]]
            assert mine["start"][0] == 0
            assert mine["stop"][-1] == 100
            assert (mine["start"][1:] == mine["stop"][:-1]).all()

    def test_grid_reconstruction_matches_schedule(self, pop):
        cfg = config_for(pop)
        res = Simulation(pop, cfg).run_fast()
        grid = pop.schedule_generator().week(0)
        act, plc = events_to_grid(
            res.records, pop.n_persons, 0, repro.HOURS_PER_WEEK
        )
        assert (act == grid.activity).all()
        assert (plc == grid.place).all()

    def test_event_rate_plausible(self, pop):
        res = Simulation(pop, config_for(pop)).run_fast()
        rate = res.events_per_person_day(pop.n_persons)
        assert 2.0 < rate < 7.0


class TestLogging:
    def test_run_writes_evl(self, pop, tmp_path):
        path = tmp_path / "run.evl"
        cfg = config_for(pop, hours=50)
        res = Simulation(pop, cfg).run(log_path=path)
        r = LogReader(path)
        assert r.n_records == res.n_events
        key = ["person", "start", "place"]
        assert (np.sort(r.read_all(), order=key)
                == np.sort(res.records, order=key)).all()

    def test_fast_log_matches_slow_log(self, pop, tmp_path):
        cfg = config_for(pop, hours=72)
        Simulation(pop, cfg).run(log_path=tmp_path / "slow.evl")
        Simulation(pop, cfg).run_fast(log_path=tmp_path / "fast.evl")
        a = LogReader(tmp_path / "slow.evl").read_all()
        b = LogReader(tmp_path / "fast.evl").read_all()
        assert (a == b).all()

    def test_compressed_log(self, pop, tmp_path):
        cfg = config_for(pop, hours=50)
        Simulation(pop, cfg).run(log_path=tmp_path / "z.evl", compress_log=True)
        assert LogReader(tmp_path / "z.evl").header.compressed


class TestObservers:
    def test_movement_observer_counts(self, pop):
        cfg = config_for(pop, hours=48)
        obs = MovementObserver()
        res = Simulation(pop, cfg).run(observers=[obs])
        assert len(obs.moves_per_hour) == 47
        # moves == events whose spell ended at hours 1..47 with place change
        assert obs.total_moves > 0

    def test_config_population_mismatch(self, pop):
        bad = SimulationConfig(scale=ScaleConfig(n_persons=999))
        with pytest.raises(SimulationError):
            Simulation(pop, bad)

    def test_run_fast_rejects_disease(self, pop):
        cfg = config_for(
            pop, hours=24, disease=repro.DiseaseConfig(initial_infected=1)
        )
        with pytest.raises(SimulationError):
            Simulation(pop, cfg).run_fast()


class TestRunFastParity:
    """run_fast must mirror run()'s logging API, not silently drop args."""

    def test_compress_log_honored(self, pop, tmp_path):
        cfg = config_for(pop, hours=50)
        Simulation(pop, cfg).run_fast(
            log_path=tmp_path / "fz.evl", compress_log=True
        )
        assert LogReader(tmp_path / "fz.evl").header.compressed
        # compressed fast log decodes to the same stream as uncompressed
        Simulation(pop, cfg).run_fast(log_path=tmp_path / "f.evl")
        a = LogReader(tmp_path / "fz.evl").read_all()
        b = LogReader(tmp_path / "f.evl").read_all()
        assert (a == b).all()

    def test_checkpoint_args_raise(self, pop, tmp_path):
        cfg = config_for(pop, hours=24)
        with pytest.raises(SimulationError, match="checkpoint"):
            Simulation(pop, cfg).run_fast(checkpoint_dir=tmp_path / "c")
        with pytest.raises(SimulationError, match="checkpoint"):
            Simulation(pop, cfg).run_fast(resume=True)


class TestRecordAccumulator:
    """The checkpoint path copies each record O(1) amortized times, not
    once per snapshot."""

    def test_amortized_copies(self):
        from repro.evlog.schema import empty_records
        from repro.sim.engine import _RecordAccumulator

        acc = _RecordAccumulator()
        total = 0
        chunks = []
        rng = np.random.default_rng(11)
        for i in range(50):
            n = int(rng.integers(1, 200))
            rec = empty_records(n)
            rec["person"] = rng.integers(0, 1000, n)
            rec["start"] = i
            rec["stop"] = i + 1
            chunks.append(rec.copy())
            acc.append(rec)
            total += n
            if i % 7 == 0:  # interleave snapshots with appends
                merged = acc.merged()
                assert len(merged) == total
        merged = acc.merged()
        assert len(acc) == total
        assert (merged == np.concatenate(chunks)).all()
        # buffer growth is geometric: far fewer allocations than snapshots
        assert len(acc._buf) >= total

    def test_checkpointed_run_matches_plain(self, pop, tmp_path):
        cfg = config_for(pop, hours=72, checkpoint_every_hours=24)
        plain = Simulation(pop, cfg).run()
        ckpt = Simulation(pop, cfg).run(checkpoint_dir=tmp_path / "snap")
        assert ckpt.checkpoints_written == 2
        assert (plain.records == ckpt.records).all()
