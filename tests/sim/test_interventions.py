"""Tests for schedule interventions and their epidemic/network effects."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.errors import ScheduleError
from repro.sim import (
    ClosePlaceKind,
    CloseSchools,
    InterventionSchedule,
    Simulation,
    StayHomeOrder,
)
from repro.synthpop.places import PlaceKind
from repro.synthpop.schedule import Activity


@pytest.fixture(scope="module")
def base(small_pop):
    return small_pop.schedule_generator()


class TestCloseSchools:
    def test_no_school_activity_remains(self, small_pop, base):
        sched = InterventionSchedule(base, [CloseSchools()])
        grid = sched.week(0)
        assert not (grid.activity == int(Activity.AT_SCHOOL)).any()

    def test_children_sent_home(self, small_pop, base):
        sched = InterventionSchedule(base, [CloseSchools()])
        grid = sched.week(0)
        raw = base.week(0)
        moved = raw.activity == int(Activity.AT_SCHOOL)
        rows, cols = np.nonzero(moved)
        assert (
            grid.place[rows, cols] == small_pop.persons.household[rows]
        ).all()

    def test_other_activities_untouched(self, small_pop, base):
        sched = InterventionSchedule(base, [CloseSchools()])
        grid = sched.week(0)
        raw = base.week(0)
        untouched = raw.activity != int(Activity.AT_SCHOOL)
        assert (grid.place[untouched] == raw.place[untouched]).all()

    def test_window_respected(self, base):
        iv = CloseSchools(start_week=1, end_week=3)
        assert not iv.active(0)
        assert iv.active(1) and iv.active(2)
        assert not iv.active(3)

    def test_invalid_window(self):
        with pytest.raises(ScheduleError):
            CloseSchools(start_week=2, end_week=2)


class TestClosePlaceKind:
    def test_venues_closed(self, small_pop, base):
        sched = InterventionSchedule(
            base, [ClosePlaceKind(small_pop.places, PlaceKind.OTHER)]
        )
        grid = sched.week(0)
        kinds = small_pop.places.kind[grid.place.astype(np.int64)]
        assert not (kinds == int(PlaceKind.OTHER)).any()

    def test_homes_never_closed_target(self, small_pop, base):
        """Closing venues must not touch home hours."""
        sched = InterventionSchedule(
            base, [ClosePlaceKind(small_pop.places, PlaceKind.OTHER)]
        )
        grid = sched.week(0)
        raw = base.week(0)
        home = raw.activity == int(Activity.AT_HOME)
        assert (grid.place[home] == raw.place[home]).all()


class TestStayHome:
    def test_compliant_fraction_home_all_week(self, small_pop, base):
        sched = InterventionSchedule(base, [StayHomeOrder(0.5, seed=1)])
        grid = sched.week(0)
        hh = small_pop.persons.household
        home_all = (grid.place == hh[:, None]).all(axis=1)
        frac = home_all.mean()
        assert 0.4 < frac  # at least the compliant half (plus home-bodies)

    def test_compliance_stable_across_weeks(self, small_pop, base):
        order = StayHomeOrder(0.5, seed=1)
        sched = InterventionSchedule(base, [order])
        hh = small_pop.persons.household
        home0 = (sched.week(0).place == hh[:, None]).all(axis=1)
        home1 = (sched.week(1).place == hh[:, None]).all(axis=1)
        compliant = order._compliant
        assert home0[compliant].all() and home1[compliant].all()

    def test_invalid_fraction(self):
        with pytest.raises(ScheduleError):
            StayHomeOrder(1.5)


class TestComposition:
    def test_stacked_interventions(self, small_pop, base):
        sched = InterventionSchedule(
            base,
            [
                CloseSchools(),
                ClosePlaceKind(small_pop.places, PlaceKind.OTHER),
            ],
        )
        grid = sched.week(0)
        kinds = small_pop.places.kind[grid.place.astype(np.int64)]
        assert not (kinds == int(PlaceKind.OTHER)).any()
        assert not (grid.activity == int(Activity.AT_SCHOOL)).any()

    def test_rejects_non_intervention(self, base):
        with pytest.raises(ScheduleError):
            InterventionSchedule(base, ["not an intervention"])


class TestEffects:
    def test_school_closure_guts_child_network(self, small_pop, base):
        """The endogenous-network headline: changing schedules reshapes the
        emergent network (0-14 within-group degree collapses)."""
        from repro.analysis import age_group_degree_distributions

        cfg = repro.SimulationConfig(
            scale=small_pop.scale, duration_hours=repro.HOURS_PER_WEEK
        )
        open_net, _ = repro.synthesize_network(
            Simulation(small_pop, cfg).run_fast().records,
            small_pop.n_persons, 0, repro.HOURS_PER_WEEK,
        )
        closed_sched = InterventionSchedule(base, [CloseSchools()])
        closed_net, _ = repro.synthesize_network(
            Simulation(small_pop, cfg, schedules=closed_sched)
            .run_fast()
            .records,
            small_pop.n_persons, 0, repro.HOURS_PER_WEEK,
        )
        kids_open = age_group_degree_distributions(open_net, small_pop.persons)["0-14"]
        kids_closed = age_group_degree_distributions(closed_net, small_pop.persons)["0-14"]
        # at the 800-person test scale children keep venue/household ties,
        # so the drop is large but not total
        assert kids_closed.mean_degree < 0.7 * kids_open.mean_degree

    def test_stay_home_reduces_attack_rate(self, small_pop, base):
        cfg = repro.SimulationConfig(
            scale=small_pop.scale,
            duration_hours=repro.HOURS_PER_WEEK,
            disease=repro.DiseaseConfig(
                transmissibility=0.05, initial_infected=4
            ),
        )
        baseline = Simulation(small_pop, cfg).run()
        locked_sched = InterventionSchedule(
            base, [StayHomeOrder(0.7, seed=2)]
        )
        locked = Simulation(small_pop, cfg, schedules=locked_sched).run()
        assert (
            locked.disease.attack_rate() < baseline.disease.attack_rate()
        )
