"""Tests for the SEIR layer and transmission tracing."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.config import DiseaseConfig, ScaleConfig, SimulationConfig
from repro.errors import SimulationError
from repro.sim import DiseaseModel, DiseaseState, PrevalenceObserver, Simulation


class TestDiseaseModel:
    def test_initial_seeding(self):
        m = DiseaseModel(100, DiseaseConfig(initial_infected=5), seed=1)
        assert m.counts()["infectious"] == 5
        assert len(m.patient_zeros) == 5
        assert (m.infected_at[m.patient_zeros] == 0).all()

    def test_too_many_seeds(self):
        with pytest.raises(SimulationError):
            DiseaseModel(3, DiseaseConfig(initial_infected=5), seed=1)

    def test_no_transmission_when_beta_zero(self):
        m = DiseaseModel(
            50, DiseaseConfig(transmissibility=0.0, initial_infected=2), seed=1
        )
        place = np.zeros(50, dtype=np.uint32)  # everyone in one room
        for hour in range(48):
            assert m.step(hour, place) == 0
        assert m.counts()["exposed"] == 0

    def test_certain_transmission_when_beta_one(self):
        m = DiseaseModel(
            50, DiseaseConfig(transmissibility=1.0, initial_infected=1), seed=1
        )
        place = np.zeros(50, dtype=np.uint32)
        new = m.step(0, place)
        assert new == 49  # every susceptible in the room infected

    def test_isolation_blocks_transmission(self):
        m = DiseaseModel(
            50, DiseaseConfig(transmissibility=1.0, initial_infected=1), seed=1
        )
        place = np.arange(50, dtype=np.uint32)  # everyone alone
        assert m.step(0, place) == 0

    def test_states_progress_to_recovered(self):
        cfg = DiseaseConfig(
            transmissibility=0.0,
            infectious_days=0.05,  # ~1 hour
            initial_infected=5,
        )
        m = DiseaseModel(20, cfg, seed=1)
        place = np.arange(20, dtype=np.uint32)
        for hour in range(24 * 5):
            m.step(hour, place)
        assert m.counts()["infectious"] == 0
        assert m.counts()["recovered"] == 5

    def test_transmission_records_have_real_infectors(self):
        m = DiseaseModel(
            200, DiseaseConfig(transmissibility=0.3, initial_infected=3), seed=2
        )
        rng = np.random.default_rng(0)
        for hour in range(48):
            place = rng.integers(0, 20, 200).astype(np.uint32)
            m.step(hour, place)
        assert m.transmissions, "expected at least one transmission"
        for t in m.transmissions[:50]:
            assert t.infected != t.infector
            assert m.infected_at[t.infected] == t.hour

    def test_place_vector_length_checked(self):
        m = DiseaseModel(10, DiseaseConfig(), seed=1)
        with pytest.raises(SimulationError):
            m.step(0, np.zeros(5, dtype=np.uint32))


class TestTracing:
    @pytest.fixture(scope="class")
    def outbreak(self):
        pop = repro.generate_population(ScaleConfig(n_persons=600, seed=3))
        cfg = SimulationConfig(
            scale=pop.scale,
            duration_hours=repro.HOURS_PER_WEEK,
            disease=DiseaseConfig(transmissibility=0.05, initial_infected=3),
        )
        res = Simulation(pop, cfg).run()
        assert res.disease is not None and res.disease.transmissions
        return res.disease

    def test_chain_reaches_patient_zero(self, outbreak):
        case = outbreak.transmissions[-1].infected
        chain = outbreak.trace_to_patient_zero(case)
        assert chain[0].infected == case
        assert chain[-1].infector in outbreak.patient_zeros

    def test_chain_hours_decrease(self, outbreak):
        case = outbreak.transmissions[-1].infected
        chain = outbreak.trace_to_patient_zero(case)
        hours = [t.hour for t in chain]
        assert hours == sorted(hours, reverse=True)

    def test_seed_case_has_empty_chain(self, outbreak):
        assert outbreak.trace_to_patient_zero(outbreak.patient_zeros[0]) == []

    def test_attack_rate_bounds(self, outbreak):
        assert 0.0 < outbreak.attack_rate() <= 1.0


class TestEpidemicDynamics:
    def test_prevalence_observer_records_curve(self):
        pop = repro.generate_population(ScaleConfig(n_persons=400, seed=4))
        cfg = SimulationConfig(
            scale=pop.scale,
            duration_hours=120,
            disease=DiseaseConfig(transmissibility=0.03, initial_infected=2),
        )
        obs = PrevalenceObserver()
        Simulation(pop, cfg).run(observers=[obs])
        assert len(obs.hours) == 120
        totals = {
            name: np.array(series) for name, series in obs.series.items()
        }
        # S+E+I+R == population at every tick
        s = sum(totals.values())
        assert (s == 400).all()
        # susceptible never increases
        sus = totals["susceptible"]
        assert (np.diff(sus) <= 0).all()
