"""Tests for aggregate observers."""

from __future__ import annotations

import numpy as np

from repro.sim.observers import (
    MovementObserver,
    Observer,
    OccupancyObserver,
    PrevalenceObserver,
)


class TestProtocol:
    def test_all_satisfy_protocol(self):
        for obs in (PrevalenceObserver(), OccupancyObserver(), MovementObserver()):
            assert isinstance(obs, Observer)


class TestOccupancy:
    def test_histogram_counts_place_sizes(self):
        obs = OccupancyObserver(max_occupancy=10)
        place = np.array([0, 0, 0, 1, 1, 2], dtype=np.uint32)
        obs.on_tick(0, np.zeros(6), place, None)
        assert obs.histogram[3] == 1  # one place with 3 occupants
        assert obs.histogram[2] == 1
        assert obs.histogram[1] == 1
        assert obs.max_seen == 3

    def test_clipping_above_max(self):
        obs = OccupancyObserver(max_occupancy=4)
        place = np.zeros(50, dtype=np.uint32)
        obs.on_tick(0, np.zeros(50), place, None)
        assert obs.histogram[4] == 1
        assert obs.max_seen == 50

    def test_mean_occupancy(self):
        obs = OccupancyObserver()
        obs.on_tick(0, np.zeros(4), np.array([0, 0, 1, 1], dtype=np.uint32), None)
        assert obs.mean_occupancy() == 2.0

    def test_mean_empty(self):
        assert OccupancyObserver().mean_occupancy() == 0.0


class TestMovement:
    def test_counts_changes_between_ticks(self):
        obs = MovementObserver()
        obs.on_tick(0, np.zeros(3), np.array([1, 2, 3], dtype=np.uint32), None)
        obs.on_tick(1, np.zeros(3), np.array([1, 9, 3], dtype=np.uint32), None)
        obs.on_tick(2, np.zeros(3), np.array([5, 9, 7], dtype=np.uint32), None)
        assert obs.moves_per_hour == [1, 2]
        assert obs.total_moves == 3

    def test_first_tick_not_counted(self):
        obs = MovementObserver()
        obs.on_tick(0, np.zeros(2), np.array([1, 2], dtype=np.uint32), None)
        assert obs.moves_per_hour == []


class TestPrevalence:
    def test_ignores_runs_without_disease(self):
        obs = PrevalenceObserver()
        obs.on_tick(0, np.zeros(2), np.zeros(2, dtype=np.uint32), None)
        assert obs.hours == []
        assert obs.peak_infectious() == (0, 0)
