"""Tests for population persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PopulationError
from repro.synthpop import load_population, save_population


class TestRoundTrip:
    def test_save_load_identical(self, small_pop, tmp_path):
        path = save_population(small_pop, tmp_path / "world")
        assert path.suffix == ".npz"
        back = load_population(path)
        assert back.seed == small_pop.seed
        assert back.scale == small_pop.scale
        for col in ("age", "household", "school", "workplace", "favorites"):
            assert (
                getattr(back.persons, col) == getattr(small_pop.persons, col)
            ).all()
        for col in ("kind", "x", "y", "capacity"):
            assert (
                getattr(back.places, col) == getattr(small_pop.places, col)
            ).all()

    def test_schedules_reproducible_after_reload(self, small_pop, tmp_path):
        path = save_population(small_pop, tmp_path / "w.npz")
        back = load_population(path)
        a = small_pop.schedule_generator().week(0)
        b = back.schedule_generator().week(0)
        assert (a.place == b.place).all()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_population(tmp_path / "nope.npz")

    def test_load_garbage_file(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, whatever=np.zeros(3))
        with pytest.raises(PopulationError):
            load_population(bad)
