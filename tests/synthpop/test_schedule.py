"""Tests for weekly schedule generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import HOURS_PER_DAY, HOURS_PER_WEEK, ScheduleConfig
from repro.errors import ScheduleError
from repro.synthpop.schedule import Activity, WeekGrid, WeeklyScheduleGenerator
from repro.synthpop.person import NO_PLACE


@pytest.fixture(scope="module")
def generator(small_pop):
    return small_pop.schedule_generator()


@pytest.fixture(scope="module")
def week0(generator):
    return generator.week(0)


class TestWeekGrid:
    def test_shape(self, week0, small_pop):
        assert week0.activity.shape == (small_pop.n_persons, HOURS_PER_WEEK)
        assert week0.place.shape == week0.activity.shape

    def test_no_no_place(self, week0):
        assert not (week0.place == NO_PLACE).any()

    def test_shape_validation(self):
        with pytest.raises(ScheduleError):
            WeekGrid(0, np.zeros((2, 100), dtype=np.uint8), np.zeros((2, 100), dtype=np.uint32))


class TestDeterminism:
    def test_same_week_identical(self, generator):
        a, b = generator.week(1), generator.week(1)
        assert (a.activity == b.activity).all()
        assert (a.place == b.place).all()

    def test_weeks_differ(self, generator):
        a, b = generator.week(0), generator.week(1)
        assert (a.place != b.place).any()

    def test_negative_week_raises(self, generator):
        with pytest.raises(ScheduleError):
            generator.week(-1)


class TestStructure:
    def test_nights_at_home(self, week0, small_pop):
        """Hours 0-6 and 23 of every day must be at home."""
        hh = small_pop.persons.household
        for day in range(7):
            for hour in (0, 3, 6, 23):
                col = day * HOURS_PER_DAY + hour
                assert (week0.activity[:, col] == int(Activity.AT_HOME)).all()
                assert (week0.place[:, col] == hh).all()

    def test_students_at_school_weekdays(self, week0, small_pop):
        students = np.flatnonzero(small_pop.persons.is_student)
        col = 0 * HOURS_PER_DAY + 10  # Monday 10:00
        at_school = week0.activity[students, col] == int(Activity.AT_SCHOOL)
        assert at_school.mean() > 0.95
        schooled = students[at_school]
        assert (
            week0.place[schooled, col]
            == small_pop.persons.school[schooled]
        ).all()

    def test_no_school_on_weekend(self, week0):
        sat = 5 * HOURS_PER_DAY + 10
        assert not (week0.activity[:, sat] == int(Activity.AT_SCHOOL)).any()

    def test_workers_at_work_midday(self, week0, small_pop):
        workers = np.flatnonzero(small_pop.persons.is_employed)
        col = 1 * HOURS_PER_DAY + 13  # Tuesday 13:00
        acts = week0.activity[workers, col]
        at_work = acts == int(Activity.AT_WORK)
        # most workers are at work or out at lunch at 13:00
        assert (at_work | (acts == int(Activity.LUNCH_OUT))).mean() > 0.6
        worked = workers[at_work]
        assert (
            week0.place[worked, col] == small_pop.persons.workplace[worked]
        ).all()

    def test_outing_places_are_favorites(self, week0, small_pop):
        fav = small_pop.persons.favorites
        leisure = week0.activity == int(Activity.LEISURE)
        rows, cols = np.nonzero(leisure)
        sample = slice(0, 500)
        for r, c in zip(rows[sample], cols[sample]):
            assert week0.place[r, c] in fav[r]

    def test_changes_per_day_in_paper_band(self, week0):
        """Section III sizes logs on ~5 changes/day; our schedules land in
        the 2.5-6 band (documented in EXPERIMENTS.md)."""
        rate = week0.changes_per_person_day()
        assert 2.5 <= rate <= 6.0

    def test_propensity_creates_homebodies(self, generator, week0, small_pop):
        """Some people never leave home except for anchors — the source of
        the paper's degree-1..7 head."""
        non_anchor = ~small_pop.persons.is_student & ~small_pop.persons.is_employed
        home_all_week = (
            (week0.place == small_pop.persons.household[:, None]).all(axis=1)
        )
        assert (home_all_week & non_anchor).sum() > 0


class TestActivityPlaceConsistency:
    def test_home_activity_at_household(self, week0, small_pop):
        home = week0.activity == int(Activity.AT_HOME)
        hh = np.broadcast_to(
            small_pop.persons.household[:, None], week0.place.shape
        )
        assert (week0.place[home] == hh[home]).all()

    def test_school_activity_at_school_place(self, week0, small_pop):
        at_school = week0.activity == int(Activity.AT_SCHOOL)
        rows, cols = np.nonzero(at_school)
        assert (
            week0.place[rows, cols] == small_pop.persons.school[rows]
        ).all()

    def test_work_activity_at_workplace(self, week0, small_pop):
        at_work = week0.activity == int(Activity.AT_WORK)
        rows, cols = np.nonzero(at_work)
        assert (
            week0.place[rows, cols] == small_pop.persons.workplace[rows]
        ).all()
