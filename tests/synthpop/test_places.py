"""Tests for the place table and city coordinate scattering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PopulationError
from repro.synthpop.places import PlaceKind, PlaceTable, scatter_city_coords


def make_places(n=8):
    return PlaceTable(
        kind=np.array([int(PlaceKind.HOME)] * (n // 2) + [int(PlaceKind.OTHER)] * (n - n // 2)),
        x=np.linspace(0, 10, n),
        y=np.linspace(0, 10, n),
        capacity=np.full(n, 4),
    )


class TestPlaceTable:
    def test_shape_and_dtypes(self):
        p = make_places(8)
        assert len(p) == 8
        assert p.kind.dtype == np.uint8
        assert p.x.dtype == np.float32
        assert p.capacity.dtype == np.uint32

    def test_rejects_mismatched_columns(self):
        with pytest.raises(PopulationError):
            PlaceTable(
                kind=np.zeros(3),
                x=np.zeros(2),
                y=np.zeros(3),
                capacity=np.zeros(3),
            )

    def test_ids_of_kind(self):
        p = make_places(8)
        homes = p.ids_of_kind(PlaceKind.HOME)
        assert len(homes) == 4
        assert (p.kind[homes] == int(PlaceKind.HOME)).all()
        assert len(p.ids_of_kind(PlaceKind.SCHOOL)) == 0

    def test_coords_shape(self):
        p = make_places(6)
        assert p.coords().shape == (6, 2)

    def test_counts_by_kind(self):
        p = make_places(8)
        counts = p.counts_by_kind()
        assert counts["home"] == 4
        assert counts["other"] == 4
        assert counts["school"] == 0


class TestScatter:
    def test_within_city_square(self, rng):
        xs, ys = scatter_city_coords(5_000, 40.0, rng)
        assert xs.min() >= 0 and xs.max() <= 40
        assert ys.min() >= 0 and ys.max() <= 40

    def test_core_denser_than_periphery(self, rng):
        """The downtown blob should make the central quarter denser."""
        xs, ys = scatter_city_coords(20_000, 40.0, rng)
        central = (
            (xs > 15) & (xs < 25) & (ys > 15) & (ys < 25)
        ).sum()
        corner = ((xs < 10) & (ys < 10)).sum()
        # central 10x10 box should be far denser than a corner 10x10 box
        assert central > 2 * corner

    def test_zero_places(self, rng):
        xs, ys = scatter_city_coords(0, 40.0, rng)
        assert len(xs) == 0 and len(ys) == 0

    def test_negative_raises(self, rng):
        with pytest.raises(PopulationError):
            scatter_city_coords(-1, 40.0, rng)
