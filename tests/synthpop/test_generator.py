"""Tests for the top-level population generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ScaleConfig
from repro.synthpop import PlaceKind, generate_population
from repro.synthpop.person import NO_PLACE


class TestGeneratedWorld:
    def test_exact_person_count(self, small_pop):
        assert small_pop.n_persons == small_pop.scale.n_persons

    def test_place_blocks_laid_out_by_kind(self, small_pop):
        kind = small_pop.places.kind
        # homes first, then schools, workplaces, others — contiguous blocks
        changes = np.flatnonzero(kind[1:] != kind[:-1]) + 1
        assert len(changes) == 3
        blocks = np.split(kind, changes)
        assert [int(b[0]) for b in blocks] == [
            int(PlaceKind.HOME),
            int(PlaceKind.SCHOOL),
            int(PlaceKind.WORKPLACE),
            int(PlaceKind.OTHER),
        ]

    def test_references_valid(self, small_pop):
        small_pop.persons.validate_against_places(small_pop.n_places)

    def test_school_ids_are_school_places(self, small_pop):
        persons, places = small_pop.persons, small_pop.places
        schools = persons.school[persons.school != NO_PLACE]
        assert (places.kind[schools] == int(PlaceKind.SCHOOL)).all()

    def test_workplace_ids_are_workplaces(self, small_pop):
        persons, places = small_pop.persons, small_pop.places
        wps = persons.workplace[persons.workplace != NO_PLACE]
        assert (places.kind[wps] == int(PlaceKind.WORKPLACE)).all()

    def test_favorites_are_other_places(self, small_pop):
        favs = small_pop.persons.favorites.ravel()
        assert (small_pop.places.kind[favs] == int(PlaceKind.OTHER)).all()

    def test_household_capacity_matches_size(self, small_pop):
        persons, places = small_pop.persons, small_pop.places
        counts = np.bincount(persons.household, minlength=small_pop.n_places)
        homes = places.ids_of_kind(PlaceKind.HOME)
        assert (counts[homes] == places.capacity[homes]).all()

    def test_students_not_employed(self, small_pop):
        p = small_pop.persons
        assert not (p.is_student & p.is_employed).any()

    def test_deterministic_from_seed(self):
        a = generate_population(ScaleConfig(n_persons=400, seed=5))
        b = generate_population(ScaleConfig(n_persons=400, seed=5))
        assert (a.persons.age == b.persons.age).all()
        assert (a.persons.favorites == b.persons.favorites).all()
        assert (a.places.x == b.places.x).all()

    def test_different_seeds_differ(self):
        a = generate_population(ScaleConfig(n_persons=400, seed=5))
        b = generate_population(ScaleConfig(n_persons=400, seed=6))
        assert (a.persons.age != b.persons.age).any()

    def test_summary_keys(self, small_pop):
        s = small_pop.summary()
        for key in ("n_persons", "n_places", "n_students", "n_employed"):
            assert key in s

    def test_tiny_population(self):
        pop = generate_population(ScaleConfig(n_persons=10))
        assert pop.n_persons == 10
        pop.persons.validate_against_places(pop.n_places)

    def test_school_age_children_enrolled(self, small_pop):
        p = small_pop.persons
        school_age = (p.age >= 5) & (p.age <= 18)
        assert (p.school[school_age] != NO_PLACE).all()
        assert (p.school[~school_age] == NO_PLACE).all()
