"""Tests for school/workplace/favorite assignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PopulationError
from repro.synthpop.assignment import (
    SCHOOL_AGE_MAX,
    SCHOOL_AGE_MIN,
    assign_favorites,
    assign_schools,
    assign_workplaces,
    gravity_choice,
)
from repro.synthpop.person import NO_PLACE


@pytest.fixture()
def world(rng):
    n = 2_000
    ages = rng.integers(0, 90, n)
    home_xy = rng.uniform(0, 40, (n, 2))
    return ages, home_xy


class TestGravityChoice:
    def test_shapes(self, rng):
        person_xy = rng.uniform(0, 40, (50, 2))
        ids = np.arange(100, 130, dtype=np.uint32)
        place_xy = rng.uniform(0, 40, (30, 2))
        attract = rng.lognormal(size=30)
        out = gravity_choice(person_xy, ids, place_xy, attract, rng, k=3)
        assert out.shape == (50, 3)
        assert set(np.unique(out)) <= set(ids.tolist())

    def test_empty_persons(self, rng):
        out = gravity_choice(
            np.empty((0, 2)), np.arange(5, dtype=np.uint32),
            np.zeros((5, 2)), np.ones(5), rng, k=2,
        )
        assert out.shape == (0, 2)

    def test_no_places_raises(self, rng):
        with pytest.raises(PopulationError):
            gravity_choice(
                np.zeros((3, 2)), np.empty(0, dtype=np.uint32),
                np.empty((0, 2)), np.empty(0), rng,
            )

    def test_prefers_nearby(self, rng):
        """A person equidistant from nothing: near venue should dominate."""
        person_xy = np.tile([[0.0, 0.0]], (400, 1))
        ids = np.array([0, 1], dtype=np.uint32)
        place_xy = np.array([[1.0, 0.0], [35.0, 0.0]])
        attract = np.ones(2)
        out = gravity_choice(person_xy, ids, place_xy, attract, rng, k=1)
        near = (out[:, 0] == 0).mean()
        # with a 2-place pool the stage-1 candidate draw misses the near
        # venue for ~25% of persons, so the ceiling is ~0.75 + ε
        assert near > 0.7

    def test_prefers_attractive(self, rng):
        """Equidistant venues: attractiveness decides the stage-1 pool."""
        person_xy = np.tile([[0.0, 0.0]], (400, 1))
        ids = np.array([0, 1], dtype=np.uint32)
        place_xy = np.array([[5.0, 0.0], [-5.0, 0.0]])
        attract = np.array([100.0, 1.0])
        out = gravity_choice(person_xy, ids, place_xy, attract, rng, k=1)
        assert (out[:, 0] == 0).mean() > 0.8

    def test_tiny_pool_fills_k(self, rng):
        out = gravity_choice(
            np.zeros((4, 2)), np.array([9], dtype=np.uint32),
            np.zeros((1, 2)), np.ones(1), rng, k=3,
        )
        assert out.shape == (4, 3)
        assert (out == 9).all()


class TestSchools:
    def test_only_school_age_assigned(self, world, rng):
        ages, home_xy = world
        buildings_xy = rng.uniform(0, 40, (3, 2))
        building, classroom = assign_schools(ages, home_xy, buildings_xy, 600, 30, rng)
        school_age = (ages >= SCHOOL_AGE_MIN) & (ages <= SCHOOL_AGE_MAX)
        assert (building[school_age] >= 0).all()
        assert (building[~school_age] == -1).all()

    def test_capacity_respected_with_slack(self, world, rng):
        """With enough total capacity, no building exceeds its cap."""
        ages, home_xy = world
        buildings_xy = rng.uniform(0, 40, (4, 2))
        cap = 600
        building, _ = assign_schools(ages, home_xy, buildings_xy, cap, 30, rng)
        counts = np.bincount(building[building >= 0], minlength=4)
        n_students = (building >= 0).sum()
        if n_students <= 4 * cap:
            assert counts.max() <= cap

    def test_overflow_still_assigns_everyone(self, rng):
        """More students than seats: everyone still gets a building."""
        n = 500
        ages = np.full(n, 10)
        home_xy = rng.uniform(0, 40, (n, 2))
        buildings_xy = rng.uniform(0, 40, (1, 2))
        building, _ = assign_schools(ages, home_xy, buildings_xy, 100, 30, rng)
        assert (building >= 0).all()

    def test_classrooms_capped(self, world, rng):
        ages, home_xy = world
        buildings_xy = rng.uniform(0, 40, (3, 2))
        building, classroom = assign_schools(ages, home_xy, buildings_xy, 600, 30, rng)
        assigned = building >= 0
        # classroom occupancy per (building, classroom) at most classroom size
        key = building[assigned] * 1_000 + classroom[assigned]
        _, counts = np.unique(key, return_counts=True)
        assert counts.max() <= 30

    def test_classrooms_group_age_peers(self, world, rng):
        """Classmates should span a narrow age band (grade cohorts)."""
        ages, home_xy = world
        buildings_xy = rng.uniform(0, 40, (2, 2))
        building, classroom = assign_schools(ages, home_xy, buildings_xy, 600, 30, rng)
        assigned = np.flatnonzero(building >= 0)
        key = building[assigned] * 1_000 + classroom[assigned]
        for k in np.unique(key)[:20]:
            members = assigned[key == k]
            if len(members) >= 5:
                spread = ages[members].max() - ages[members].min()
                assert spread <= 4


class TestWorkplaces:
    def test_employment_pattern(self, world, rng):
        ages, home_xy = world
        ids = np.arange(50, 90, dtype=np.uint32)
        xy = rng.uniform(0, 40, (40, 2))
        attract = rng.lognormal(size=40)
        wp = assign_workplaces(ages, home_xy, ids, xy, attract, 0.7, rng)
        children = ages < 19
        assert (wp[children] == NO_PLACE).all()
        adults = (ages >= 19) & (ages <= 64)
        rate = (wp[adults] != NO_PLACE).mean()
        assert 0.55 < rate < 0.85
        seniors = ages >= 65
        senior_rate = (wp[seniors] != NO_PLACE).mean()
        assert senior_rate < rate

    def test_zero_employment(self, world, rng):
        ages, home_xy = world
        ids = np.arange(5, dtype=np.uint32)
        wp = assign_workplaces(
            ages, home_xy, ids, np.zeros((5, 2)), np.ones(5), 0.0, rng
        )
        adults = (ages >= 19) & (ages <= 64)
        assert (wp[adults] == NO_PLACE).all()


class TestFavorites:
    def test_shape_and_range(self, world, rng):
        _, home_xy = world
        ids = np.arange(200, 260, dtype=np.uint32)
        xy = rng.uniform(0, 40, (60, 2))
        attract = rng.lognormal(size=60)
        fav = assign_favorites(home_xy, ids, xy, attract, 4, rng)
        assert fav.shape == (len(home_xy), 4)
        assert set(np.unique(fav)) <= set(ids.tolist())
