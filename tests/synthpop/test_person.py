"""Tests for the columnar person table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PopulationError
from repro.synthpop.person import NO_PLACE, PersonTable


def make_table(n=10, k=2):
    return PersonTable(
        age=np.arange(n) % 90,
        household=np.zeros(n, dtype=np.uint32),
        school=np.full(n, NO_PLACE, dtype=np.uint32),
        workplace=np.full(n, NO_PLACE, dtype=np.uint32),
        favorites=np.ones((n, k), dtype=np.uint32),
    )


class TestConstruction:
    def test_basic(self):
        t = make_table(5)
        assert len(t) == 5
        assert t.n_persons == 5
        assert t.ids.tolist() == [0, 1, 2, 3, 4]
        assert t.ids.dtype == np.uint32

    def test_rejects_length_mismatch(self):
        with pytest.raises(PopulationError, match="household"):
            PersonTable(
                age=np.zeros(3, dtype=np.uint8),
                household=np.zeros(2, dtype=np.uint32),
                school=np.zeros(3, dtype=np.uint32),
                workplace=np.zeros(3, dtype=np.uint32),
                favorites=np.zeros((3, 1), dtype=np.uint32),
            )

    def test_rejects_1d_favorites(self):
        with pytest.raises(PopulationError, match="favorites"):
            PersonTable(
                age=np.zeros(3, dtype=np.uint8),
                household=np.zeros(3, dtype=np.uint32),
                school=np.zeros(3, dtype=np.uint32),
                workplace=np.zeros(3, dtype=np.uint32),
                favorites=np.zeros(3, dtype=np.uint32),
            )

    def test_dtype_coercion(self):
        t = PersonTable(
            age=np.array([1, 2], dtype=np.int64),
            household=np.array([0, 1], dtype=np.int64),
            school=np.array([0, 0], dtype=np.int64),
            workplace=np.array([0, 0], dtype=np.int64),
            favorites=np.array([[2], [3]], dtype=np.int64),
        )
        assert t.age.dtype == np.uint8
        assert t.household.dtype == np.uint32


class TestQueries:
    def test_student_employed_flags(self):
        t = make_table(4)
        t.school[1] = 7
        t.workplace[2] = 9
        assert t.is_student.tolist() == [False, True, False, False]
        assert t.is_employed.tolist() == [False, False, True, False]

    def test_age_group_matches_config(self):
        t = make_table(100)
        groups = t.age_group()
        assert groups[t.age == 10][0] == 0
        assert groups[t.age == 16][0] == 1
        assert groups[t.age == 30][0] == 2
        assert groups[t.age == 50][0] == 3
        assert groups[t.age == 70][0] == 4

    def test_select_returns_matching_ids(self):
        t = make_table(6)
        ids = t.select(t.age >= 3)
        assert (t.age[ids] >= 3).all()
        assert ids.dtype == np.uint32

    def test_select_rejects_bad_mask(self):
        t = make_table(6)
        with pytest.raises(PopulationError):
            t.select(np.zeros(3, dtype=bool))


class TestValidation:
    def test_validate_against_places_ok(self, small_pop):
        small_pop.persons.validate_against_places(small_pop.n_places)

    def test_validate_catches_bad_household(self):
        t = make_table(3)
        t.household[0] = 99
        with pytest.raises(PopulationError, match="household"):
            t.validate_against_places(10)

    def test_validate_ignores_no_place(self):
        t = make_table(3)  # school/workplace are NO_PLACE
        t.validate_against_places(5)

    def test_validate_catches_bad_favorite(self):
        t = make_table(3)
        t.favorites[1, 0] = 1000
        with pytest.raises(PopulationError, match="favorites"):
            t.validate_against_places(10)
