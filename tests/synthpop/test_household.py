"""Tests for household generation: exact totals, composition, ages."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ScaleConfig
from repro.synthpop.household import (
    MAX_HOUSEHOLD,
    generate_households,
    _sample_sizes,
)


class TestSizes:
    @given(st.integers(min_value=1, max_value=5_000))
    @settings(max_examples=30, deadline=None)
    def test_sizes_sum_exactly_to_population(self, n):
        rng = np.random.default_rng(n)
        sizes = _sample_sizes(n, 2.6, rng)
        assert int(sizes.sum()) == n
        assert sizes.min() >= 1
        assert sizes.max() <= MAX_HOUSEHOLD

    def test_mean_size_close_to_config(self):
        rng = np.random.default_rng(0)
        sizes = _sample_sizes(100_000, 2.6, rng)
        assert sizes.mean() == pytest.approx(2.6, rel=0.05)

    def test_single_person(self):
        rng = np.random.default_rng(0)
        sizes = _sample_sizes(1, 2.6, rng)
        assert sizes.tolist() == [1]


class TestPlan:
    @pytest.fixture(scope="class")
    def plan(self):
        return generate_households(
            ScaleConfig(n_persons=20_000), np.random.default_rng(1)
        )

    def test_every_person_in_a_household(self, plan):
        assert plan.n_persons == 20_000
        assert len(plan.person_household) == 20_000
        counts = np.bincount(plan.person_household, minlength=plan.n_households)
        assert (counts == plan.sizes).all()

    def test_household_ids_contiguous(self, plan):
        assert plan.person_household.max() == plan.n_households - 1
        assert plan.person_household.min() == 0

    def test_age_pyramid_chicago_like(self, plan):
        """Shares per age group within loose, census-like bands."""
        ages = plan.ages.astype(int)
        n = len(ages)
        children = np.count_nonzero(ages <= 14) / n
        seniors = np.count_nonzero(ages >= 65) / n
        working = np.count_nonzero((ages >= 19) & (ages <= 64)) / n
        assert 0.10 < children < 0.35
        assert 0.05 < seniors < 0.30
        assert 0.40 < working < 0.75

    def test_every_household_has_an_adult(self, plan):
        """Household composition puts adults in the first slots."""
        is_adult = plan.ages >= 19
        has_adult = np.zeros(plan.n_households, dtype=bool)
        np.logical_or.at(has_adult, plan.person_household, is_adult)
        assert has_adult.all()

    def test_ages_within_bounds(self, plan):
        assert plan.ages.min() >= 0
        assert plan.ages.max() <= 120

    def test_deterministic(self):
        a = generate_households(ScaleConfig(n_persons=500), np.random.default_rng(3))
        b = generate_households(ScaleConfig(n_persons=500), np.random.default_rng(3))
        assert (a.ages == b.ages).all()
        assert (a.person_household == b.person_household).all()
