"""Tests for the population validator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ScaleConfig
from repro.synthpop import generate_population, validate_population
from repro.synthpop.person import NO_PLACE


class TestCleanPopulation:
    def test_generated_population_validates(self, small_pop):
        report = validate_population(small_pop)
        assert report.ok, report.summary()

    def test_metrics_present(self, small_pop):
        report = validate_population(small_pop)
        for key in (
            "child_share",
            "senior_share",
            "mean_household_size",
            "enrollment_rate",
            "adult_employment",
            "activity_changes_per_day",
            "home_at_3am",
        ):
            assert key in report.metrics

    def test_summary_renders(self, small_pop):
        text = validate_population(small_pop).summary()
        assert "OK" in text
        assert "child_share" in text

    def test_skipping_schedule_check(self, small_pop):
        report = validate_population(small_pop, check_schedules=False)
        assert "activity_changes_per_day" not in report.metrics
        assert report.ok


class TestBrokenPopulations:
    def test_unenrolled_child_flagged(self):
        pop = generate_population(ScaleConfig(n_persons=300, seed=3))
        kids = np.flatnonzero(
            (pop.persons.age >= 5) & (pop.persons.age <= 18)
        )
        pop.persons.school[kids[0]] = NO_PLACE
        report = validate_population(pop, check_schedules=False)
        assert not report.ok
        assert any("enrolled" in e for e in report.errors)

    def test_enrolled_adult_flagged(self):
        pop = generate_population(ScaleConfig(n_persons=300, seed=3))
        adults = np.flatnonzero(pop.persons.age >= 30)
        school = pop.persons.school[pop.persons.school != NO_PLACE][0]
        pop.persons.school[adults[0]] = school
        report = validate_population(pop, check_schedules=False)
        assert not report.ok

    def test_weird_age_pyramid_warns(self):
        pop = generate_population(ScaleConfig(n_persons=300, seed=3))
        pop.persons.age[:] = 30  # everyone 30 years old
        pop.persons.school[:] = NO_PLACE
        report = validate_population(pop, check_schedules=False)
        assert any("child share" in w for w in report.warnings)
