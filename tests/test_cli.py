"""Tests for the command-line interface (full chain in a tmp dir)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """Run generate → simulate → synthesize once; reuse downstream."""
    root = tmp_path_factory.mktemp("cli")
    world = root / "world.npz"
    logs = root / "logs"
    net = root / "week.net.npz"
    assert main(["generate", "--persons", "800", "--seed", "5",
                 "--out", str(world)]) == 0
    assert main(["simulate", "--population", str(world), "--ranks", "3",
                 "--log-dir", str(logs), "--weeks", "1"]) == 0
    assert main(["synthesize", "--log-dir", str(logs),
                 "--population", str(world), "--out", str(net)]) == 0
    return root, world, logs, net


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "cmd", ["generate", "simulate", "synthesize", "analyze", "epidemic",
                "export-ego"],
    )
    def test_all_subcommands_registered(self, cmd):
        sub = build_parser()._subparsers._group_actions[0].choices
        assert cmd in sub


class TestPipeline:
    def test_generate_writes_population(self, workspace):
        _, world, _, _ = workspace
        from repro import load_population

        pop = load_population(world)
        assert pop.n_persons == 800

    def test_simulate_writes_rank_logs(self, workspace):
        _, _, logs, _ = workspace
        from repro.evlog import LogSet

        log_set = LogSet(logs)
        assert len(log_set) == 3
        assert log_set.total_records() > 0

    def test_synthesize_writes_network(self, workspace):
        _, _, _, net_path = workspace
        from repro import CollocationNetwork

        net = CollocationNetwork.load(net_path)
        assert net.n_persons == 800
        assert net.n_edges > 0

    def test_serial_simulate(self, workspace, tmp_path):
        _, world, _, _ = workspace
        logs = tmp_path / "serial_logs"
        assert main(["simulate", "--population", str(world), "--ranks", "1",
                     "--log-dir", str(logs), "--weeks", "1"]) == 0
        from repro.evlog import LogSet

        assert len(LogSet(logs)) == 1

    def test_analyze_runs(self, workspace, capsys):
        _, world, _, net = workspace
        assert main(["analyze", "--network", str(net),
                     "--population", str(world)]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out
        assert "power_law" in out
        assert "0-14" in out

    def test_epidemic_runs(self, workspace, capsys):
        _, world, _, _ = workspace
        assert main(["epidemic", "--population", str(world), "--weeks", "1",
                     "--beta", "0.02", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "attack rate" in out

    def test_export_ego(self, workspace, tmp_path, capsys):
        _, _, _, net = workspace
        out_file = tmp_path / "ego.gexf"
        assert main(["export-ego", "--network", str(net), "--radius", "1",
                     "--out", str(out_file), "--iterations", "10"]) == 0
        assert out_file.exists()
        import networkx as nx

        g = nx.read_gexf(out_file)
        assert g.number_of_nodes() > 0


class TestFaultToleranceFlags:
    def test_checkpoint_then_resume(self, workspace, tmp_path, capsys):
        _, world, logs, _ = workspace
        ckpt = tmp_path / "ckpt"
        out1 = tmp_path / "a.net.npz"
        assert main(["synthesize", "--log-dir", str(logs),
                     "--population", str(world), "--batch-size", "1",
                     "--checkpoint", str(ckpt), "--out", str(out1)]) == 0
        assert (ckpt / "manifest.json").is_file()

        out2 = tmp_path / "b.net.npz"
        assert main(["synthesize", "--log-dir", str(logs),
                     "--population", str(world), "--batch-size", "1",
                     "--resume", str(ckpt), "--out", str(out2)]) == 0
        assert "resumed batches" in capsys.readouterr().out

        from repro import CollocationNetwork

        a = CollocationNetwork.load(out1)
        b = CollocationNetwork.load(out2)
        assert (a.adjacency != b.adjacency).nnz == 0

    def test_quarantine_warning_and_strict(self, workspace, tmp_path, capsys):
        import shutil

        _, world, logs, _ = workspace
        damaged = tmp_path / "damaged_logs"
        shutil.copytree(logs, damaged)
        victim = damaged / "rank_0001.evl"
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))

        out = tmp_path / "q.net.npz"
        assert main(["synthesize", "--log-dir", str(damaged),
                     "--population", str(world), "--out", str(out)]) == 0
        assert "quarantined" in capsys.readouterr().out

        from repro.errors import LogCorruptError

        with pytest.raises(LogCorruptError):
            main(["synthesize", "--log-dir", str(damaged), "--strict",
                  "--population", str(world), "--out", str(out)])

    def test_retrying_thread_pool(self, workspace, tmp_path):
        _, world, logs, _ = workspace
        out = tmp_path / "t.net.npz"
        assert main(["synthesize", "--log-dir", str(logs),
                     "--population", str(world), "--pool", "thread",
                     "--workers", "2", "--retries", "3",
                     "--out", str(out)]) == 0
        assert out.exists()
