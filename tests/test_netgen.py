"""Tests for the random network generators (paper conclusion baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    degree_distribution,
    fit_power_law,
    local_clustering,
)
from repro.analysis.clustering import mean_clustering
from repro.errors import AnalysisError
from repro.netgen import (
    as_network,
    barabasi_albert,
    configuration_model,
    dangalchev,
    erdos_renyi,
    watts_strogatz,
)


class TestAsNetwork:
    def test_dedupes_and_drops_self_loops(self):
        net = as_network(
            np.array([0, 1, 0, 2, 2]),
            np.array([1, 0, 0, 3, 3]),
            4,
        )
        assert net.n_edges == 2  # {0,1} and {2,3}

    def test_weights_kept(self):
        net = as_network(
            np.array([0]), np.array([1]), 3, weights=np.array([9])
        )
        assert net.edge_weight(0, 1) == 9


class TestErdosRenyi:
    def test_edge_count_exact(self, rng):
        net = erdos_renyi(500, 2_000, rng)
        assert net.n_edges == 2_000

    def test_low_clustering(self, rng):
        net = erdos_renyi(1_000, 5_000, rng)
        cc = mean_clustering(local_clustering(net), net.degrees())
        assert cc < 0.05

    def test_invalid_args(self, rng):
        with pytest.raises(AnalysisError):
            erdos_renyi(1, 5, rng)


class TestWattsStrogatz:
    def test_zero_rewiring_is_ring(self, rng):
        net = watts_strogatz(100, 4, 0.0, rng)
        assert net.n_edges == 200
        degrees = net.degrees()
        assert (degrees == 4).all()

    def test_rewired_keeps_edge_count_close(self, rng):
        net = watts_strogatz(500, 6, 0.2, rng)
        # rewiring can create duplicates that collapse; stays close to nk/2
        assert 0.9 * 1500 <= net.n_edges <= 1500

    def test_high_clustering_at_low_p(self, rng):
        ring = watts_strogatz(500, 8, 0.05, rng)
        rand = watts_strogatz(500, 8, 1.0, rng)
        cc_ring = mean_clustering(local_clustering(ring), ring.degrees())
        cc_rand = mean_clustering(local_clustering(rand), rand.degrees())
        assert cc_ring > 3 * cc_rand

    @pytest.mark.parametrize("k,p", [(3, 0.1), (0, 0.1), (200, 0.1), (4, 1.5)])
    def test_invalid_args(self, k, p, rng):
        with pytest.raises(AnalysisError):
            watts_strogatz(100, k, p, rng)


class TestBarabasiAlbert:
    def test_edge_count(self, rng):
        n, m = 1_000, 3
        net = barabasi_albert(n, m, rng)
        expected = m * (m + 1) // 2 + (n - m - 1) * m
        assert net.n_edges == expected

    def test_heavy_tail(self, rng):
        net = barabasi_albert(3_000, 3, rng)
        degrees = net.degrees()
        # hub far above median: the scale-free signature
        assert degrees.max() > 10 * np.median(degrees)
        # power-law fit lands in the paper's 1-3 band
        a = fit_power_law(degree_distribution(degrees)).params["a"]
        assert 1.0 < a < 3.5

    def test_connected(self, rng):
        from repro.analysis import summarize

        net = barabasi_albert(500, 2, rng)
        assert summarize(net).n_components == 1

    def test_invalid(self, rng):
        with pytest.raises(AnalysisError):
            barabasi_albert(5, 5, rng)


class TestDangalchev:
    def test_c_zero_close_to_ba_density(self, rng):
        net = dangalchev(400, 3, 0.0, rng)
        ba = barabasi_albert(400, 3, rng)
        assert abs(net.n_edges - ba.n_edges) < 0.1 * ba.n_edges

    def test_two_level_changes_topology(self):
        """c > 0 reweights attachment toward hub neighborhoods: same seed,
        different wiring, still heavy-tailed."""
        a = dangalchev(400, 3, 0.0, np.random.default_rng(9))
        b = dangalchev(400, 3, 3.0, np.random.default_rng(9))
        assert (a.adjacency != b.adjacency).nnz > 0
        d = b.degrees()
        assert d.max() > 5 * np.median(d)

    def test_deterministic(self):
        a = dangalchev(200, 2, 1.0, np.random.default_rng(4))
        b = dangalchev(200, 2, 1.0, np.random.default_rng(4))
        assert (a.adjacency != b.adjacency).nnz == 0

    def test_invalid(self, rng):
        with pytest.raises(AnalysisError):
            dangalchev(100, 3, -1.0, rng)


class TestConfigurationModel:
    def test_matches_degree_sequence_closely(self, rng):
        target = rng.zipf(2.5, 800)
        target = np.minimum(target, 50)
        net = configuration_model(target, rng)
        got = net.degrees()
        # simple-graph cleanup loses a few stubs; totals stay close
        assert abs(got.sum() - (target.sum() // 2) * 2) < 0.1 * target.sum()

    def test_matches_real_network_degrees(self, small_net, rng):
        """The paper-conclusion baseline: match Figure 3 by construction."""
        target = small_net.degrees()
        net = configuration_model(target, rng)
        d_target = degree_distribution(target)
        d_got = degree_distribution(net.degrees())
        assert abs(d_got.mean_degree - d_target.mean_degree) < 0.15 * d_target.mean_degree

    def test_cannot_match_clustering(self, small_net, rng):
        """...but degree-matching alone misses the clustering structure —
        exactly the paper's point about tailoring random networks."""
        cm = configuration_model(small_net.degrees(), rng)
        cc_real = mean_clustering(
            local_clustering(small_net), small_net.degrees()
        )
        cc_cm = mean_clustering(local_clustering(cm), cm.degrees())
        # the collocation network is small and dense, so even CM retains
        # some clustering; the real network still clearly exceeds it
        assert cc_real > 2 * cc_cm

    def test_invalid(self, rng):
        with pytest.raises(AnalysisError):
            configuration_model(np.array([-1, 2]), rng)
