"""Trace propagation across process-pool workers.

The contract: one ``synthesize_from_logs`` call under zero-copy
multiprocessing dispatch yields ONE connected span tree — the root
``synthesize`` span, its per-batch ``batch`` spans, and the
``worker.build`` spans that actually ran in pool worker *processes*,
re-attached via the captured-spans channel in the task payload."""

from __future__ import annotations

import pytest

import repro
from repro.core import synthesize_from_logs
from repro.distrib import DistributedSimulation, ProcessPool, spatial_partition
from repro.obs import get_collector

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def prop_logs(tmp_path_factory, small_pop):
    d = tmp_path_factory.mktemp("prop-logs")
    cfg = repro.SimulationConfig(
        scale=small_pop.scale, duration_hours=48, n_ranks=2
    )
    part = spatial_partition(
        small_pop.places.coords(), small_pop.places.capacity.astype(float), 2
    )
    DistributedSimulation(small_pop, cfg, part).run(log_dir=d)
    return d


def spans_by_trace(spans):
    by_trace: dict[str, list[dict]] = {}
    for s in spans:
        by_trace.setdefault(s["trace_id"], []).append(s)
    return by_trace


def assert_connected_tree(spans):
    """Every span's parent is another span of the same trace (or the
    single root) — no orphans, no cross-links."""
    by_id = {s["span_id"]: s for s in spans}
    roots = [s for s in spans if s["parent_id"] is None]
    assert len(roots) == 1, [s["name"] for s in spans]
    for s in spans:
        if s["parent_id"] is not None:
            assert s["parent_id"] in by_id, (
                f"span {s['name']} has a dangling parent"
            )
    return roots[0]


class TestProcessPoolPropagation:
    def test_zero_copy_dispatch_yields_one_connected_tree(
        self, prop_logs, small_pop
    ):
        collector = get_collector()
        collector.drain()
        with ProcessPool(2) as pool:
            net, report = synthesize_from_logs(
                prop_logs, small_pop.n_persons, 0, 48,
                pool=pool, dispatch="zero-copy", batch_size=1,
            )
        assert net.n_edges > 0

        spans = collector.drain()
        by_trace = spans_by_trace(spans)
        run_traces = [
            ss for ss in by_trace.values()
            if any(s["name"] == "synthesize" for s in ss)
        ]
        assert len(run_traces) == 1, "one call, one trace"
        tree = run_traces[0]
        root = assert_connected_tree(tree)
        assert root["name"] == "synthesize"
        assert root["attrs"]["dispatch"] == "zero-copy"

        names = [s["name"] for s in tree]
        batches = [s for s in tree if s["name"] == "batch"]
        builds = [s for s in tree if s["name"] == "worker.build"]
        assert batches, names
        assert builds, "worker spans must come back from pool processes"
        # batch_size=1 with 2 rank files -> one batch span per file, and
        # every worker.build hangs off a batch span, never off the root
        assert len(batches) == report.batches == 2
        batch_ids = {s["span_id"] for s in batches}
        assert all(s["parent_id"] in batch_ids for s in builds)
        # a worker span recorded which file it decoded
        assert all(s["attrs"].get("file") for s in builds)

    def test_value_dispatch_also_connects_worker_stage_spans(
        self, prop_logs, small_pop
    ):
        # by-value dispatch runs pack/adjacency tasks in workers too;
        # whatever spans exist must still form one connected tree
        collector = get_collector()
        collector.drain()
        with ProcessPool(2) as pool:
            synthesize_from_logs(
                prop_logs, small_pop.n_persons, 0, 48,
                pool=pool, dispatch="value",
            )
        spans = collector.drain()
        run_traces = [
            ss for ss in spans_by_trace(spans).values()
            if any(s["name"] == "synthesize" for s in ss)
        ]
        assert len(run_traces) == 1
        assert_connected_tree(run_traces[0])

    def test_kernel_timings_survive_the_pool_roundtrip(
        self, prop_logs, small_pop
    ):
        with ProcessPool(2) as pool:
            _net, report = synthesize_from_logs(
                prop_logs, small_pop.n_persons, 0, 48,
                pool=pool, dispatch="zero-copy",
            )
        # per-stage kernel clocks ticked inside worker processes and were
        # absorbed at the root
        assert report.kernel_timings
        assert all(v >= 0 for v in report.kernel_timings.values())
