"""Exporter tests: JSONL span sinks survive garbage, renders stay
readable, and the probe layer folds events where they belong."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    CollectingProbe,
    JsonlSpanSink,
    MetricsRegistry,
    RegistryProbe,
    read_spans_jsonl,
    render_metrics,
    render_trace,
    render_traces,
    write_spans_jsonl,
)

pytestmark = pytest.mark.timeout(60)


def span(tid, sid, parent=None, name="s", start=0.0, **extra):
    d = {
        "trace_id": tid,
        "span_id": sid,
        "parent_id": parent,
        "name": name,
        "start": start,
        "duration": 0.01,
        "status": "ok",
    }
    d.update(extra)
    return d


class TestJsonl:
    def test_sink_then_read_roundtrip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonlSpanSink(path)
        sink(span("t1", "a"))
        sink(span("t1", "b", parent="a"))
        sink.close()
        sink(span("t1", "c"))  # after close: silently ignored, no crash
        got = read_spans_jsonl(path)
        assert [s["span_id"] for s in got] == ["a", "b"]

    def test_reader_skips_truncated_and_garbage_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        lines = [
            json.dumps(span("t1", "a")),
            '{"trace_id": "t1", "span_id": "tru',  # torn tail from a kill
            "not json at all",
            json.dumps({"no_trace_id": True}),
            "",
            json.dumps(span("t1", "b")),
        ]
        path.write_text("\n".join(lines) + "\n")
        got = read_spans_jsonl(path)
        assert [s["span_id"] for s in got] == ["a", "b"]

    def test_write_spans_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "out" / "spans.jsonl"
        spans = [span("t1", "a"), span("t2", "b")]
        write_spans_jsonl(path, spans)
        assert read_spans_jsonl(path) == spans


class TestRenderTrace:
    def test_tree_nesting_follows_parent_ids(self):
        spans = [
            span("t1", "root", name="request", start=1.0),
            span("t1", "kid", parent="root", name="compose", start=2.0),
            span("t1", "grandkid", parent="kid", name="kernel", start=3.0),
        ]
        out = render_trace(spans, "t1")
        lines = out.splitlines()
        assert "trace t1" in lines[0]
        assert lines[1].startswith("`- request")
        assert lines[2].startswith("   `- compose")
        assert lines[3].startswith("      `- kernel")

    def test_orphan_parent_becomes_extra_root(self):
        # only the server half of a trace is in the log: the span whose
        # parent (the client span) is missing must still render
        spans = [span("t1", "srv", parent="missing-client", name="request")]
        out = render_trace(spans, "t1")
        assert "request" in out

    def test_unknown_trace_says_so(self):
        assert "no spans" in render_trace([], "nope")

    def test_error_status_is_flagged(self):
        spans = [span("t1", "a", name="request", status="error:deadline")]
        assert "[error:deadline]" in render_trace(spans, "t1")

    def test_render_traces_last_n_most_recent(self):
        spans = [
            span("t1", "a", start=1.0),
            span("t2", "b", start=2.0),
            span("t3", "c", start=3.0),
        ]
        out = render_traces(spans, last=2)
        assert "trace t1" not in out
        assert "trace t2" in out and "trace t3" in out


class TestRenderMetrics:
    def test_counters_gauges_histograms_render(self):
        reg = MetricsRegistry()
        reg.counter("service.requests").inc(12)
        reg.gauge("inflight").set(3)
        reg.histogram("lat", buckets=(0.01, 0.1)).observe(0.05)
        out = render_metrics(reg.snapshot())
        assert "service.requests" in out and "12" in out
        assert "inflight" in out
        assert "lat" in out and "count=1" in out and "p50=" in out

    def test_empty_snapshot(self):
        assert render_metrics({}) == "(no metrics recorded)"


class TestProbes:
    def test_registry_probe_folds_events_into_registry(self):
        reg = MetricsRegistry()
        p = RegistryProbe(reg)
        p.stage("synthesis.slice", 0.5)
        p.kernel_stage("spgemm", 0.2)
        p.cache_event("tile_hit", 3)
        p.pool_bytes(1024)
        snap = reg.snapshot()
        assert snap["counters"]["stage.synthesis.slice.seconds"] == 0.5
        assert snap["counters"]["kernel.spgemm.tasks"] == 1
        assert snap["counters"]["cache.tile_hit"] == 3
        assert snap["counters"]["pool.bytes_shipped"] == 1024
        assert snap["histograms"]["kernel.spgemm.task_seconds"]["count"] == 1

    def test_collecting_probe_accumulates_and_forwards(self):
        reg = MetricsRegistry()
        p = CollectingProbe(reg)
        p.stage("cache.compose", 0.1)
        p.stage("cache.compose", 0.3)
        p.kernel_stage("pack_build", 0.05)
        p.cache_event("miss")
        p.observe("request.seconds", 0.2)
        d = p.to_dict()
        assert d["stages"]["cache.compose"]["calls"] == 2
        assert d["stages"]["cache.compose"]["seconds"] == pytest.approx(0.4)
        assert d["kernel"]["pack_build"]["tasks"] == 1
        assert d["cache"]["miss"] == 1
        assert d["counters"]["request.seconds.count"] == 1
        # forwarded to the registry as well
        assert reg.snapshot()["counters"]["cache.miss"] == 1
