"""Metrics registry unit tests: histogram bucket semantics (underflow /
overflow / exact-edge), snapshot consistency, delta arithmetic, and
thread-safety of concurrent recording."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)

pytestmark = pytest.mark.timeout(60)


class TestHistogramBuckets:
    def test_underflow_lands_in_first_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(0.001)
        h.observe(-5.0)  # pathological, but must not crash or vanish
        assert h.counts == [2, 0, 0, 0]
        assert h.count == 2
        assert h.min == -5.0

    def test_exact_edge_counts_in_that_edges_bucket(self):
        # le-semantics: an observation equal to a bound belongs to the
        # bucket that bound closes, not the next one up
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)
        h.observe(2.0)
        h.observe(4.0)
        assert h.counts == [1, 1, 1, 0]

    def test_just_above_edge_spills_to_next_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0000001)
        assert h.counts == [0, 1, 0, 0]

    def test_overflow_lands_in_implicit_last_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        h.observe(4.0001)
        h.observe(1e9)
        assert h.counts == [0, 0, 0, 2]
        assert h.max == 1e9

    def test_overflow_quantile_reports_observed_max(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(7.5)
        assert h.quantile(0.5) == 7.5
        assert h.quantile(1.0) == 7.5

    def test_quantile_returns_bucket_upper_edge(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0  # 2nd of 4 -> first bucket's edge
        assert h.quantile(0.75) == 2.0
        assert h.quantile(1.0) == 4.0

    def test_empty_quantile_is_zero(self):
        assert Histogram("h").quantile(0.99) == 0.0

    def test_unsorted_bounds_are_sorted(self):
        h = Histogram("h", buckets=(4.0, 1.0, 2.0))
        assert h.bounds == (1.0, 2.0, 4.0)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_default_buckets_cover_latency_range(self):
        h = Histogram("h")
        assert h.bounds == tuple(sorted(LATENCY_BUCKETS))
        h.observe(0.0001)  # exact first edge
        assert h.counts[0] == 1

    def test_sum_count_min_max_bookkeeping(self):
        h = Histogram("h", buckets=(1.0,))
        for v in (0.25, 0.5, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(3.75)
        assert h.min == 0.25
        assert h.max == 3.0


class TestCounterAndGauge:
    def test_counter_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        c.inc(0.5)
        assert c.get() == pytest.approx(5.5)

    def test_gauge_set_and_add(self):
        g = Gauge("g")
        g.set(10.0)
        g.add(2)
        g.add(-4)
        assert g.get() == pytest.approx(8.0)


class TestRegistry:
    def test_same_name_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_name_cannot_change_kind(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_shape_and_empty_histogram_min_max(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,))
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        h = snap["histograms"]["h"]
        assert h["count"] == 0
        assert h["min"] is None and h["max"] is None
        assert h["counts"] == [0, 0]

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        snap["histograms"]["h"]["counts"][0] = 999
        assert reg.snapshot()["histograms"]["h"]["counts"][0] == 1

    def test_delta_subtracts_counters_and_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.0)
        h = reg.histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        before = reg.snapshot()
        reg.counter("c").inc(5)
        reg.gauge("g").set(9.0)
        h.observe(1.5)
        h.observe(0.25)
        after = reg.snapshot()
        d = MetricsRegistry.delta(before, after)
        assert d["counters"]["c"] == 5
        assert d["gauges"]["g"] == 9.0  # gauges report the later reading
        assert d["histograms"]["h"]["counts"] == [1, 1, 0]
        assert d["histograms"]["h"]["count"] == 2

    def test_delta_treats_new_metrics_as_zero_before(self):
        reg = MetricsRegistry()
        before = reg.snapshot()
        reg.counter("fresh").inc(7)
        d = MetricsRegistry.delta(before, reg.snapshot())
        assert d["counters"]["fresh"] == 7

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_default_registry_swap_and_restore(self):
        mine = MetricsRegistry()
        prev = set_default_registry(mine)
        try:
            assert default_registry() is mine
        finally:
            set_default_registry(prev)
        assert default_registry() is prev


class TestThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 2_000

        def work():
            c = reg.counter("c")
            h = reg.histogram("h", buckets=(0.5, 1.0))
            for i in range(per_thread):
                c.inc()
                h.observe((i % 3) * 0.4)  # 0.0, 0.4, 0.8 round-robin

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        snap = reg.snapshot()
        assert snap["counters"]["c"] == total
        h = snap["histograms"]["h"]
        assert h["count"] == total
        assert sum(h["counts"]) == total

    def test_concurrent_get_or_create_yields_one_object(self):
        reg = MetricsRegistry()
        got = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            got.append(reg.counter("same"))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is got[0] for c in got)
