"""Tracing unit tests: span parentage, wire-context validation, capture
and absorption (the process-pool propagation primitives), the disable
switch, and collector ring/sink behavior."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    SpanCollector,
    TraceContext,
    capture_spans,
    configure,
    current_context,
    enabled,
    get_collector,
    start_span,
    use_context,
)

pytestmark = pytest.mark.timeout(60)


@pytest.fixture(autouse=True)
def clean_collector():
    """Each test starts from an empty process collector."""
    get_collector().drain()
    yield
    get_collector().drain()


class TestSpanParentage:
    def test_nested_spans_share_trace_and_chain_parents(self):
        with start_span("outer") as outer:
            with start_span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert current_context() == inner.context()
            assert current_context() == outer.context()
        assert current_context() is None

    def test_parent_none_forces_new_root(self):
        with start_span("outer") as outer:
            with start_span("detached", parent=None) as det:
                assert det.trace_id != outer.trace_id
                assert det.parent_id is None

    def test_explicit_parent_overrides_current(self):
        remote = TraceContext("cafe" * 4, "beef" * 4)
        with start_span("local"):
            with start_span("child", parent=remote) as child:
                assert child.trace_id == remote.trace_id
                assert child.parent_id == remote.span_id

    def test_exception_sets_error_status(self):
        with capture_spans() as spans:
            with pytest.raises(ValueError):
                with start_span("boom"):
                    raise ValueError("nope")
        assert spans[0]["status"] == "error:ValueError"

    def test_explicit_status_survives_exception(self):
        with capture_spans() as spans:
            with pytest.raises(RuntimeError):
                with start_span("s") as span:
                    span.set_status("error:deadline")
                    raise RuntimeError
        assert spans[0]["status"] == "error:deadline"

    def test_end_is_idempotent(self):
        with capture_spans() as spans:
            span = start_span("once")
            span.end()
            span.end()
        assert len(spans) == 1

    def test_use_context_carries_trace_into_thread(self):
        # the executor-thread propagation path: capture where scheduled,
        # install in the worker body
        with start_span("root") as root:
            ctx = root.context()
        out = {}

        def body():
            with capture_spans() as spans:
                with use_context(ctx):
                    with start_span("threaded"):
                        pass
            out["spans"] = spans

        t = threading.Thread(target=body)
        t.start()
        t.join()
        (span,) = out["spans"]
        assert span["trace_id"] == root.trace_id
        assert span["parent_id"] == root.span_id


class TestWireContext:
    def test_roundtrip(self):
        ctx = TraceContext("t" * 16, "s" * 16)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "not a dict",
            42,
            [],
            {},
            {"trace_id": "t"},
            {"span_id": "s"},
            {"trace_id": 7, "span_id": "s"},
            {"trace_id": "t", "span_id": 7},
            {"trace_id": "", "span_id": "s"},
            {"trace_id": "t", "span_id": ""},
            {"trace_id": "x" * 65, "span_id": "s"},
            {"trace_id": "t", "span_id": "x" * 65},
        ],
    )
    def test_malformed_wire_context_is_rejected_not_fatal(self, bad):
        assert TraceContext.from_wire(bad) is None


class TestCaptureAndAbsorb:
    def test_capture_diverts_from_collector(self):
        with capture_spans() as spans:
            with start_span("captured"):
                pass
        assert [s["name"] for s in spans] == ["captured"]
        assert get_collector().spans() == []

    def test_nested_capture_inner_wins(self):
        with capture_spans() as outer:
            with capture_spans() as inner:
                with start_span("x"):
                    pass
            with start_span("y"):
                pass
        assert [s["name"] for s in inner] == ["x"]
        assert [s["name"] for s in outer] == ["y"]

    def test_absorb_preserves_ids_and_skips_junk(self):
        # worker-side: spans finish under capture, ship back as dicts
        with capture_spans() as spans:
            with start_span("worker.build") as w:
                trace_id, span_id, parent = w.trace_id, w.span_id, w.parent_id
        collector = SpanCollector()
        collector.absorb(spans + [None, "junk", {}, {"no_trace": 1}])
        (got,) = collector.spans()
        assert got["trace_id"] == trace_id
        assert got["span_id"] == span_id
        assert got["parent_id"] == parent

    def test_absorb_none_is_noop(self):
        collector = SpanCollector()
        collector.absorb(None)
        assert collector.spans() == []


class TestDisableSwitch:
    def test_disabled_spans_are_noop_and_children_stay_noop(self):
        prev = configure(False)
        try:
            assert not enabled()
            span = start_span("off")
            assert span.trace_id == ""
            assert span.context() is None  # children can't re-attach
            with span:
                with start_span("child") as child:
                    assert child.trace_id == ""
            assert get_collector().spans() == []
        finally:
            configure(prev)

    def test_reenable_restores_recording(self):
        prev = configure(False)
        try:
            configure(True)
            with capture_spans() as spans:
                with start_span("back"):
                    pass
            assert len(spans) == 1
        finally:
            configure(prev)


class TestCollector:
    def test_ring_drops_oldest_under_pressure(self):
        collector = SpanCollector(max_spans=16)
        for i in range(50):
            collector.add({"trace_id": "t", "span_id": str(i), "name": "s"})
        kept = collector.spans()
        assert len(kept) <= 16
        assert kept[-1]["span_id"] == "49"  # recent spans are favoured

    def test_drain_empties(self):
        collector = SpanCollector()
        collector.add({"trace_id": "t", "span_id": "1"})
        assert len(collector.drain()) == 1
        assert collector.spans() == []

    def test_spans_filters_by_trace_id(self):
        collector = SpanCollector()
        collector.add({"trace_id": "a", "span_id": "1"})
        collector.add({"trace_id": "b", "span_id": "2"})
        assert [s["span_id"] for s in collector.spans("b")] == ["2"]

    def test_sinks_see_added_and_absorbed_spans(self):
        collector = SpanCollector()
        seen = []
        collector.add_sink(seen.append)
        collector.add({"trace_id": "t", "span_id": "1"})
        collector.absorb([{"trace_id": "t", "span_id": "2"}])
        assert [s["span_id"] for s in seen] == ["1", "2"]
        collector.remove_sink(seen.append)
        collector.add({"trace_id": "t", "span_id": "3"})
        assert len(seen) == 2

    def test_broken_sink_never_raises(self):
        collector = SpanCollector()

        def bad(_):
            raise RuntimeError("sink died")

        collector.add_sink(bad)
        collector.add({"trace_id": "t", "span_id": "1"})  # must not raise
        assert len(collector.spans()) == 1
