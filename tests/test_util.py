"""Tests for repro._util: grouping, timers, formatting, seeding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import (
    StageTimings,
    Timer,
    check_uint32,
    group_by_key,
    group_slices,
    human_bytes,
    human_count,
    rng_from_seed,
    spawn_rngs,
)


class TestGroupByKey:
    def test_basic_grouping(self):
        keys = np.array([3, 1, 3, 2, 1, 3])
        unique, order, starts = group_by_key(keys)
        assert unique.tolist() == [1, 2, 3]
        groups = {
            int(unique[i]): sorted(order[starts[i] : starts[i + 1]].tolist())
            for i in range(len(unique))
        }
        assert groups == {1: [1, 4], 2: [3], 3: [0, 2, 5]}

    def test_empty(self):
        unique, order, starts = group_by_key(np.array([], dtype=np.int64))
        assert len(unique) == 0
        assert starts.tolist() == [0]

    def test_single_group(self):
        unique, order, starts = group_by_key(np.full(5, 9))
        assert unique.tolist() == [9]
        assert starts.tolist() == [0, 5]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            group_by_key(np.zeros((2, 2)))

    def test_group_slices_iterates_all(self):
        keys = np.array([5, 5, 2, 7, 2])
        seen = dict(group_slices(keys))
        assert set(seen) == {2, 5, 7}
        assert sorted(seen[2].tolist()) == [2, 4]

    @given(
        st.lists(st.integers(min_value=0, max_value=20), max_size=200)
    )
    @settings(max_examples=50)
    def test_property_partition_of_indices(self, values):
        keys = np.array(values, dtype=np.int64)
        unique, order, starts = group_by_key(keys)
        # groups cover every index exactly once
        all_indices = np.concatenate(
            [order[starts[i] : starts[i + 1]] for i in range(len(unique))]
        ) if len(unique) else np.array([], dtype=np.intp)
        assert sorted(all_indices.tolist()) == list(range(len(values)))
        # every group member has the group's key value
        for i in range(len(unique)):
            members = order[starts[i] : starts[i + 1]]
            assert (keys[members] == unique[i]).all()


class TestTimers:
    def test_timer_measures(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0

    def test_stage_timings_accumulate(self):
        timings = StageTimings()
        with timings.time("a"):
            pass
        with timings.time("a"):
            pass
        with timings.time("b"):
            pass
        assert set(timings.stages) == {"a", "b"}
        assert timings.total == pytest.approx(
            timings.stages["a"] + timings.stages["b"]
        )

    def test_report_lists_stages(self):
        timings = StageTimings()
        timings.add("slice", 1.5)
        report = timings.report()
        assert "slice" in report and "total" in report

    def test_empty_report(self):
        assert "no stages" in StageTimings().report()


class TestFormatting:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0.00 B"),
            (1023, "1023.00 B"),
            (1024, "1.00 KiB"),
            (20 * 1024 * 1024, "20.00 MiB"),
            (3 * 1024**3, "3.00 GiB"),
        ],
    )
    def test_human_bytes(self, n, expected):
        assert human_bytes(n) == expected

    def test_human_count(self):
        assert human_count(2_927_761) == "2,927,761"


class TestCheckUint32:
    def test_accepts_valid(self):
        out = check_uint32(np.array([0, 2**32 - 1]), "x")
        assert out.dtype == np.uint32

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x"):
            check_uint32(np.array([-1]), "x")

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            check_uint32(np.array([2**32]), "big")

    def test_empty_ok(self):
        assert len(check_uint32(np.array([], dtype=np.int64), "e")) == 0


class TestSeeding:
    def test_rng_deterministic(self):
        a = rng_from_seed(5).random(4)
        b = rng_from_seed(5).random(4)
        assert (a == b).all()

    def test_spawn_independent_streams(self):
        streams = spawn_rngs(9, 3)
        vals = [r.random(8) for r in streams]
        assert not np.allclose(vals[0], vals[1])
        # reproducible
        again = [r.random(8) for r in spawn_rngs(9, 3)]
        for v, w in zip(vals, again):
            assert (v == w).all()

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
