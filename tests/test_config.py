"""Tests for repro.config: validation, derived sizes, age groups."""

from __future__ import annotations

import pytest

from repro.config import (
    AGE_GROUPS,
    HOURS_PER_WEEK,
    PAPER_SCALE,
    DiseaseConfig,
    FaultConfig,
    ScaleConfig,
    ScheduleConfig,
    SimulationConfig,
    age_group_labels,
    age_group_of,
)
from repro.errors import ConfigError


class TestAgeGroups:
    def test_paper_groups_present(self):
        assert age_group_labels() == ["0-14", "15-18", "19-44", "45-64", "65+"]

    @pytest.mark.parametrize(
        "age,expected",
        [(0, 0), (14, 0), (15, 1), (18, 1), (19, 2), (44, 2), (45, 3), (64, 3), (65, 4), (120, 4)],
    )
    def test_boundaries(self, age, expected):
        assert age_group_of(age) == expected

    def test_out_of_range(self):
        with pytest.raises(ConfigError):
            age_group_of(121)

    def test_groups_cover_all_ages(self):
        covered = set()
        for _, lo, hi in AGE_GROUPS:
            covered.update(range(lo, hi + 1))
        assert covered == set(range(0, 121))


class TestScaleConfig:
    def test_derived_counts_positive(self):
        s = ScaleConfig(n_persons=10_000)
        assert s.n_households > 0
        assert s.n_schools > 0
        assert s.n_workplaces > 0
        assert s.n_other_places > 0
        assert s.n_places == (
            s.n_households + s.n_schools + s.n_workplaces + s.n_other_places
        )

    def test_paper_scale_matches_abstract(self):
        # 2.9 M persons, ~1.2 M places ("1.2 million places based on census
        # data"); our ratios should land within 20% of the paper's places
        assert PAPER_SCALE.n_persons == 2_900_000
        assert 0.8e6 < PAPER_SCALE.n_places < 1.6e6

    def test_scaled_preserves_ratios(self):
        base = ScaleConfig(n_persons=10_000)
        big = base.scaled(20_000)
        assert big.n_persons == 20_000
        assert big.mean_household_size == base.mean_household_size
        assert big.n_households == pytest.approx(2 * base.n_households, rel=0.01)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_persons": 0},
            {"n_persons": -5},
            {"mean_household_size": 0.5},
            {"persons_per_school": 0},
            {"school_capacity": 10, "classroom_size": 30},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            ScaleConfig(**kwargs)


class TestScheduleConfig:
    def test_defaults_valid(self):
        ScheduleConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"employment_rate": 1.5},
            {"evening_out_prob": -0.1},
            {"school_start": 10, "school_end": 9},
            {"work_hours": 0},
            {"favorite_places": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            ScheduleConfig(**kwargs)


class TestDiseaseConfig:
    def test_defaults_valid(self):
        DiseaseConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"transmissibility": 2.0},
            {"incubation_days": 0},
            {"infectious_days": -1},
            {"initial_infected": -1},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            DiseaseConfig(**kwargs)


class TestSimulationConfig:
    def test_defaults(self):
        c = SimulationConfig()
        assert c.duration_hours == HOURS_PER_WEEK
        assert c.n_ranks == 1
        assert c.log_cache_records == 10_000  # the paper's nominal cache

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_hours": 0},
            {"n_ranks": 0},
            {"log_cache_records": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            SimulationConfig(**kwargs)


class TestFaultConfig:
    def test_defaults_are_graceful(self):
        c = FaultConfig()
        assert c.max_attempts == 3
        assert not c.strict

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.9},
            {"jitter": 2.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            FaultConfig(**kwargs)

    def test_retry_policy_mapping(self):
        c = FaultConfig(
            max_attempts=5, backoff_base=0.2, backoff_factor=3.0,
            backoff_max=9.0, jitter=0.25, seed=7,
        )
        policy = c.retry_policy()
        assert policy.max_attempts == 5
        assert policy.base_delay == 0.2
        assert policy.backoff == 3.0
        assert policy.max_delay == 9.0
        assert policy.jitter == 0.25
        assert policy.seed == 7
