"""Shared fixtures.

Expensive artifacts (population, one-week event records, the synthesized
network) are session-scoped: many test modules read them, none mutate them.
Sizes are chosen so the whole suite runs in well under a minute while still
exercising multi-place, multi-week, multi-rank code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.config import ScaleConfig, SimulationConfig
from repro.sim import Simulation
from repro.synthpop import generate_population

N_SMALL = 800


@pytest.fixture(scope="session")
def small_pop():
    """An 800-person world with every place kind populated."""
    return generate_population(ScaleConfig(n_persons=N_SMALL, seed=123))


@pytest.fixture(scope="session")
def week_result(small_pop):
    """One week of serial simulation events for the small world."""
    config = SimulationConfig(
        scale=small_pop.scale, duration_hours=repro.HOURS_PER_WEEK
    )
    return Simulation(small_pop, config).run_fast()


@pytest.fixture(scope="session")
def small_net(small_pop, week_result):
    """The week's collocation network."""
    net, _ = repro.synthesize_network(
        week_result.records, small_pop.n_persons, 0, repro.HOURS_PER_WEEK
    )
    return net


@pytest.fixture(scope="session")
def random_records():
    """Synthetic random (but valid) log records for format-level tests."""
    rng = np.random.default_rng(42)
    n = 5_000
    start = rng.integers(0, 160, n).astype(np.uint32)
    stop = start + rng.integers(1, 9, n).astype(np.uint32)
    from repro.evlog import make_records

    return make_records(
        start,
        stop,
        rng.integers(0, 700, n),
        rng.integers(0, 6, n),
        rng.integers(0, 400, n),
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(7)
