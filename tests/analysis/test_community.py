"""Tests for community detection (label propagation + modularity)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.community import (
    community_sizes,
    label_propagation,
    modularity,
)
from repro.core import CollocationNetwork
from repro.errors import AnalysisError


def planted_cliques(sizes, bridge_weight=1):
    """Disjoint cliques with single light bridges between consecutive ones."""
    n = sum(sizes)
    rows, cols, data = [], [], []
    offset = 0
    firsts = []
    for size in sizes:
        for i in range(size):
            for j in range(i + 1, size):
                rows.append(offset + i)
                cols.append(offset + j)
                data.append(10)
        firsts.append(offset)
        offset += size
    for a, b in zip(firsts[:-1], firsts[1:]):
        rows.append(min(a, b))
        cols.append(max(a, b))
        data.append(bridge_weight)
    adj = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    return CollocationNetwork(adj), sizes


class TestLabelPropagation:
    def test_recovers_planted_cliques(self):
        net, sizes = planted_cliques([8, 8, 8])
        labels = label_propagation(net, seed=1)
        # members of a clique share a label
        offset = 0
        for size in sizes:
            block = labels[offset : offset + size]
            assert len(np.unique(block)) == 1
            offset += size
        # cliques get (mostly) distinct labels
        firsts = labels[np.cumsum([0] + sizes[:-1])]
        assert len(np.unique(firsts)) >= 2

    def test_isolated_vertices_singleton(self):
        net = CollocationNetwork(sp.csr_matrix((5, 5), dtype=np.int64))
        labels = label_propagation(net)
        assert len(np.unique(labels)) == 5

    def test_deterministic_for_seed(self, small_net):
        a = label_propagation(small_net, seed=3)
        b = label_propagation(small_net, seed=3)
        assert (a == b).all()

    def test_labels_dense_renumbered(self, small_net):
        labels = label_propagation(small_net)
        uniq = np.unique(labels)
        assert uniq[0] == 0
        assert uniq[-1] == len(uniq) - 1

    def test_households_recovered_on_real_network(self, small_net, small_pop):
        """Households are near-perfect communities of the collocation
        network; members should co-label far above chance."""
        labels = label_propagation(small_net, seed=0)
        hh = small_pop.persons.household
        same = 0
        total = 0
        counts = np.bincount(hh)
        for h in np.flatnonzero(counts >= 2)[:100]:
            members = np.flatnonzero(hh == h)
            total += 1
            if len(np.unique(labels[members])) == 1:
                same += 1
        assert same / total > 0.6


class TestModularity:
    def test_matches_networkx(self, small_net):
        labels = label_propagation(small_net, seed=0)
        q = modularity(small_net, labels)
        g = small_net.to_networkx()
        part = [
            set(np.flatnonzero(labels == c).tolist())
            for c in np.unique(labels)
        ]
        q_nx = nx.community.modularity(g, part, weight="weight")
        assert q == pytest.approx(q_nx, abs=1e-9)

    def test_planted_partition_beats_random(self):
        net, sizes = planted_cliques([10, 10, 10])
        planted = np.repeat(np.arange(3), 10)
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 3, 30)
        assert modularity(net, planted) > modularity(net, random_labels)

    def test_single_community_zero_ish(self):
        net, _ = planted_cliques([6])
        assert modularity(net, np.zeros(6, dtype=np.int64)) == pytest.approx(0.0)

    def test_empty_network(self):
        net = CollocationNetwork(sp.csr_matrix((3, 3), dtype=np.int64))
        assert modularity(net, np.zeros(3, dtype=np.int64)) == 0.0

    def test_label_shape_checked(self, small_net):
        with pytest.raises(AnalysisError):
            modularity(small_net, np.zeros(3))

    def test_detected_communities_have_positive_modularity(self, small_net):
        """The 800-person test world is dense (one tight town), so LPA
        finds coarse structure; modularity must still be positive."""
        labels = label_propagation(small_net, seed=0)
        assert modularity(small_net, labels) > 0.02


class TestSizes:
    def test_descending(self):
        sizes = community_sizes(np.array([0, 0, 0, 1, 2, 2]))
        assert sizes.tolist() == [3, 2, 1]
