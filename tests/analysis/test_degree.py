"""Tests for degree distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.degree import degree_distribution, log_binned
from repro.errors import AnalysisError


class TestDistribution:
    def test_counts_and_isolated(self):
        d = degree_distribution(np.array([0, 0, 1, 1, 1, 3, 7]))
        assert d.n_vertices == 7
        assert d.n_isolated == 2
        assert d.degrees.tolist() == [1, 3, 7]
        assert d.counts.tolist() == [3, 1, 1]

    def test_fractions_sum_to_one(self):
        d = degree_distribution(np.array([1, 2, 2, 5]))
        assert d.fractions.sum() == pytest.approx(1.0)

    def test_mean_and_max(self):
        d = degree_distribution(np.array([2, 4, 6]))
        assert d.mean_degree == pytest.approx(4.0)
        assert d.max_degree == 6

    def test_head_count(self):
        d = degree_distribution(np.array([1, 1, 2, 7, 9]))
        head = d.head_count(7)
        assert head.tolist() == [2, 1, 0, 0, 0, 0, 1]

    def test_empty_distribution(self):
        d = degree_distribution(np.zeros(5, dtype=int))
        assert len(d.degrees) == 0
        assert d.mean_degree == 0.0
        assert d.max_degree == 0

    def test_rejects_negative(self):
        with pytest.raises(AnalysisError):
            degree_distribution(np.array([-1, 2]))

    def test_rejects_2d(self):
        with pytest.raises(AnalysisError):
            degree_distribution(np.zeros((2, 2)))

    def test_flatness_flat_region(self):
        d = degree_distribution(
            np.concatenate([np.full(10, k) for k in range(1, 6)])
        )
        assert d.flatness(1, 5) == pytest.approx(1.0)

    def test_flatness_missing_degree_is_inf(self):
        d = degree_distribution(np.array([1, 5]))
        assert d.flatness(1, 5) == float("inf")

    def test_degree_sum_is_twice_edges(self, small_net):
        """Handshake lemma on the real network."""
        degrees = small_net.degrees()
        assert degrees.sum() == 2 * small_net.n_edges


class TestLogBinning:
    def test_preserves_total_mass_roughly(self):
        rng = np.random.default_rng(0)
        degrees = rng.zipf(2.0, 5000)
        degrees = degrees[degrees < 10_000]
        d = degree_distribution(degrees)
        centers, density = log_binned(d)
        assert len(centers) == len(density)
        assert (density > 0).all()
        assert centers[0] >= 1

    def test_empty(self):
        d = degree_distribution(np.zeros(3, dtype=int))
        centers, density = log_binned(d)
        assert len(centers) == 0

    def test_monotone_centers(self, small_net):
        d = degree_distribution(small_net.degrees())
        centers, _ = log_binned(d)
        assert (np.diff(centers) > 0).all()
