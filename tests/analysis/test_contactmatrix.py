"""Tests for age-group contact matrices."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.contactmatrix import contact_matrix
from repro.config import age_group_labels
from repro.core import CollocationNetwork
from repro.errors import AnalysisError
from repro.synthpop.person import NO_PLACE, PersonTable


def tiny_world(ages, edges, weights=None):
    n = len(ages)
    persons = PersonTable(
        age=np.array(ages, dtype=np.uint8),
        household=np.zeros(n, dtype=np.uint32),
        school=np.full(n, NO_PLACE, dtype=np.uint32),
        workplace=np.full(n, NO_PLACE, dtype=np.uint32),
        favorites=np.zeros((n, 1), dtype=np.uint32),
    )
    rows = [min(e) for e in edges]
    cols = [max(e) for e in edges]
    data = weights or [1] * len(edges)
    net = CollocationNetwork(
        sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    )
    return net, persons


class TestExactCounts:
    def test_cross_group_edge(self):
        # a child (age 8) and an adult (age 30) connected for 5 hours
        net, persons = tiny_world([8, 30], [(0, 1)], weights=[5])
        cm = contact_matrix(net, persons)
        child, adult = 0, 2  # group indices for 0-14 and 19-44
        assert cm.total_contacts[child, adult] == 1
        assert cm.total_contacts[adult, child] == 1
        assert cm.total_hours[child, adult] == 5
        assert cm.total_contacts[child, child] == 0

    def test_within_group_edge_counted_from_both_ends(self):
        net, persons = tiny_world([8, 9], [(0, 1)])
        cm = contact_matrix(net, persons)
        assert cm.total_contacts[0, 0] == 2  # both endpoints in group 0

    def test_mean_contacts_normalization(self):
        # two children, one adult; each child linked to the adult
        net, persons = tiny_world([8, 9, 40], [(0, 2), (1, 2)])
        cm = contact_matrix(net, persons)
        mc = cm.mean_contacts()
        child, adult = 0, 2
        assert mc[child, adult] == pytest.approx(1.0)  # each child: 1 adult
        assert mc[adult, child] == pytest.approx(2.0)  # the adult: 2 kids


class TestInvariants:
    def test_reciprocity_on_real_network(self, small_net, small_pop):
        cm = contact_matrix(small_net, small_pop.persons)
        assert (cm.total_contacts == cm.total_contacts.T).all()
        assert (cm.total_hours == cm.total_hours.T).all()

    def test_totals_match_network(self, small_net, small_pop):
        cm = contact_matrix(small_net, small_pop.persons)
        assert cm.total_contacts.sum() == 2 * small_net.n_edges
        assert cm.total_hours.sum() == 2 * small_net.total_weight
        assert cm.group_sizes.sum() == small_pop.n_persons

    def test_labels_ordered(self, small_net, small_pop):
        cm = contact_matrix(small_net, small_pop.persons)
        assert cm.labels == age_group_labels()

    def test_population_mismatch(self, small_net):
        _, persons = tiny_world([5, 6], [(0, 1)])
        with pytest.raises(AnalysisError):
            contact_matrix(small_net, persons)


class TestStructure:
    def test_children_mix_mostly_with_children(self, small_net, small_pop):
        """School compartments make the 0-14 group strongly assortative —
        the Figure 5 story seen through the mixing matrix."""
        cm = contact_matrix(small_net, small_pop.persons)
        frac = cm.assortativity_fraction()
        kids = frac[0]
        assert kids > 0.4
        # children keep more contacts within-group than seniors do
        assert kids > frac[4]

    def test_report_renders(self, small_net, small_pop):
        text = contact_matrix(small_net, small_pop.persons).report()
        assert "0-14" in text and "within-group" in text
