"""Tests for distribution fitting: recover known synthetic laws."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.degree import DegreeDistribution, degree_distribution
from repro.analysis.fits import (
    compare_fits,
    fit_exponential,
    fit_power_law,
    fit_truncated_power_law,
    power_law_mle,
)
from repro.errors import FitError


def synthetic_dist(law, k_max=500, **params):
    """Exact count distribution following a known law."""
    k = np.arange(1, k_max + 1, dtype=np.float64)
    if law == "power":
        p = k ** -params["a"]
    elif law == "trunc":
        p = k ** -params["a"] * np.exp(-k / params["kc"])
    elif law == "exp":
        p = np.exp(-k / params["kc"])
    counts = np.round(p / p.max() * 1e6).astype(np.int64)
    keep = counts > 0
    return DegreeDistribution(
        degrees=k[keep].astype(np.int64),
        counts=counts[keep],
        n_vertices=int(counts.sum()),
        n_isolated=0,
    )


class TestPowerLaw:
    def test_recovers_exponent(self):
        d = synthetic_dist("power", a=1.5)
        fit = fit_power_law(d)
        assert fit.params["a"] == pytest.approx(1.5, abs=0.05)
        assert fit.rms_log_error < 0.05

    def test_paper_reference_exponent_in_range(self):
        """Paper: scale-free networks have a typically between 1 and 3."""
        d = synthetic_dist("power", a=2.5)
        assert 1.0 < fit_power_law(d).params["a"] < 3.0

    def test_mle_close_to_true(self):
        """The CSN continuous approximation is accurate for k_min >= ~5
        (and visibly biased at k_min = 1, which we also pin down)."""
        rng = np.random.default_rng(0)
        degrees = rng.zipf(2.2, 100_000)
        assert power_law_mle(degrees, k_min=5) == pytest.approx(2.2, abs=0.1)
        assert power_law_mle(degrees, k_min=1) == pytest.approx(1.9, abs=0.1)

    def test_mle_too_few_points(self):
        with pytest.raises(FitError):
            power_law_mle(np.array([3]))

    def test_fit_needs_support(self):
        d = degree_distribution(np.array([2, 2]))
        with pytest.raises(FitError):
            fit_power_law(d)


class TestTruncatedPowerLaw:
    def test_recovers_both_params(self):
        d = synthetic_dist("trunc", a=1.25, kc=100.0)
        fit = fit_truncated_power_law(d)
        assert fit.params["a"] == pytest.approx(1.25, abs=0.1)
        assert fit.params["kc"] == pytest.approx(100.0, rel=0.15)
        assert fit.rms_log_error < 0.05

    def test_beats_pure_power_law_on_truncated_data(self):
        """Figure 3's qualitative ranking on rolled-off data."""
        d = synthetic_dist("trunc", a=1.25, kc=80.0)
        trunc = fit_truncated_power_law(d)
        pure = fit_power_law(d)
        assert trunc.rms_log_error < pure.rms_log_error

    def test_degenerate_tail_falls_back(self):
        """Exponentially growing data yields kc = inf (no decay term)."""
        k = np.arange(1, 50)
        counts = np.exp(k / 10.0).astype(np.int64) + 1  # growing tail
        d = DegreeDistribution(
            degrees=k.astype(np.int64), counts=counts,
            n_vertices=int(counts.sum()), n_isolated=0,
        )
        fit = fit_truncated_power_law(d)
        assert fit.params["kc"] == np.inf
        pred = fit.predict(np.array([5.0]))
        assert np.isfinite(pred).all()


class TestExponential:
    def test_recovers_scale(self):
        d = synthetic_dist("exp", kc=50.0)
        fit = fit_exponential(d)
        assert fit.params["kc"] == pytest.approx(50.0, rel=0.1)
        assert fit.rms_log_error < 0.05

    def test_exponential_beats_power_law_on_exp_data(self):
        d = synthetic_dist("exp", kc=40.0)
        assert (
            fit_exponential(d).rms_log_error
            < fit_power_law(d).rms_log_error
        )


class TestCompare:
    def test_all_three_forms(self, small_net):
        d = degree_distribution(small_net.degrees())
        fits = compare_fits(d)
        assert set(fits) == {"power_law", "truncated_power_law", "exponential"}
        for fit in fits.values():
            assert np.isfinite(fit.rms_log_error)
            assert fit.n_points == len(d.degrees)

    def test_predict_positive(self, small_net):
        d = degree_distribution(small_net.degrees())
        for fit in compare_fits(d).values():
            pred = fit.predict(d.degrees.astype(float))
            assert (pred > 0).all()

    def test_tail_error_finite(self, small_net):
        d = degree_distribution(small_net.degrees())
        for fit in compare_fits(d).values():
            assert np.isfinite(fit.tail_error(d))
