"""Tests for the local clustering coefficient (networkx cross-check)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.clustering import (
    clustering_histogram,
    local_clustering,
    mean_clustering,
)
from repro.core import CollocationNetwork


def net_from_edges(edges, n):
    rows, cols, data = [], [], []
    for i, j in edges:
        a, b = min(i, j), max(i, j)
        rows.append(a)
        cols.append(b)
        data.append(1)
    return CollocationNetwork(
        sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    )


class TestKnownGraphs:
    def test_triangle_is_fully_clustered(self):
        net = net_from_edges([(0, 1), (1, 2), (0, 2)], 3)
        assert local_clustering(net).tolist() == [1.0, 1.0, 1.0]

    def test_star_has_zero_clustering(self):
        net = net_from_edges([(0, 1), (0, 2), (0, 3)], 4)
        cc = local_clustering(net)
        assert cc[0] == 0.0  # hub's neighbors unconnected
        assert (cc[1:] == 0.0).all()  # leaves have degree 1

    def test_triangle_plus_pendant(self):
        net = net_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)], 4)
        cc = local_clustering(net)
        assert cc[0] == 1.0
        assert cc[2] == pytest.approx(1 / 3)
        assert cc[3] == 0.0

    def test_weights_ignored(self):
        """Clustering is a topology measure; edge weights must not matter."""
        a = net_from_edges([(0, 1), (1, 2), (0, 2)], 3)
        heavy = CollocationNetwork(a.adjacency * 100)
        assert (local_clustering(a) == local_clustering(heavy)).all()


class TestNetworkxCrossCheck:
    def test_matches_networkx_on_real_network(self, small_net):
        mine = local_clustering(small_net)
        g = small_net.to_networkx()
        theirs = nx.clustering(g)
        for v in range(0, small_net.n_persons, 13):
            assert mine[v] == pytest.approx(theirs[v], abs=1e-12)

    def test_batched_rows_match_unbatched(self, small_net):
        a = local_clustering(small_net, batch_rows=50)
        b = local_clustering(small_net, batch_rows=10**6)
        assert (a == b).all()


class TestHistogram:
    def test_bin_structure(self):
        cc = np.array([0.0, 0.5, 1.0, 1.0])
        edges, counts = clustering_histogram(cc, n_bins=4)
        assert len(edges) == 5
        assert counts.sum() == 4
        assert counts[-1] == 2  # both 1.0s in the top bin

    def test_degree_filter_excludes_undefined(self):
        cc = np.array([0.0, 0.0, 1.0])
        degrees = np.array([1, 0, 5])
        _, counts = clustering_histogram(cc, degrees=degrees)
        assert counts.sum() == 1

    def test_paper_spike_at_one(self, small_net):
        """Figure 4: a visible population of fully-clustered vertices."""
        cc = local_clustering(small_net)
        deg = small_net.degrees()
        _, counts = clustering_histogram(cc, n_bins=20, degrees=deg)
        assert counts[-1] > 0

    def test_mean_clustering(self):
        cc = np.array([1.0, 0.0, 0.5])
        assert mean_clustering(cc) == pytest.approx(0.5)
        assert mean_clustering(cc, degrees=np.array([3, 1, 3])) == pytest.approx(0.75)
        assert mean_clustering(np.array([])) == 0.0
