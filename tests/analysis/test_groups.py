"""Tests for within-age-group subnetworks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.groups import (
    age_group_degree_distributions,
    group_members,
    within_group_network,
)
from repro.config import age_group_labels
from repro.errors import AnalysisError


class TestGroupMembers:
    def test_members_have_right_ages(self, small_pop):
        kids = group_members(small_pop.persons, 0)
        assert (small_pop.persons.age[kids] <= 14).all()
        seniors = group_members(small_pop.persons, 4)
        assert (small_pop.persons.age[seniors] >= 65).all()

    def test_groups_partition_population(self, small_pop):
        total = sum(
            len(group_members(small_pop.persons, g)) for g in range(5)
        )
        assert total == small_pop.n_persons

    def test_invalid_group(self, small_pop):
        with pytest.raises(AnalysisError):
            group_members(small_pop.persons, 9)


class TestWithinGroup:
    def test_cross_group_edges_removed(self, small_net, small_pop):
        """A within-group degree can never exceed the full-network degree,
        and group degrees exclude cross-group neighbors."""
        kids = group_members(small_pop.persons, 0)
        sub, members = within_group_network(small_net, kids)
        full_deg = small_net.degrees()
        sub_deg = np.diff(sub.indptr)
        assert (sub_deg <= full_deg[members]).all()

    def test_within_edges_preserved(self, small_net, small_pop):
        """An edge between two group members must survive."""
        kids = group_members(small_net and small_pop.persons, 0)
        kid_set = set(kids.tolist())
        sub, members = within_group_network(small_net, kids)
        index_of = {int(p): i for i, p in enumerate(members)}
        sym = small_net.symmetric()
        checked = 0
        for p in kids[:50]:
            for q in small_net.neighbors(int(p)):
                if int(q) in kid_set:
                    assert (
                        sub[index_of[int(p)], index_of[int(q)]]
                        == sym[int(p), int(q)]
                    )
                    checked += 1
        assert checked > 0


class TestFigure5:
    def test_all_groups_present(self, small_net, small_pop):
        dists = age_group_degree_distributions(small_net, small_pop.persons)
        assert list(dists) == age_group_labels()

    def test_group_sizes_match_population(self, small_net, small_pop):
        dists = age_group_degree_distributions(small_net, small_pop.persons)
        groups = small_pop.persons.age_group()
        for index, label in enumerate(age_group_labels()):
            assert dists[label].n_vertices == int(
                np.count_nonzero(groups == index)
            )

    def test_children_connected_within_group(self, small_net, small_pop):
        """Schools connect children to children: the 0-14 group has real
        within-group structure."""
        dists = age_group_degree_distributions(small_net, small_pop.persons)
        kids = dists["0-14"]
        assert kids.mean_degree > 2.0

    def test_population_mismatch_rejected(self, small_net, small_pop):
        import repro

        other = repro.generate_population(
            repro.ScaleConfig(n_persons=50, seed=1)
        )
        with pytest.raises(AnalysisError):
            age_group_degree_distributions(small_net, other.persons)
