"""Tests for ego-network extraction (networkx cross-check)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.ego import ego_network, sample_ego_networks
from repro.core import CollocationNetwork
from repro.errors import AnalysisError


@pytest.fixture()
def path_net():
    """A path 0-1-2-3-4."""
    rows = [0, 1, 2, 3]
    cols = [1, 2, 3, 4]
    return CollocationNetwork(
        sp.coo_matrix(([1] * 4, (rows, cols)), shape=(5, 5)).tocsr()
    )


class TestRadius:
    def test_radius_zero_is_just_center(self, path_net):
        ego = ego_network(path_net, 2, radius=0)
        assert ego.persons.tolist() == [2]
        assert ego.n_edges == 0

    def test_radius_one(self, path_net):
        ego = ego_network(path_net, 2, radius=1)
        assert ego.persons.tolist() == [1, 2, 3]
        assert ego.n_edges == 2

    def test_radius_two_covers_path(self, path_net):
        ego = ego_network(path_net, 2, radius=2)
        assert ego.persons.tolist() == [0, 1, 2, 3, 4]
        assert ego.n_edges == 4

    def test_negative_radius(self, path_net):
        with pytest.raises(AnalysisError):
            ego_network(path_net, 0, radius=-1)

    def test_center_out_of_range(self, path_net):
        with pytest.raises(AnalysisError):
            ego_network(path_net, 99)

    def test_isolated_center(self):
        net = CollocationNetwork(sp.csr_matrix((4, 4), dtype=np.int64))
        ego = ego_network(net, 1, radius=2)
        assert ego.n_nodes == 1


class TestInducedSubgraph:
    def test_edges_between_frontier_nodes_kept(self):
        """V = V1 ∪ V2 keeps *all* edges inside V (paper Section V.A),
        including edges between two radius-2 vertices."""
        # center 0 - 1 - 2, 1 - 3, and an edge 2-3 between the two
        # radius-2 vertices
        edges = [(0, 1), (1, 2), (1, 3), (2, 3)]
        rows = [min(e) for e in edges]
        cols = [max(e) for e in edges]
        net = CollocationNetwork(
            sp.coo_matrix(([1] * 4, (rows, cols)), shape=(4, 4)).tocsr()
        )
        ego = ego_network(net, 0, radius=2)
        assert ego.n_nodes == 4
        assert ego.n_edges == 4  # 2-3 preserved

    def test_matches_networkx_ego_graph(self, small_net, rng):
        g = small_net.to_networkx()
        degrees = small_net.degrees()
        for person in rng.choice(
            np.flatnonzero(degrees > 0), size=5, replace=False
        ):
            ego = ego_network(small_net, int(person), radius=2)
            theirs = nx.ego_graph(g, int(person), radius=2)
            assert ego.n_nodes == theirs.number_of_nodes()
            assert ego.n_edges == theirs.number_of_edges()
            assert set(int(p) for p in ego.persons) == set(theirs.nodes())

    def test_weights_preserved(self, small_net):
        degrees = small_net.degrees()
        person = int(np.argmax(degrees))
        ego = ego_network(small_net, person, radius=1)
        local = ego.center_local
        for j_local in np.flatnonzero(ego.matrix[local].toarray().ravel())[:10]:
            j = int(ego.persons[j_local])
            assert ego.matrix[local, j_local] == small_net.edge_weight(person, j)

    def test_to_networkx_labels_are_global(self, small_net):
        degrees = small_net.degrees()
        person = int(np.argmax(degrees))
        ego = ego_network(small_net, person, radius=1)
        g = ego.to_networkx()
        assert person in g.nodes


class TestSampling:
    def test_sample_count_and_reproducibility(self, small_net):
        a = sample_ego_networks(
            small_net, 3, np.random.default_rng(5), radius=1
        )
        b = sample_ego_networks(
            small_net, 3, np.random.default_rng(5), radius=1
        )
        assert [e.center for e in a] == [e.center for e in b]
        assert len(a) == 3

    def test_min_degree_respected(self, small_net):
        egos = sample_ego_networks(
            small_net, 5, np.random.default_rng(1), radius=1, min_degree=10
        )
        degrees = small_net.degrees()
        assert all(degrees[e.center] >= 10 for e in egos)

    def test_no_eligible_vertices(self):
        net = CollocationNetwork(sp.csr_matrix((3, 3), dtype=np.int64))
        with pytest.raises(AnalysisError):
            sample_ego_networks(net, 1, np.random.default_rng(0))

    def test_density_definition(self, path_net):
        ego = ego_network(path_net, 2, radius=1)  # 3 nodes, 2 edges
        assert ego.density() == pytest.approx(2 / 3)
