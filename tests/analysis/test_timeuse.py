"""Tests for time-use tables and the new degree/fit utilities."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis import degree_distribution
from repro.analysis.fits import bootstrap_exponent_ci
from repro.analysis.timeuse import time_use_table
from repro.errors import AnalysisError, FitError
from repro.synthpop.schedule import Activity


class TestTimeUse:
    @pytest.fixture(scope="class")
    def table(self, small_pop, week_result):
        return time_use_table(week_result.records, small_pop.persons)

    def test_total_hours_conserved(self, table, small_pop):
        assert table.hours.sum() == small_pop.n_persons * repro.HOURS_PER_WEEK

    def test_group_sizes(self, table, small_pop):
        assert table.group_sizes.sum() == small_pop.n_persons

    def test_home_dominates_everywhere(self, table):
        shares = table.shares()
        home = shares[:, int(Activity.AT_HOME)]
        assert (home > 0.5).all()  # nights alone guarantee the majority

    def test_children_school_hours(self, table):
        shares = table.shares()
        school = shares[:, int(Activity.AT_SCHOOL)]
        # 0-14 and 15-18 have school time; 45-64 and 65+ effectively none
        assert school[0] > 0.05 and school[1] > 0.05
        assert school[3] < 0.01 and school[4] < 0.01

    def test_adults_work_hours(self, table):
        shares = table.shares()
        work = shares[:, int(Activity.AT_WORK)]
        assert work[2] > 0.1  # 19-44
        assert work[2] > work[0]  # more than children (who don't work)

    def test_weekly_hours_sane(self, table):
        weekly = table.hours_per_person_week(repro.HOURS_PER_WEEK)
        assert np.allclose(weekly.sum(axis=1), 7 * 24, atol=1e-6)

    def test_report_renders(self, table):
        text = table.report()
        assert "at_home" in text and "0-14" in text

    def test_bad_records(self, small_pop):
        with pytest.raises(AnalysisError):
            time_use_table(np.zeros(3, dtype=np.uint32), small_pop.persons)


class TestCcdf:
    def test_monotone_and_normalized(self, small_net):
        dist = degree_distribution(small_net.degrees())
        k, p = dist.ccdf()
        assert p[0] == pytest.approx(1.0)
        assert (np.diff(p) <= 1e-12).all()
        assert p[-1] > 0

    def test_exact_small_case(self):
        dist = degree_distribution(np.array([1, 1, 2, 5]))
        k, p = dist.ccdf()
        assert k.tolist() == [1, 2, 5]
        assert p.tolist() == [1.0, 0.5, 0.25]

    def test_empty(self):
        dist = degree_distribution(np.zeros(3, dtype=int))
        k, p = dist.ccdf()
        assert len(k) == 0


class TestBootstrapCI:
    def test_ci_contains_truth(self):
        rng = np.random.default_rng(1)
        degrees = rng.zipf(2.3, 30_000)
        a, lo, hi = bootstrap_exponent_ci(degrees, n_boot=80, k_min=5, seed=2)
        assert lo <= a <= hi
        assert lo <= 2.3 <= hi + 0.15  # generous: MLE approx bias

    def test_ci_narrows_with_sample_size(self):
        rng = np.random.default_rng(1)
        small = rng.zipf(2.3, 500)
        big = rng.zipf(2.3, 50_000)
        _, lo_s, hi_s = bootstrap_exponent_ci(small, n_boot=60, k_min=2)
        _, lo_b, hi_b = bootstrap_exponent_ci(big, n_boot=60, k_min=2)
        assert (hi_b - lo_b) < (hi_s - lo_s)

    def test_too_few(self):
        with pytest.raises(FitError):
            bootstrap_exponent_ci(np.array([3]))
