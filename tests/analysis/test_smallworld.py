"""Tests for path-length sampling and the small-world coefficient."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.smallworld import (
    sampled_path_lengths,
    small_world_sigma,
)
from repro.core import CollocationNetwork
from repro.errors import AnalysisError


def path_graph(n):
    rows = np.arange(n - 1)
    cols = rows + 1
    return CollocationNetwork(
        sp.coo_matrix((np.ones(n - 1, dtype=np.int64), (rows, cols)), shape=(n, n)).tocsr()
    )


class TestPathLengths:
    def test_path_graph_exact(self, rng):
        net = path_graph(10)
        stats = sampled_path_lengths(net, 10, rng)  # all sources
        # mean over all ordered pairs of a path P10: sum d(i,j)/(n(n-1))
        g = nx.path_graph(10)
        total = sum(
            d for src in g for d in dict(nx.shortest_path_length(g, src)).values()
        )
        expected = total / (10 * 9)
        assert stats.mean_length == pytest.approx(expected)
        assert stats.max_length == 9
        assert stats.reachable_fraction == pytest.approx(1.0)

    def test_disconnected_components_partial_reach(self, rng):
        # two disjoint edges
        adj = sp.coo_matrix(
            ([1, 1], ([0, 2], [1, 3])), shape=(4, 4)
        ).tocsr()
        net = CollocationNetwork(adj)
        stats = sampled_path_lengths(net, 4, rng)
        assert stats.mean_length == pytest.approx(1.0)
        assert stats.reachable_fraction < 1.0

    def test_empty_network_raises(self, rng):
        net = CollocationNetwork(sp.csr_matrix((4, 4), dtype=np.int64))
        with pytest.raises(AnalysisError):
            sampled_path_lengths(net, 2, rng)

    def test_matches_networkx_on_real_network(self, small_net):
        rng = np.random.default_rng(0)
        stats = sampled_path_lengths(small_net, 5, rng)
        # cross-check a single-source BFS exactly
        g = small_net.to_networkx()
        rng2 = np.random.default_rng(0)
        degrees = small_net.degrees()
        eligible = np.flatnonzero(degrees > 0)
        sources = rng2.choice(eligible, size=5, replace=False)
        total, count = 0, 0
        for s in sources:
            for d in nx.single_source_shortest_path_length(g, int(s)).values():
                if d > 0:
                    total += d
                    count += 1
        assert stats.mean_length == pytest.approx(total / count)


class TestSmallWorldSigma:
    def test_collocation_network_is_small_world(self, small_net):
        """The paper's framing: high clustering + short paths vs random."""
        result = small_world_sigma(small_net, n_sources=10, seed=0)
        assert result["sigma"] > 2.0
        assert result["C"] > result["C_rand"]
        # urban collocation: a handful of hops spans the city
        assert result["L"] < 6.0

    def test_random_graph_sigma_near_one(self, rng):
        from repro.netgen import erdos_renyi

        net = erdos_renyi(800, 4_000, rng)
        result = small_world_sigma(net, n_sources=10, seed=1)
        assert result["sigma"] < 3.0
