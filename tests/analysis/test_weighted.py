"""Tests for weighted statistics and assortativity."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import local_clustering
from repro.analysis.weighted import (
    degree_assortativity,
    edge_weight_distribution,
    strength_distribution,
    weighted_clustering,
)
from repro.core import CollocationNetwork
from repro.errors import AnalysisError


def net_from(rows, cols, data, n):
    return CollocationNetwork(
        sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    )


class TestStrength:
    def test_strength_counts_hours(self):
        net = net_from([0, 1], [1, 2], [5, 3], 3)
        d = strength_distribution(net)
        # strengths: 5, 8, 3
        assert set(zip(d.degrees.tolist(), d.counts.tolist())) == {
            (3, 1), (5, 1), (8, 1),
        }

    def test_strength_exceeds_degree_on_real_network(self, small_net):
        s = strength_distribution(small_net)
        assert s.mean_degree > 2 * small_net.degrees().mean()


class TestEdgeWeights:
    def test_distribution(self):
        net = net_from([0, 1, 0], [1, 2, 2], [5, 5, 1], 3)
        weights, counts = edge_weight_distribution(net)
        assert weights.tolist() == [1, 5]
        assert counts.tolist() == [1, 2]

    def test_empty(self):
        net = CollocationNetwork(sp.csr_matrix((3, 3), dtype=np.int64))
        weights, counts = edge_weight_distribution(net)
        assert len(weights) == 0

    def test_real_network_one_hour_contacts_dominate(self, small_net):
        """Most collocated pairs are brief venue contacts; households sit
        in the heavy tail near the full week of shared home hours."""
        weights, counts = edge_weight_distribution(small_net)
        assert weights[np.argmax(counts)] <= 3
        assert weights.max() >= 50  # household co-residents


class TestWeightedClustering:
    def test_reduces_to_binary_on_unit_weights(self, small_net):
        adj = small_net.adjacency.copy()
        adj.data = np.ones_like(adj.data)
        unit = CollocationNetwork(adj)
        assert np.allclose(
            weighted_clustering(unit), local_clustering(unit), atol=1e-12
        )

    def test_matches_networkx_barrat_on_triangle(self):
        # triangle with distinct weights + a pendant
        net = net_from([0, 1, 0, 2], [1, 2, 2, 3], [4, 2, 6, 1], 4)
        mine = weighted_clustering(net)
        # Barrat for vertex 0: (w01 + w02)/2 summed over ordered pairs /
        # (s_0 (k_0 - 1)) = 2*((4+6)/2) / (10 * 1) = 1.0 (its one triangle)
        assert mine[0] == pytest.approx(1.0)
        # vertex 2: neighbors 0,1,3; one triangle (0,1)
        s2, k2 = 2 + 6 + 1, 3
        expected2 = 2 * ((6 + 2) / 2) / (s2 * (k2 - 1))
        assert mine[2] == pytest.approx(expected2)
        assert mine[3] == 0.0

    def test_bounded(self, small_net):
        cc = weighted_clustering(small_net)
        assert cc.min() >= 0.0 and cc.max() <= 1.0

    def test_batching_invariant(self, small_net):
        a = weighted_clustering(small_net, batch_rows=64)
        b = weighted_clustering(small_net, batch_rows=10**6)
        assert np.allclose(a, b)


class TestAssortativity:
    def test_matches_networkx(self, small_net):
        mine = degree_assortativity(small_net)
        theirs = nx.degree_assortativity_coefficient(small_net.to_networkx())
        assert mine == pytest.approx(theirs, abs=1e-9)

    def test_star_is_disassortative(self):
        net = net_from([0, 0, 0], [1, 2, 3], [1, 1, 1], 4)
        assert degree_assortativity(net) < 0

    def test_collocation_network_assortative(self, small_net):
        """Social networks mix assortatively; the collocation network's
        cliquish cores should give r > 0."""
        assert degree_assortativity(small_net) > 0.05

    def test_empty_raises(self):
        net = CollocationNetwork(sp.csr_matrix((3, 3), dtype=np.int64))
        with pytest.raises(AnalysisError):
            degree_assortativity(net)
