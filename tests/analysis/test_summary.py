"""Tests for whole-network summaries."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.analysis import summarize
from repro.core import CollocationNetwork


class TestSummary:
    def test_counts_on_known_graph(self):
        # two components: triangle {0,1,2} and edge {3,4}; 5 isolated: node 5
        edges = [(0, 1, 2), (1, 2, 3), (0, 2, 1), (3, 4, 10)]
        rows = [e[0] for e in edges]
        cols = [e[1] for e in edges]
        data = [e[2] for e in edges]
        net = CollocationNetwork(
            sp.coo_matrix((data, (rows, cols)), shape=(6, 6)).tocsr()
        )
        s = summarize(net)
        assert s.n_vertices == 6
        assert s.n_edges == 4
        assert s.total_weight == 16
        assert s.n_isolated == 1
        assert s.n_components == 3
        assert s.giant_component_size == 3
        assert s.max_degree == 2

    def test_real_network_consistency(self, small_net):
        s = summarize(small_net)
        assert s.n_vertices == small_net.n_persons
        assert s.n_edges == small_net.n_edges
        assert s.mean_degree == 2 * s.n_edges / s.n_vertices
        assert 0 < s.giant_component_fraction <= 1.0
        assert s.memory_bytes > 0
        assert s.edges_per_person == s.n_edges / s.n_vertices

    def test_giant_component_dominates_real_network(self, small_net):
        """An urban collocation week is essentially one connected city."""
        s = summarize(small_net)
        assert s.giant_component_fraction > 0.9

    def test_report_renders(self, small_net):
        report = summarize(small_net).report()
        assert "vertices" in report
        assert "edges" in report
        assert "giant component" in report

    def test_empty_network(self):
        net = CollocationNetwork(sp.csr_matrix((4, 4), dtype=np.int64))
        s = summarize(net)
        assert s.n_edges == 0
        assert s.n_isolated == 4
        assert s.mean_degree == 0.0
