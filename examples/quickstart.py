#!/usr/bin/env python
"""Quickstart: population → simulation → collocation network → analysis.

The end-to-end pipeline of the paper at laptop scale:

1. generate a synthetic Chicago-like population;
2. simulate one week of hourly activities (the chiSIM-style model);
3. synthesize the person collocation network from the event records;
4. print the paper's headline statistics and an ASCII Figure 3.

Run:  python examples/quickstart.py [n_persons]
"""

from __future__ import annotations

import sys

import repro
from repro.analysis import compare_fits
from repro.viz import ascii_loglog


def main() -> None:
    n_persons = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    print(f"=== generating population of {n_persons:,} persons ===")
    pop = repro.generate_population(repro.ScaleConfig(n_persons=n_persons))
    for key, value in pop.summary().items():
        print(f"  {key:>20}: {value}")

    print("\n=== simulating one week (168 hourly ticks) ===")
    config = repro.SimulationConfig(
        scale=pop.scale, duration_hours=repro.HOURS_PER_WEEK
    )
    result = repro.Simulation(pop, config).run_fast()
    print(f"  events logged        : {result.n_events:,}")
    print(
        f"  events/person/day    : "
        f"{result.events_per_person_day(pop.n_persons):.2f} "
        f"(paper sizing figure: ~5)"
    )
    print(f"  log bytes (20 B/rec) : {result.n_events * 20:,}")

    print("\n=== synthesizing the collocation network ===")
    net, report = repro.synthesize_network(
        result.records, pop.n_persons, 0, repro.HOURS_PER_WEEK
    )
    print(report.summary())

    print("\n=== network statistics (paper Section V) ===")
    print(repro.summarize(net).report())

    print("\n=== Figure 3: degree distribution + fits ===")
    dist = repro.degree_distribution(net.degrees())
    fits = compare_fits(dist)
    for name, fit in fits.items():
        print(f"  {name:>22}: {fit!r} tail_rms={fit.tail_error(dist):.3f}")
    k = dist.degrees.astype(float)
    overlays = [
        (k, fits["power_law"].predict(k) * dist.counts.sum(), "."),
        (k, fits["truncated_power_law"].predict(k) * dist.counts.sum(), "+"),
    ]
    print(
        ascii_loglog(
            dist.degrees,
            dist.counts,
            title="vertex degree (o = data, . = power law, + = truncated PL)",
            overlays=overlays,
        )
    )


if __name__ == "__main__":
    main()
