#!/usr/bin/env python
"""Intervention study: how schedule changes reshape the endogenous network
and an epidemic running on it.

The paper's headline is that the collocation network is *emergent* — "the
actual network structure is an emergent property of the activity data".
This example makes that concrete by perturbing the activity data and
watching both the network and an SEIR outbreak respond:

* baseline — normal schedules;
* school closure — all school attendance redirected home;
* venue closure — all "other" places (shops, leisure) closed;
* stay-home order — 60% of the population fully home.

For each scenario it reports the network's edge count, the 0-14 group's
within-group mean degree (Figure 5's quantity), and the epidemic's attack
rate and peak.

Run:  python examples/intervention_study.py [n_persons]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.analysis import age_group_degree_distributions, contact_matrix
from repro.sim import (
    ClosePlaceKind,
    CloseSchools,
    InterventionSchedule,
    PrevalenceObserver,
    Simulation,
    StayHomeOrder,
)
from repro.synthpop.places import PlaceKind


def run_scenario(pop, name, interventions, beta=0.03):
    base = pop.schedule_generator()
    schedules = (
        InterventionSchedule(base, interventions) if interventions else base
    )

    # network for one week
    net_cfg = repro.SimulationConfig(
        scale=pop.scale, duration_hours=repro.HOURS_PER_WEEK
    )
    records = Simulation(pop, net_cfg, schedules=schedules).run_fast().records
    net, _ = repro.synthesize_network(
        records, pop.n_persons, 0, repro.HOURS_PER_WEEK
    )
    kids = age_group_degree_distributions(net, pop.persons)["0-14"]

    # two-week epidemic on the same schedules
    epi_cfg = repro.SimulationConfig(
        scale=pop.scale,
        duration_hours=2 * repro.HOURS_PER_WEEK,
        disease=repro.DiseaseConfig(transmissibility=beta, initial_infected=5),
    )
    observer = PrevalenceObserver()
    epi_schedules = (
        InterventionSchedule(pop.schedule_generator(), interventions)
        if interventions
        else pop.schedule_generator()
    )
    result = Simulation(pop, epi_cfg, schedules=epi_schedules).run(
        observers=[observer]
    )
    disease = result.disease
    assert disease is not None
    peak_hour, peak = observer.peak_infectious()
    return {
        "name": name,
        "edges": net.n_edges,
        "kids_mean_degree": kids.mean_degree,
        "attack_rate": disease.attack_rate(),
        "peak": peak,
        "peak_hour": peak_hour,
        "net": net,
    }


def main() -> None:
    n_persons = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    pop = repro.generate_population(repro.ScaleConfig(n_persons=n_persons))

    scenarios = [
        ("baseline", []),
        ("close schools", [CloseSchools()]),
        ("close venues", [ClosePlaceKind(pop.places, PlaceKind.OTHER)]),
        ("60% stay home", [StayHomeOrder(0.6, seed=1)]),
    ]
    print(
        f"{'scenario':>15} {'edges':>10} {'kids mean k':>12} "
        f"{'attack rate':>12} {'peak (hour)':>14}"
    )
    results = []
    for name, ivs in scenarios:
        r = run_scenario(pop, name, ivs)
        results.append(r)
        print(
            f"{r['name']:>15} {r['edges']:>10,} "
            f"{r['kids_mean_degree']:>12.1f} {r['attack_rate']:>12.1%} "
            f"{r['peak']:>7,} ({r['peak_hour']:>4})"
        )

    base = results[0]
    print("\nage-group mixing, baseline:")
    print(contact_matrix(base["net"], pop.persons).report())

    print("\nevery intervention must shrink the network and the outbreak:")
    for r in results[1:]:
        shrunk = r["edges"] < base["edges"]
        milder = r["attack_rate"] <= base["attack_rate"] + 0.02
        print(
            f"  {r['name']:>15}: edges {'-' if shrunk else '!'} "
            f"attack {'-' if milder else '!'}"
        )
        if not (shrunk and milder):
            raise SystemExit("intervention failed to reduce contact/spread")


if __name__ == "__main__":
    main()
