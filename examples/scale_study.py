#!/usr/bin/env python
"""Scale study: how the pipeline's cost grows with population size.

The paper's claim structure is about scalability — a 2.9 M-person city
simulated in minutes, synthesized in ~30-minute batches.  This script
measures the full pipeline (generate → simulate a week → synthesize →
analyze) across a population sweep and fits the empirical growth exponent
of each stage, so a user can extrapolate to their own target scale.

Run:  python examples/scale_study.py [max_persons]
"""

from __future__ import annotations

import sys
import time

import numpy as np

import repro
from repro._util import human_bytes
from repro.analysis import degree_distribution, local_clustering


def run_once(n_persons: int) -> dict[str, float]:
    timings: dict[str, float] = {}

    t0 = time.perf_counter()
    pop = repro.generate_population(repro.ScaleConfig(n_persons=n_persons))
    timings["generate"] = time.perf_counter() - t0

    config = repro.SimulationConfig(
        scale=pop.scale, duration_hours=repro.HOURS_PER_WEEK
    )
    t0 = time.perf_counter()
    result = repro.Simulation(pop, config).run_fast()
    timings["simulate"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    net, _ = repro.synthesize_network(
        result.records, n_persons, 0, repro.HOURS_PER_WEEK
    )
    timings["synthesize"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    degree_distribution(net.degrees())
    local_clustering(net)
    timings["analyze"] = time.perf_counter() - t0

    timings["total"] = sum(timings.values())
    timings["edges"] = net.n_edges
    timings["memory"] = net.memory_bytes
    return timings


def main() -> None:
    max_persons = int(sys.argv[1]) if len(sys.argv) > 1 else 16_000
    sizes = []
    n = 2_000
    while n <= max_persons:
        sizes.append(n)
        n *= 2

    stages = ["generate", "simulate", "synthesize", "analyze", "total"]
    results = {}
    header = f"{'persons':>9} " + "".join(f"{s:>12}" for s in stages)
    header += f"{'edges':>12}{'net memory':>12}"
    print(header)
    for size in sizes:
        r = run_once(size)
        results[size] = r
        row = f"{size:>9,} " + "".join(f"{r[s]:>11.2f}s" for s in stages)
        row += f"{int(r['edges']):>12,}{human_bytes(r['memory']):>12}"
        print(row)

    if len(sizes) >= 3:
        print("\nempirical growth exponents (t ~ n^e, log-log fit):")
        logn = np.log([float(s) for s in sizes])
        for stage in stages:
            logt = np.log([max(results[s][stage], 1e-4) for s in sizes])
            e = np.polyfit(logn, logt, 1)[0]
            verdict = (
                "~linear" if e < 1.3 else
                "superlinear" if e < 1.8 else "~quadratic"
            )
            print(f"  {stage:>11}: e = {e:.2f}  ({verdict})")
        print(
            "\nthe pipeline is designed O(records + edges); a growth "
            "exponent near 1 is what lets the paper reach 2.9 M persons."
        )


if __name__ == "__main__":
    main()
