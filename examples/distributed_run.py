#!/usr/bin/env python
"""Distributed simulation with parallel per-rank logging and synthesis.

Reproduces the paper's full parallel workflow (Sections II–IV):

1. partition places across ranks three ways — random, round-robin, and
   spatial (recursive coordinate bisection refined against the movement
   graph) — and compare agent-migration traffic, the quantity chiSIM's
   spatial partitioning minimizes;
2. run the model on a simulated 16-rank cluster with the best partition,
   each rank writing its own EVL log file (the paper's per-process
   logging architecture);
3. synthesize the collocation network from the log directory in
   independent file batches, like the paper's cluster jobs.

Run:  python examples/distributed_run.py [n_persons] [n_ranks]
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

import repro
from repro._util import human_bytes


def main() -> None:
    n_persons = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    n_ranks = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    pop = repro.generate_population(repro.ScaleConfig(n_persons=n_persons))
    config = repro.SimulationConfig(
        scale=pop.scale, duration_hours=repro.HOURS_PER_WEEK, n_ranks=n_ranks
    )

    print(f"=== partitioning {pop.n_places:,} places over {n_ranks} ranks ===")
    coords = pop.places.coords()
    weights = pop.places.capacity.astype(float)
    grid = pop.schedule_generator().week(0)
    movement = repro.movement_matrix(grid.place, pop.n_places)

    rng = np.random.default_rng(0)
    partitions = {
        "random": repro.random_partition(pop.n_places, n_ranks, rng),
        "round-robin": repro.PlacePartition(
            np.arange(pop.n_places) % n_ranks, n_ranks
        ),
        "spatial (RCB)": repro.spatial_partition(coords, weights, n_ranks),
    }
    partitions["spatial + refine"] = repro.refine_partition(
        partitions["spatial (RCB)"], movement, weights
    )
    for name, part in partitions.items():
        mig = repro.estimate_migration(part, movement)
        print(
            f"  {name:>18}: est. cross-rank moves/week = {mig:>9,}  "
            f"imbalance = {part.imbalance(weights):.3f}"
        )

    best = partitions["spatial + refine"]
    log_dir = tempfile.mkdtemp(prefix="chisim-logs-")
    print(f"\n=== distributed run on {n_ranks} simulated ranks ===")
    result = repro.DistributedSimulation(pop, config, best).run(log_dir=log_dir)
    print(f"  events              : {result.total_events:,}")
    print(f"  actual migrations   : {result.total_migrations:,}")
    print(f"  migration bytes     : {human_bytes(result.traffic.bytes_sent)}")
    print(f"  events per rank     : {result.events_per_rank()}")

    log_set = repro.LogSet(log_dir)
    print(f"\n=== per-rank logs in {log_dir} ===")
    print(f"  files               : {len(log_set)}")
    print(f"  total log size      : {human_bytes(log_set.total_bytes())}")
    print(f"  records             : {log_set.total_records():,}")

    print("\n=== batched synthesis from logs (batches of 4 files) ===")
    net, report = repro.synthesize_from_logs(
        log_set, pop.n_persons, 0, repro.HOURS_PER_WEEK, batch_size=4
    )
    print(report.summary())
    print()
    print(repro.summarize(net).report())


if __name__ == "__main__":
    main()
