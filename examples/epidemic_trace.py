#!/usr/bin/env python
"""Epidemic simulation + patient-zero contact tracing from the event log.

The paper's motivating use case for agent-level logging (Section II): "the
log can be used to reconstruct all the agents that an agent had contact
with over the course of an epidemic simulation, and used to trace back to
patient zero, the agent who initiated the disease outbreak."

This example:

1. runs a two-week SEIR outbreak on the synthetic population;
2. writes the event log to an EVL file, exactly as a production run would;
3. picks a late case and reconstructs their hourly contacts *from the log
   alone* (via ``events_to_grid``), confirming the true infector is among
   the reconstructed contacts at the infection hour;
4. walks the full transmission chain back to patient zero and checks every
   hop against the log.

Run:  python examples/epidemic_trace.py [n_persons]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.sim import PrevalenceObserver
from repro.sim.events import events_to_grid
from repro.viz import ascii_series


def contacts_at_hour(
    log_path: Path, n_persons: int, person: int, hour: int
) -> np.ndarray:
    """Reconstruct who shared a place with *person* at *hour*, from the log."""
    records = repro.LogReader(log_path).read_time_slice(hour, hour + 1)
    _, place = events_to_grid(records, n_persons, hour, hour + 1)
    here = place[person, 0]
    return np.flatnonzero(place[:, 0] == here)


def main() -> None:
    n_persons = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    pop = repro.generate_population(repro.ScaleConfig(n_persons=n_persons))
    config = repro.SimulationConfig(
        scale=pop.scale,
        duration_hours=2 * repro.HOURS_PER_WEEK,
        disease=repro.DiseaseConfig(
            transmissibility=0.01, initial_infected=3
        ),
    )
    log_path = Path(tempfile.mkdtemp()) / "rank_0000.evl"
    observer = PrevalenceObserver()
    print(f"=== simulating a 2-week outbreak over {n_persons:,} persons ===")
    result = repro.Simulation(pop, config).run(
        observers=[observer], log_path=log_path
    )
    disease = result.disease
    assert disease is not None
    print(f"  final state : {disease.counts()}")
    print(f"  attack rate : {disease.attack_rate():.1%}")
    peak_hour, peak = observer.peak_infectious()
    print(f"  peak        : {peak} infectious at hour {peak_hour}")
    print(ascii_series(
        np.array(observer.series["infectious"]), title="infectious over time"
    ))

    if not disease.transmissions:
        print("no transmissions occurred; try a higher transmissibility")
        return

    # pick the latest case and trace back
    case = disease.transmissions[-1].infected
    chain = disease.trace_to_patient_zero(case)
    print(f"\n=== tracing case {case} back to patient zero ===")
    for hop, rec in enumerate(chain):
        contacts = contacts_at_hour(
            log_path, n_persons, rec.infected, rec.hour
        )
        ok = rec.infector in contacts
        print(
            f"  hop {hop}: person {rec.infected} infected at hour "
            f"{rec.hour} (place {rec.place}) by person {rec.infector} "
            f"[{len(contacts)} collocated; log confirms infector: {ok}]"
        )
        if not ok:
            raise SystemExit("log reconstruction failed to confirm a hop")
    zero = chain[-1].infector
    print(
        f"  patient zero: person {zero} "
        f"(seed case: {zero in disease.patient_zeros})"
    )


if __name__ == "__main__":
    main()
