#!/usr/bin/env python
"""Ego-network extraction, ForceAtlas2 layout, and Gephi export.

The Figures 1–2 workflow: sample random individuals from the collocation
network, take everyone within two degrees of separation, lay the induced
subgraph out with ForceAtlas2, and export GEXF/GraphML files (nodes
colored by degree, darker = more neighbors) that open directly in Gephi.

The paper's two samples illustrate the range of local structure — one
dense (2,529 nodes / 391,104 edges), one diffuse (1,097 nodes / 41,372
edges); this script samples several egos and reports the same spread.

Run:  python examples/ego_visualization.py [n_persons] [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

import repro
from repro.analysis import sample_ego_networks
from repro.viz import write_gexf, write_graphml
from repro.viz.gexf import degree_colors


def main() -> None:
    n_persons = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    out_dir = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("ego_exports")
    out_dir.mkdir(parents=True, exist_ok=True)

    pop = repro.generate_population(repro.ScaleConfig(n_persons=n_persons))
    config = repro.SimulationConfig(
        scale=pop.scale, duration_hours=repro.HOURS_PER_WEEK
    )
    result = repro.Simulation(pop, config).run_fast()
    net, _ = repro.synthesize_network(
        result.records, pop.n_persons, 0, repro.HOURS_PER_WEEK
    )
    print(f"network: {net.n_edges:,} edges over {net.n_persons:,} persons")

    rng = np.random.default_rng(7)
    egos = sample_ego_networks(net, n_samples=5, rng=rng, radius=2)
    egos.sort(key=lambda e: e.density())
    print("\nsampled radius-2 ego networks (paper Figures 1-2):")
    for i, ego in enumerate(egos):
        print(
            f"  ego {i}: center={ego.center:>6}  nodes={ego.n_nodes:>6,}  "
            f"edges={ego.n_edges:>8,}  density={ego.density():.4f}"
        )

    # export the densest and the most diffuse, like the paper's two figures
    for tag, ego in (("fig1_dense", egos[-1]), ("fig2_diffuse", egos[0])):
        print(f"\nlaying out {tag} ({ego.n_nodes} nodes) with ForceAtlas2...")
        positions = repro.forceatlas2_layout(ego.matrix, iterations=80)
        colors = degree_colors(ego.degrees())
        gexf = write_gexf(
            out_dir / f"{tag}.gexf",
            ego.matrix,
            positions=positions,
            node_labels=ego.persons,
            node_colors=colors,
        )
        graphml = write_graphml(
            out_dir / f"{tag}.graphml",
            ego.matrix,
            node_attrs={
                "person": ego.persons,
                "degree": ego.degrees(),
                "age": pop.persons.age[ego.persons].astype(np.int64),
            },
        )
        print(f"  wrote {gexf} and {graphml} (open in Gephi)")


if __name__ == "__main__":
    main()
