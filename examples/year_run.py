#!/usr/bin/env python
"""Year-scale run: 52 weeks of simulation, streamed synthesis, monthly
aggregates.

The paper's production scenario is a one-year simulation whose logs reach
100-200 GB and whose analysis must proceed file-by-file, window-by-window.
This example runs the full year at laptop scale and exercises exactly that
discipline:

1. simulate 52 weeks, streaming the event log to one EVL file (bounded
   memory: the engine holds one week's schedule grid at a time);
2. synthesize 13 four-week ("monthly") networks via the chunk index —
   each window decodes only the chunks that overlap it;
3. sum the monthlies into the annual network (the paper's aggregation)
   and report the temporal statistics: seasonal edge counts, month-over-
   month persistence, and the recurring contact core.

Run:  python examples/year_run.py [n_persons]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro._util import human_bytes
from repro.core import StreamingSynthesizer
from repro.evlog import LogReader

WEEKS = 52
MONTH_HOURS = 4 * repro.HOURS_PER_WEEK  # 4-week "months"
N_MONTHS = 13


def main() -> None:
    n_persons = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    pop = repro.generate_population(repro.ScaleConfig(n_persons=n_persons))
    log_dir = Path(tempfile.mkdtemp(prefix="year-"))
    log_path = log_dir / "rank_0000.evl"

    print(f"=== simulating {WEEKS} weeks for {n_persons:,} persons ===")
    config = repro.SimulationConfig(
        scale=pop.scale, duration_hours=WEEKS * repro.HOURS_PER_WEEK
    )
    t0 = time.perf_counter()
    result = repro.Simulation(pop, config).run_fast(log_path=log_path)
    sim_time = time.perf_counter() - t0
    reader = LogReader(log_path)
    print(f"  wall time   : {sim_time:.1f} s")
    print(f"  events      : {result.n_events:,} "
          f"({result.events_per_person_day(n_persons):.2f}/person/day)")
    print(f"  log size    : {human_bytes(reader.file_bytes)} "
          f"in {reader.n_chunks} chunks")
    rate = result.n_events / (n_persons * WEEKS * 7)
    paper_year = 2_900_000 * rate * 365 * 20
    print(f"  paper-scale projection (2.9 M persons, 1 year): "
          f"{human_bytes(paper_year)}")

    print(f"\n=== streaming synthesis: {N_MONTHS} four-week aggregates ===")
    t0 = time.perf_counter()
    series = StreamingSynthesizer(
        n_persons, interval_hours=MONTH_HOURS
    ).process(str(log_dir), N_MONTHS)
    synth_time = time.perf_counter() - t0
    edges = series.interval_edge_counts()
    print(f"  wall time   : {synth_time:.1f} s "
          f"({synth_time / N_MONTHS:.2f} s per month)")
    print(f"  edges/month : min={edges.min():,} max={edges.max():,}")

    persistence = series.edge_persistence()
    weeks_met, pair_counts = series.edge_recurrence()
    annual = series.total()
    print(f"\n=== annual network ===")
    print(repro.summarize(annual).report())
    print(f"\n  month-over-month persistence: "
          f"mean={persistence.mean():.2f} "
          f"(min={persistence.min():.2f}, max={persistence.max():.2f})")
    core = pair_counts[weeks_met >= N_MONTHS - 1].sum()
    once = pair_counts[weeks_met == 1].sum()
    print(f"  pairs meeting in >= {N_MONTHS - 1} months : {core:,} "
          f"(the stable core)")
    print(f"  pairs meeting in exactly 1 month : {once:,} "
          f"(the venue fringe)")


if __name__ == "__main__":
    main()
