"""Serial reference engine.

Steps the model one simulated hour at a time: looks up every agent's
scheduled ``(activity, place)`` for the hour, moves agents, runs the
optional disease layer on the resulting place occupancies, notifies
observers, and emits event-log records on activity changes.

This engine is the semantic oracle: the distributed engine
(:mod:`repro.distrib.dmodel`) must produce the identical event stream for
the same seed, which is enforced by integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from typing import Callable

from ..config import HOURS_PER_WEEK, SimulationConfig
from ..errors import SimulationError
from ..evlog.schema import LogRecordArray, empty_records
from ..evlog.writer import CachedLogWriter
from ..synthpop.generator import SyntheticPopulation
from ..synthpop.schedule import WeekGrid, WeeklyScheduleGenerator
from .checkpoint import (
    SimSnapshot,
    load_sim_checkpoint,
    save_sim_checkpoint,
    sim_checkpoint_digest,
)
from .disease import DiseaseModel
from .events import OpenSpells, grid_to_events
from .observers import Observer, StatefulObserver

__all__ = ["Simulation", "SimulationResult"]


@dataclass
class SimulationResult:
    """What a run produced."""

    duration_hours: int
    records: LogRecordArray
    n_events: int
    disease: DiseaseModel | None = None
    log_path: Path | None = None
    observers: list[Observer] = field(default_factory=list)
    #: hour a resumed run continued from (None: ran from the start)
    resumed_from_hour: int | None = None
    #: snapshots committed during the run
    checkpoints_written: int = 0

    def events_per_person_day(self, n_persons: int) -> float:
        days = self.duration_hours / 24.0
        return self.n_events / (n_persons * days) if days else 0.0


class _RecordAccumulator:
    """Amortized event-record collector for checkpointed runs.

    Snapshots need the records emitted so far as one contiguous array.
    Re-concatenating every chunk at each checkpoint costs O(R) per
    snapshot — O(R · checkpoints) over a run.  This accumulator keeps a
    capacity-doubling buffer instead: chunks queue in ``append`` and
    :meth:`merged` copies only the chunks added since the previous call,
    so the total copy work over any run is O(R) regardless of checkpoint
    cadence.  ``merged`` returns a view of the buffer — callers that store
    it long-term hand it to ``np.savez`` (which copies) or treat it as
    read-only.
    """

    def __init__(self, initial: LogRecordArray | None = None) -> None:
        self._buf: LogRecordArray = empty_records(0)
        self._size = 0
        self._pending: list[LogRecordArray] = []
        self._pending_n = 0
        if initial is not None and len(initial):
            self.append(initial)

    def __len__(self) -> int:
        return self._size + self._pending_n

    def append(self, rec: LogRecordArray) -> None:
        if len(rec):
            self._pending.append(rec)
            self._pending_n += len(rec)

    def merged(self) -> LogRecordArray:
        """All appended records, contiguous and in order."""
        if self._pending:
            need = self._size + self._pending_n
            if need > len(self._buf):
                grown = empty_records(max(need, 2 * len(self._buf), 1024))
                grown[: self._size] = self._buf[: self._size]
                self._buf = grown
            for rec in self._pending:
                self._buf[self._size : self._size + len(rec)] = rec
                self._size += len(rec)
            self._pending = []
            self._pending_n = 0
        return self._buf[: self._size]


class Simulation:
    """Serial chiSIM-like simulation.

    Parameters
    ----------
    population:
        The synthetic world.
    config:
        Run parameters; ``config.disease`` enables the SEIR layer.

    Notes
    -----
    Hour stepping is vectorized across agents: the per-hour "decision" is a
    column lookup in the weekly schedule grid (chiSIM's daily schedules are
    likewise a-priori inputs; the *network* is what emerges).  The disease
    layer introduces the only cross-agent coupling.
    """

    def __init__(
        self,
        population: SyntheticPopulation,
        config: SimulationConfig,
        schedules: WeeklyScheduleGenerator | None = None,
    ) -> None:
        if config.scale.n_persons != population.n_persons:
            raise SimulationError(
                "config scale does not match population "
                f"({config.scale.n_persons} != {population.n_persons})"
            )
        self.population = population
        self.config = config
        # ``schedules`` may be any week-grid provider (e.g. an
        # InterventionSchedule wrapping the base generator)
        self.schedules = schedules or population.schedule_generator(
            config.schedule
        )
        self.disease: DiseaseModel | None = None
        if config.disease is not None:
            self.disease = DiseaseModel(
                population.n_persons, config.disease, seed=population.seed
            )

    # -- main loop ------------------------------------------------------------

    def run(
        self,
        observers: list[Observer] | None = None,
        log_path: str | Path | None = None,
        compress_log: bool = False,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
        fault_hook: Callable[[int], None] | None = None,
    ) -> SimulationResult:
        """Run for ``config.duration_hours``; return events (and write an
        EVL file when ``log_path`` is given).

        Checkpoint/resume
        -----------------
        With ``checkpoint_dir`` set and ``config.checkpoint_every_hours``
        configured, the engine commits a resumable snapshot every N
        simulated hours: open spells, emitted records, disease and observer
        state (including RNG position), and the log writer's byte offset,
        with an atomic manifest as the commit point.  ``resume=True``
        restores the latest snapshot from ``checkpoint_dir`` — the
        configuration digest must match — truncates the log file back to
        the recorded offset, and continues; a resumed run is bit-for-bit
        identical to an uninterrupted run with the same checkpoint cadence
        (the cadence matters because each snapshot flushes the log cache,
        which fixes chunk boundaries).

        ``fault_hook(hour)``, called before each hour is processed, exists
        for fault-injection tests: raising from it simulates a crash at an
        exact simulated time.
        """
        observers = observers or []
        duration = self.config.duration_hours
        n = self.population.n_persons
        every = self.config.checkpoint_every_hours
        ckpt_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        digest = sim_checkpoint_digest(self.config, with_log=log_path is not None)
        stateful = [o for o in observers if isinstance(o, StatefulObserver)]

        start_hour = 0
        snapshot: SimSnapshot | None = None
        if resume:
            if ckpt_dir is None:
                raise SimulationError("resume=True requires checkpoint_dir")
            snapshot = load_sim_checkpoint(ckpt_dir, digest)
            start_hour = snapshot.next_hour
            if self.disease is not None:
                assert snapshot.disease is not None
                self.disease.load_state(snapshot.disease)
            if len(snapshot.observers) != len(stateful):
                raise SimulationError(
                    f"snapshot has {len(snapshot.observers)} observer "
                    f"states, run passes {len(stateful)} stateful observers"
                )
            for obs, state in zip(stateful, snapshot.observers):
                obs.load_state(state)

        writer = None
        if log_path is not None:
            if snapshot is not None:
                writer = CachedLogWriter.open_resume(
                    log_path,
                    cache_records=self.config.log_cache_records,
                    durability=self.config.log_durability,
                    at_offset=snapshot.writer_offset,
                )
            else:
                writer = CachedLogWriter(
                    log_path,
                    rank=0,
                    cache_records=self.config.log_cache_records,
                    compress=compress_log,
                    durability=self.config.log_durability,
                )

        all_records = _RecordAccumulator()
        spells: OpenSpells | None = None
        week: WeekGrid | None = None
        checkpoints_written = 0
        if snapshot is not None:
            all_records.append(snapshot.records)
            spells = OpenSpells(
                start=snapshot.spell_start.copy(),
                activity=snapshot.spell_activity.copy(),
                place=snapshot.spell_place.copy(),
            )

        try:
            for hour in range(start_hour, duration):
                if fault_hook is not None:
                    fault_hook(hour)
                week_index, hour_of_week = divmod(hour, HOURS_PER_WEEK)
                if week is None or week.week_index != week_index:
                    week = self.schedules.week(week_index)
                act_col = week.activity[:, hour_of_week]
                place_col = week.place[:, hour_of_week]

                if self.disease is not None:
                    self.disease.step(hour, place_col)

                for obs in observers:
                    obs.on_tick(hour, act_col, place_col, self.disease)

                # event emission: detect changes against the open spells
                if spells is None:
                    spells = OpenSpells.begin(act_col, place_col, hour)
                else:
                    changed = (act_col != spells.activity) | (
                        place_col != spells.place
                    )
                    idx = np.flatnonzero(changed)
                    if len(idx):
                        rec = empty_records(len(idx))
                        rec["start"] = spells.start[idx]
                        rec["stop"] = hour
                        rec["person"] = idx.astype(np.uint32)
                        rec["activity"] = spells.activity[idx]
                        rec["place"] = spells.place[idx]
                        all_records.append(rec)
                        if writer is not None:
                            writer.log_batch(rec)
                        spells.start[idx] = hour
                        spells.activity[idx] = act_col[idx]
                        spells.place[idx] = place_col[idx]

                if (
                    ckpt_dir is not None
                    and every
                    and (hour + 1) % every == 0
                    and (hour + 1) < duration
                    and spells is not None
                ):
                    if writer is not None:
                        # flush so the snapshot offset is a chunk boundary
                        writer.flush()
                    # copies only chunks queued since the last snapshot,
                    # not all R records (savez copies again before commit)
                    merged = all_records.merged()
                    save_sim_checkpoint(
                        ckpt_dir,
                        digest,
                        SimSnapshot(
                            next_hour=hour + 1,
                            spell_start=spells.start.copy(),
                            spell_activity=spells.activity.copy(),
                            spell_place=spells.place.copy(),
                            records=merged,
                            writer_offset=(
                                writer.offset if writer is not None else -1
                            ),
                            disease=(
                                self.disease.state_dict()
                                if self.disease is not None
                                else None
                            ),
                            observers=[o.state_dict() for o in stateful],
                        ),
                    )
                    checkpoints_written += 1

            assert spells is not None
            final = spells.close_all(duration)
            all_records.append(final)
            if writer is not None:
                writer.log_batch(final)
        finally:
            if writer is not None:
                writer.close()

        records = all_records.merged()
        return SimulationResult(
            duration_hours=duration,
            records=records,
            n_events=len(records),
            disease=self.disease,
            log_path=Path(log_path) if log_path is not None else None,
            observers=observers,
            resumed_from_hour=start_hour if resume else None,
            checkpoints_written=checkpoints_written,
        )

    # -- fast path -------------------------------------------------------------

    def run_fast(
        self,
        log_path: str | Path | None = None,
        compress_log: bool = False,
        checkpoint_dir: str | Path | None = None,
        resume: bool = False,
    ) -> SimulationResult:
        """Grid-diff fast path: identical event stream to :meth:`run` when no
        disease layer or observers are active, produced a week at a time.

        The per-hour loop costs O(duration × n); this path extracts events
        with one vectorized diff per week, which is how the full pipeline
        benchmarks stay fast at large n.

        ``compress_log`` is honored exactly as in :meth:`run`.  Snapshots
        need per-hour state, which the week-at-a-time diff never
        materializes, so ``checkpoint_dir``/``resume`` raise
        :class:`~repro.errors.SimulationError` instead of being silently
        ignored — use :meth:`run` for checkpointed runs.
        """
        if self.disease is not None:
            raise SimulationError("run_fast does not support the disease layer")
        if checkpoint_dir is not None or resume:
            raise SimulationError(
                "run_fast does not support checkpoint/resume (snapshots "
                "need per-hour state); use run() for checkpointed runs"
            )
        duration = self.config.duration_hours
        writer = None
        if log_path is not None:
            writer = CachedLogWriter(
                log_path,
                rank=0,
                cache_records=self.config.log_cache_records,
                compress=compress_log,
                durability=self.config.log_durability,
            )
        all_records: list[LogRecordArray] = []
        spells: OpenSpells | None = None
        try:
            hour = 0
            while hour < duration:
                week_index = hour // HOURS_PER_WEEK
                week = self.schedules.week(week_index)
                take = min(HOURS_PER_WEEK, duration - hour)
                act = week.activity[:, :take]
                plc = week.place[:, :take]
                rec, spells = grid_to_events(act, plc, hour, spells)
                if len(rec):
                    # grid_to_events orders by person; re-order by stop time
                    # to match the per-hour engine's emission order
                    order = np.argsort(rec["stop"], kind="stable")
                    rec = rec[order]
                    all_records.append(rec)
                    if writer is not None:
                        writer.log_batch(rec)
                hour += take
            assert spells is not None
            final = spells.close_all(duration)
            all_records.append(final)
            if writer is not None:
                writer.log_batch(final)
        finally:
            if writer is not None:
                writer.close()
        records = (
            np.concatenate(all_records) if len(all_records) > 1 else all_records[0]
        )
        return SimulationResult(
            duration_hours=duration,
            records=records,
            n_events=len(records),
            log_path=Path(log_path) if log_path is not None else None,
        )
