"""SEIR disease transmission layer.

chiSIM "is an extension of an infectious disease transmission model that
was generalized to model any kind of social interaction"; the paper's
motivating log use-case is contact tracing — "trace back to patient zero,
the agent who initiated the disease outbreak".

Transmission happens between collocated agents: each hour, a susceptible
agent sharing a place with ``k`` infectious agents is infected with
probability ``1 - (1 - β)^k``.  Every infection stores a
:class:`TransmissionRecord` (who, by whom, where, when), giving the
examples a ground-truth transmission tree to trace.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..config import HOURS_PER_DAY, DiseaseConfig
from ..errors import SimulationError

__all__ = ["DiseaseState", "DiseaseModel", "TransmissionRecord"]


class DiseaseState(enum.IntEnum):
    """SEIR compartment codes (values are stable, stored in results)."""

    SUSCEPTIBLE = 0
    EXPOSED = 1
    INFECTIOUS = 2
    RECOVERED = 3


@dataclass(frozen=True)
class TransmissionRecord:
    """One infection event: ground truth for contact tracing."""

    hour: int
    place: int
    infected: int
    infector: int


class DiseaseModel:
    """Vectorized SEIR dynamics over place collocations.

    State is columnar: a uint8 state vector and an int32 hour countdown to
    the next state transition.  The per-hour step is O(n) using bincount
    aggregations by place; no per-agent Python loop.
    """

    def __init__(self, n_persons: int, config: DiseaseConfig, seed: int) -> None:
        if n_persons <= 0:
            raise SimulationError("disease model needs a population")
        self.config = config
        self.n_persons = n_persons
        self.rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(0xD15EA5E,))
        )
        self.state = np.full(n_persons, int(DiseaseState.SUSCEPTIBLE), dtype=np.uint8)
        self.timer = np.zeros(n_persons, dtype=np.int32)
        self.infected_at = np.full(n_persons, -1, dtype=np.int64)
        self.transmissions: list[TransmissionRecord] = []
        self.patient_zeros: list[int] = []
        if config.initial_infected > n_persons:
            raise SimulationError("more initial infections than persons")
        if config.initial_infected:
            seeds = self.rng.choice(
                n_persons, size=config.initial_infected, replace=False
            )
            self.state[seeds] = int(DiseaseState.INFECTIOUS)
            self.timer[seeds] = self._sample_duration(
                config.infectious_days, len(seeds)
            )
            self.infected_at[seeds] = 0
            self.patient_zeros = [int(s) for s in seeds]

    def _sample_duration(self, days: float, n: int) -> np.ndarray:
        """Exponential stage duration in hours, at least one hour."""
        hours = self.rng.exponential(days * HOURS_PER_DAY, n)
        return np.maximum(1, hours).astype(np.int32)

    # -- per-hour step ----------------------------------------------------------

    def step(self, hour: int, place_of_person: np.ndarray) -> int:
        """Advance one hour given each person's current place.

        Returns the number of new infections this hour.
        """
        place_of_person = np.asarray(place_of_person)
        if place_of_person.shape != (self.n_persons,):
            raise SimulationError("place vector does not match population")

        # stage progression
        self.timer[self.state != int(DiseaseState.SUSCEPTIBLE)] -= 1
        expired = self.timer <= 0
        e2i = expired & (self.state == int(DiseaseState.EXPOSED))
        i2r = expired & (self.state == int(DiseaseState.INFECTIOUS))
        if e2i.any():
            self.state[e2i] = int(DiseaseState.INFECTIOUS)
            self.timer[e2i] = self._sample_duration(
                self.config.infectious_days, int(e2i.sum())
            )
        if i2r.any():
            self.state[i2r] = int(DiseaseState.RECOVERED)

        # transmission
        infectious = self.state == int(DiseaseState.INFECTIOUS)
        if not infectious.any():
            return 0
        susceptible = self.state == int(DiseaseState.SUSCEPTIBLE)
        if not susceptible.any():
            return 0
        n_places = int(place_of_person.max()) + 1
        inf_count = np.bincount(
            place_of_person[infectious].astype(np.int64), minlength=n_places
        )
        sus_idx = np.flatnonzero(susceptible)
        k = inf_count[place_of_person[sus_idx].astype(np.int64)]
        exposed_prob = 1.0 - (1.0 - self.config.transmissibility) ** k
        hit = self.rng.random(len(sus_idx)) < exposed_prob
        newly = sus_idx[hit]
        if not len(newly):
            return 0
        self.state[newly] = int(DiseaseState.EXPOSED)
        self.timer[newly] = self._sample_duration(
            self.config.incubation_days, len(newly)
        )
        self.infected_at[newly] = hour

        # attribute an infector per new case: a random infectious agent at
        # the same place (ground truth for the tracing example)
        inf_idx = np.flatnonzero(infectious)
        inf_places = place_of_person[inf_idx].astype(np.int64)
        order = np.argsort(inf_places, kind="stable")
        sorted_places = inf_places[order]
        for person in newly:
            plc = int(place_of_person[person])
            lo = np.searchsorted(sorted_places, plc, side="left")
            hi = np.searchsorted(sorted_places, plc, side="right")
            assert hi > lo, "new case must have an infectious collocate"
            pick = int(order[self.rng.integers(lo, hi)])
            self.transmissions.append(
                TransmissionRecord(
                    hour=hour,
                    place=plc,
                    infected=int(person),
                    infector=int(inf_idx[pick]),
                )
            )
        return len(newly)

    # -- checkpointing -----------------------------------------------------------

    def state_dict(self) -> dict:
        """Everything needed to continue the epidemic bit-for-bit: the
        compartment arrays, the transmission ground truth, and the RNG
        stream position (so post-resume draws match an uninterrupted run).
        """
        return {
            "state": self.state.copy(),
            "timer": self.timer.copy(),
            "infected_at": self.infected_at.copy(),
            "rng_state": self.rng.bit_generator.state,
            "transmissions": [
                (t.hour, t.place, t.infected, t.infector)
                for t in self.transmissions
            ],
            "patient_zeros": list(self.patient_zeros),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this model.

        The model must have been constructed with the same population size
        and configuration; the constructor's seeding draws are overwritten
        wholesale, including the RNG position.
        """
        if state["state"].shape != self.state.shape:
            raise SimulationError(
                "disease snapshot population does not match this model"
            )
        self.state = np.asarray(state["state"], dtype=np.uint8).copy()
        self.timer = np.asarray(state["timer"], dtype=np.int32).copy()
        self.infected_at = np.asarray(state["infected_at"], dtype=np.int64).copy()
        self.rng.bit_generator.state = state["rng_state"]
        self.transmissions = [
            TransmissionRecord(hour=h, place=p, infected=i, infector=j)
            for h, p, i, j in state["transmissions"]
        ]
        self.patient_zeros = list(state["patient_zeros"])

    # -- reporting ---------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Current S/E/I/R census."""
        return {
            s.name.lower(): int(np.count_nonzero(self.state == int(s)))
            for s in DiseaseState
        }

    def trace_to_patient_zero(self, person: int) -> list[TransmissionRecord]:
        """Walk the transmission tree from *person* back to a seed case.

        This is the paper's log use-case made executable: the chain of
        :class:`TransmissionRecord` from the person's own infection back to
        an initially-infected agent (empty if *person* is a seed or was
        never infected).
        """
        by_infected = {t.infected: t for t in self.transmissions}
        chain: list[TransmissionRecord] = []
        current = person
        seen = {person}
        while current in by_infected:
            rec = by_infected[current]
            chain.append(rec)
            current = rec.infector
            if current in seen:
                raise SimulationError("cycle in transmission records")
            seen.add(current)
        return chain

    def attack_rate(self) -> float:
        """Fraction of the population ever infected."""
        return float(np.count_nonzero(self.infected_at >= 0)) / self.n_persons
