"""Vectorized conversion between schedule grids and event records.

Event-based logging is the paper's key storage idea: "only logs changes in
person agent states ... Considering that agent activity states change only
several times per day, the use of event-based logging reduces both
computational and storage costs dramatically."

An *event* (one log record) is a maximal run of hours during which a
person's ``(activity, place)`` pair is constant: ``[start, stop)`` in
absolute simulation hours.  :class:`OpenSpells` carries run state across
grid boundaries (week to week) so a spell spanning midnight Sunday is one
record, exactly as a per-tick logger would emit it.

Both directions are provided; ``events_to_grid`` is the test oracle proving
the compression is lossless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..evlog.schema import LOG_DTYPE, LogRecordArray, empty_records

__all__ = ["OpenSpells", "grid_to_events", "events_to_grid"]


@dataclass
class OpenSpells:
    """Per-person in-progress activity spells.

    Attributes
    ----------
    start:
        absolute hour each person's current spell began (int64).
    activity, place:
        the spell's constant state (uint32).
    """

    start: np.ndarray
    activity: np.ndarray
    place: np.ndarray
    persons: np.ndarray | None = None  # defaults to arange(n)

    @classmethod
    def begin(
        cls,
        activity0: np.ndarray,
        place0: np.ndarray,
        t0: int,
        persons: np.ndarray | None = None,
    ) -> "OpenSpells":
        """Open a spell for every person at absolute hour ``t0``."""
        n = len(activity0)
        return cls(
            start=np.full(n, t0, dtype=np.int64),
            activity=np.asarray(activity0, dtype=np.uint32).copy(),
            place=np.asarray(place0, dtype=np.uint32).copy(),
            persons=(
                None if persons is None else np.asarray(persons, dtype=np.uint32)
            ),
        )

    def person_ids(self) -> np.ndarray:
        if self.persons is not None:
            return self.persons
        return np.arange(len(self.start), dtype=np.uint32)

    def close_all(self, t_end: int) -> LogRecordArray:
        """Emit the final records for all open spells ending at ``t_end``."""
        n = len(self.start)
        rec = empty_records(n)
        rec["start"] = self.start
        rec["stop"] = t_end
        rec["person"] = self.person_ids()
        rec["activity"] = self.activity
        rec["place"] = self.place
        if np.any(rec["stop"] <= rec["start"]):
            raise SimulationError("close_all at or before spell start")
        return rec


def grid_to_events(
    activity: np.ndarray,
    place: np.ndarray,
    t_offset: int,
    spells: OpenSpells | None = None,
    person_ids: np.ndarray | None = None,
) -> tuple[LogRecordArray, OpenSpells]:
    """Convert an ``(n, H)`` hour grid into event records.

    Parameters
    ----------
    activity, place:
        per-person, per-hour state for hours ``[t_offset, t_offset + H)``.
    t_offset:
        absolute hour of the grid's first column.
    spells:
        open spells carried in from the previous grid; ``None`` opens
        spells at the first column (start of simulation).
    person_ids:
        optional uint32 ids when the grid rows are a subset of the
        population (used by per-rank logging); defaults to ``arange(n)``.

    Returns ``(records, open_spells)``; the caller closes the final spells
    with :meth:`OpenSpells.close_all` at end of simulation.  Records are
    ordered by person then start time.
    """
    activity = np.asarray(activity)
    place = np.asarray(place)
    if activity.shape != place.shape or activity.ndim != 2:
        raise SimulationError("activity/place grids must be equal 2-D shapes")
    n, H = activity.shape
    if H == 0:
        raise SimulationError("grid must cover at least one hour")
    ids = (
        np.arange(n, dtype=np.uint32)
        if person_ids is None
        else np.asarray(person_ids, dtype=np.uint32)
    )
    if ids.shape != (n,):
        raise SimulationError("person_ids must match grid rows")

    if spells is None:
        spells = OpenSpells.begin(
            activity[:, 0], place[:, 0], t_offset, persons=person_ids
        )
        first_new = False
    else:
        if len(spells.start) != n:
            raise SimulationError("carried spells do not match grid rows")
        if spells.persons is not None and not np.array_equal(
            spells.persons, ids
        ):
            raise SimulationError("carried spells cover different persons")
        first_new = True

    # change matrix: True where hour h differs from hour h-1 (within grid),
    # plus column 0 against the carried spell state.
    change = np.empty((n, H), dtype=bool)
    if first_new:
        change[:, 0] = (activity[:, 0] != spells.activity) | (
            place[:, 0] != spells.place
        )
    else:
        change[:, 0] = False
    change[:, 1:] = (activity[:, 1:] != activity[:, :-1]) | (
        place[:, 1:] != place[:, :-1]
    )

    rows, cols = np.nonzero(change)
    # each change closes the spell open at that row and opens a new one; the
    # closed spell's start is the previous change (or the carried start).
    abs_hour = cols + t_offset

    # Per row, the change hours are sorted by construction of nonzero (row-
    # major).  The record for change k of a row spans from the previous
    # change hour of the same row (or the carried spell start) to this one.
    prev_same_row = np.empty(len(rows), dtype=np.int64)
    if len(rows):
        first_of_row = np.ones(len(rows), dtype=bool)
        first_of_row[1:] = rows[1:] != rows[:-1]
        prev_same_row[~first_of_row] = abs_hour[:-1][~first_of_row[1:]]
        prev_same_row[first_of_row] = spells.start[rows[first_of_row]]

    rec = empty_records(len(rows))
    if len(rows):
        rec["start"] = prev_same_row
        rec["stop"] = abs_hour
        rec["person"] = ids[rows]
        # state being closed: the state at the hour before the change; for a
        # row's first change that is the carried spell state.
        prev_col = cols - 1
        closing_act = np.where(
            cols > 0, activity[rows, np.maximum(prev_col, 0)], spells.activity[rows]
        )
        closing_place = np.where(
            cols > 0, place[rows, np.maximum(prev_col, 0)], spells.place[rows]
        )
        rec["activity"] = closing_act
        rec["place"] = closing_place

    # open spells after the grid: state at the last column, started at the
    # last change (or carried start when a row had no change).
    new_start = spells.start.copy()
    if len(rows):
        last_of_row = np.ones(len(rows), dtype=bool)
        last_of_row[:-1] = rows[:-1] != rows[1:]
        new_start[rows[last_of_row]] = abs_hour[last_of_row]
    out = OpenSpells(
        start=new_start,
        activity=activity[:, -1].astype(np.uint32).copy(),
        place=place[:, -1].astype(np.uint32).copy(),
        persons=None if person_ids is None else ids,
    )
    return rec, out


def events_to_grid(
    records: LogRecordArray,
    n_persons: int,
    t0: int,
    t1: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Reconstruct the ``(n_persons, t1 - t0)`` grids from event records.

    The inverse of :func:`grid_to_events` over a fully-covered window
    (every person has records covering every hour in ``[t0, t1)``); hours
    not covered by any record are left as activity/place 0.  Used as the
    lossless-compression oracle in tests and for contact reconstruction.
    """
    records = np.asarray(records, dtype=LOG_DTYPE)
    H = t1 - t0
    if H <= 0:
        raise SimulationError("t1 must exceed t0")
    act = np.zeros((n_persons, H), dtype=np.uint32)
    plc = np.zeros((n_persons, H), dtype=np.uint32)
    starts = np.maximum(records["start"].astype(np.int64), t0) - t0
    stops = np.minimum(records["stop"].astype(np.int64), t1) - t0
    keep = stops > starts
    starts, stops = starts[keep], stops[keep]
    persons = records["person"][keep].astype(np.int64)
    if persons.size and persons.max() >= n_persons:
        raise SimulationError("record person id outside population")
    activities = records["activity"][keep]
    places = records["place"][keep]
    # paint each record interval; loop over records is acceptable here (the
    # oracle path), but batch by interval length to stay vectorized.
    lengths = stops - starts
    for length in np.unique(lengths):
        sel = lengths == length
        base = starts[sel]
        p = persons[sel]
        for off in range(int(length)):
            act[p, base + off] = activities[sel]
            plc[p, base + off] = places[sel]
    return act, plc
