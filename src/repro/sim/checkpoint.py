"""Simulation checkpoint/restore: periodic snapshots with atomic commit.

A multi-week run at the paper's scale (2.9 M agents, four simulated weeks)
is hours of wall clock; a crash near the end without a checkpoint repeats
all of it.  This module snapshots everything the engine needs to continue
*bit-for-bit*: the open activity spells, the records emitted so far, the
disease layer (including its RNG stream position), observer state, and the
event-log writer's byte position (so the log file can be truncated back to
the exact commit point on resume).

The commit protocol mirrors the synthesis checkpoints of
:mod:`repro.core.pipeline`: the bulky state goes into ``sim_state.npz``
first, the small ``sim_manifest.json`` is written last — both atomically —
so the manifest is the commit point and a crash mid-checkpoint leaves the
previous snapshot in force.  A configuration digest guards against
resuming a snapshot under different run parameters.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from .._util import atomic_write_bytes
from ..errors import CheckpointError

__all__ = [
    "SIM_MANIFEST",
    "SIM_STATE",
    "SimSnapshot",
    "sim_checkpoint_digest",
    "save_sim_checkpoint",
    "load_sim_checkpoint",
    "pickle_to_array",
    "array_to_pickle",
    "write_manifest",
    "read_manifest",
]

SIM_MANIFEST = "sim_manifest.json"
SIM_STATE = "sim_state.npz"
CHECKPOINT_VERSION = 1


def pickle_to_array(obj: Any) -> np.ndarray:
    """Serialize *obj* into a uint8 array (npz-storable without
    ``allow_pickle`` at load time — the bytes are explicit data)."""
    return np.frombuffer(pickle.dumps(obj, protocol=4), dtype=np.uint8)


def array_to_pickle(arr: np.ndarray) -> Any:
    """Inverse of :func:`pickle_to_array`."""
    return pickle.loads(arr.tobytes())


@dataclass
class SimSnapshot:
    """Everything needed to continue a run from hour ``next_hour``."""

    next_hour: int
    spell_start: np.ndarray
    spell_activity: np.ndarray
    spell_place: np.ndarray
    #: all event records emitted before ``next_hour``
    records: np.ndarray
    #: event-log byte offset at the commit point (-1: run had no log)
    writer_offset: int = -1
    #: disease layer state dict (see ``DiseaseModel.state_dict``), or None
    disease: dict[str, Any] | None = None
    #: ``state_dict`` of each stateful observer, in observer order
    observers: list[dict[str, Any]] = field(default_factory=list)


def sim_checkpoint_digest(config: Any, with_log: bool) -> str:
    """Fingerprint of everything that determines a run's trajectory.

    Any change to the configuration (population scale/seed, schedules,
    disease parameters, duration, cache size, durability) or to whether a
    log is written makes a snapshot unusable, because replay would diverge
    from the checkpointed prefix.
    """
    payload = {
        "version": CHECKPOINT_VERSION,
        "config": dataclasses.asdict(config),
        "with_log": bool(with_log),
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


def write_manifest(directory: Path, name: str, manifest: dict) -> None:
    """Atomically commit a checkpoint manifest (the commit point)."""
    atomic_write_bytes(
        directory / name,
        json.dumps(manifest, indent=2, sort_keys=True).encode(),
    )


def read_manifest(
    directory: Path, name: str, expected_digest: str | None = None
) -> dict:
    """Read and validate a checkpoint manifest."""
    path = directory / name
    if not path.is_file():
        raise CheckpointError(f"no checkpoint manifest at {path}")
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"unreadable checkpoint manifest {path}: {exc}"
        ) from exc
    if manifest.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {manifest.get('version')} unsupported "
            f"(expected {CHECKPOINT_VERSION})"
        )
    if expected_digest is not None and manifest.get("digest") != expected_digest:
        raise CheckpointError(
            f"checkpoint in {directory} was written for a different "
            "configuration; refusing to resume"
        )
    return manifest


def save_sim_checkpoint(
    directory: str | Path, digest: str, snapshot: SimSnapshot
) -> None:
    """Persist one snapshot: state first, manifest last, both atomic."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {
        "spell_start": snapshot.spell_start,
        "spell_activity": snapshot.spell_activity,
        "spell_place": snapshot.spell_place,
        "records": snapshot.records,
        "aux": pickle_to_array(
            {"disease": snapshot.disease, "observers": snapshot.observers}
        ),
    }
    buf = io.BytesIO()
    np.savez_compressed(buf, **arrays)
    atomic_write_bytes(directory / SIM_STATE, buf.getvalue())
    write_manifest(
        directory,
        SIM_MANIFEST,
        {
            "version": CHECKPOINT_VERSION,
            "digest": digest,
            "next_hour": int(snapshot.next_hour),
            "writer_offset": int(snapshot.writer_offset),
        },
    )


def load_sim_checkpoint(directory: str | Path, digest: str) -> SimSnapshot:
    """Load a snapshot, refusing digests from a different configuration."""
    directory = Path(directory)
    manifest = read_manifest(directory, SIM_MANIFEST, expected_digest=digest)
    state_path = directory / SIM_STATE
    if not state_path.is_file():
        raise CheckpointError(
            f"manifest in {directory} has no {SIM_STATE} beside it"
        )
    with np.load(state_path) as data:
        aux = array_to_pickle(data["aux"])
        return SimSnapshot(
            next_hour=int(manifest["next_hour"]),
            spell_start=data["spell_start"],
            spell_activity=data["spell_activity"],
            spell_place=data["spell_place"],
            records=data["records"],
            writer_offset=int(manifest["writer_offset"]),
            disease=aux["disease"],
            observers=aux["observers"],
        )
