"""Schedule interventions: what-if scenarios on the activity model.

chiSIM descends from epidemic models, and the canonical use of such models
is evaluating interventions (school closures, venue closures, stay-home
orders).  An intervention here is a pure transformation of a week's
schedule grid — agents redirected home — composed in front of the normal
:class:`~repro.synthpop.schedule.WeeklyScheduleGenerator`, so the engine,
logging, synthesis, and analysis stacks run unmodified on the
counterfactual world.

Because the collocation network is *endogenous* (the paper's headline
point), interventions visibly reshape it: closing schools deletes the
0-14 group's within-group structure (Figure 5's flat band), and the SEIR
attack rate drops accordingly — both asserted in the tests.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..errors import ScheduleError
from ..synthpop.person import PersonTable
from ..synthpop.places import PlaceKind, PlaceTable
from ..synthpop.schedule import Activity, WeekGrid, WeeklyScheduleGenerator

__all__ = [
    "Intervention",
    "CloseSchools",
    "ClosePlaceKind",
    "StayHomeOrder",
    "InterventionSchedule",
]


@runtime_checkable
class Intervention(Protocol):
    """A pure WeekGrid transformation, active over a week range."""

    def apply(self, grid: WeekGrid, persons: PersonTable) -> WeekGrid: ...

    def active(self, week_index: int) -> bool: ...


class _WindowedIntervention:
    """Base: active in weeks ``[start_week, end_week)`` (None = open)."""

    def __init__(
        self, start_week: int = 0, end_week: int | None = None
    ) -> None:
        if start_week < 0:
            raise ScheduleError("start_week must be >= 0")
        if end_week is not None and end_week <= start_week:
            raise ScheduleError("end_week must exceed start_week")
        self.start_week = start_week
        self.end_week = end_week

    def active(self, week_index: int) -> bool:
        if week_index < self.start_week:
            return False
        return self.end_week is None or week_index < self.end_week


def _send_home(
    grid: WeekGrid, persons: PersonTable, mask: np.ndarray
) -> WeekGrid:
    """Replace masked grid cells with at-home at the person's household."""
    act = grid.activity.copy()
    place = grid.place.copy()
    rows, cols = np.nonzero(mask)
    act[rows, cols] = int(Activity.AT_HOME)
    place[rows, cols] = persons.household[rows]
    return WeekGrid(week_index=grid.week_index, activity=act, place=place)


class CloseSchools(_WindowedIntervention):
    """All school attendance redirected home (children stay home)."""

    def apply(self, grid: WeekGrid, persons: PersonTable) -> WeekGrid:
        mask = grid.activity == int(Activity.AT_SCHOOL)
        return _send_home(grid, persons, mask)


class ClosePlaceKind(_WindowedIntervention):
    """Close every place of a kind (e.g. all OTHER venues)."""

    def __init__(
        self,
        places: PlaceTable,
        kind: PlaceKind,
        start_week: int = 0,
        end_week: int | None = None,
    ) -> None:
        super().__init__(start_week, end_week)
        self._closed = places.kind == int(kind)

    def apply(self, grid: WeekGrid, persons: PersonTable) -> WeekGrid:
        mask = self._closed[grid.place.astype(np.int64)]
        return _send_home(grid, persons, mask)


class StayHomeOrder(_WindowedIntervention):
    """A fixed random fraction of the population stays home entirely
    (compliance is stable per person across the order's duration)."""

    def __init__(
        self,
        fraction: float,
        seed: int = 0,
        start_week: int = 0,
        end_week: int | None = None,
    ) -> None:
        super().__init__(start_week, end_week)
        if not 0.0 <= fraction <= 1.0:
            raise ScheduleError("fraction must be in [0, 1]")
        self.fraction = fraction
        self.seed = seed
        self._compliant: np.ndarray | None = None

    def apply(self, grid: WeekGrid, persons: PersonTable) -> WeekGrid:
        if self._compliant is None or len(self._compliant) != len(persons):
            rng = np.random.default_rng(self.seed)
            self._compliant = rng.random(len(persons)) < self.fraction
        mask = np.zeros_like(grid.activity, dtype=bool)
        mask[self._compliant, :] = True
        return _send_home(grid, persons, mask)


class InterventionSchedule:
    """Drop-in replacement for :class:`WeeklyScheduleGenerator` that runs
    the base schedules through a stack of interventions.

    Duck-types the generator interface (``week``, ``persons``), so
    :class:`~repro.sim.engine.Simulation` accepts it via its
    ``schedules`` override.
    """

    def __init__(
        self,
        base: WeeklyScheduleGenerator,
        interventions: Sequence[Intervention],
    ) -> None:
        self.base = base
        self.interventions = list(interventions)
        for iv in self.interventions:
            if not isinstance(iv, Intervention):
                raise ScheduleError(f"{iv!r} is not an Intervention")

    @property
    def persons(self) -> PersonTable:
        return self.base.persons

    def week(self, week_index: int) -> WeekGrid:
        grid = self.base.week(week_index)
        for iv in self.interventions:
            if iv.active(week_index):
                grid = iv.apply(grid, self.base.persons)
        return grid
