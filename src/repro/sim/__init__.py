"""The chiSIM-like agent-based model.

chiSIM "simulates individual agents within fine-grained spatial location
compartments associated with daily activities and places ... At each
simulation time step (1 hour) each agent decides their next activity for
that hour and the associated location.  Agents move from location to
location and interact with other agents at the new location."

This subpackage provides:

* :mod:`repro.sim.events` — vectorized conversion between hourly schedule
  grids and event-log records (the "only log changes" rule of Section III);
* :mod:`repro.sim.engine` — the serial reference engine, stepping one hour
  at a time, emitting activity-change events and driving optional dynamics;
* :mod:`repro.sim.disease` — the SEIR transmission layer chiSIM
  generalizes ("an extension of an infectious disease transmission model"),
  including the transmission-pair log used to trace back to patient zero;
* :mod:`repro.sim.observers` — aggregate per-tick metrics (the
  "aggregate metrics and statistics such as disease incidence" the paper
  contrasts with full network analysis).

The distributed engine lives in :mod:`repro.distrib` and reuses the same
event semantics; serial-vs-distributed equivalence is a test invariant.
"""

from .events import grid_to_events, events_to_grid, OpenSpells
from .engine import Simulation, SimulationResult
from .disease import DiseaseModel, DiseaseState, TransmissionRecord
from .observers import Observer, StatefulObserver, PrevalenceObserver, OccupancyObserver, MovementObserver
from .checkpoint import SimSnapshot, load_sim_checkpoint, save_sim_checkpoint
from .interventions import (
    Intervention,
    CloseSchools,
    ClosePlaceKind,
    StayHomeOrder,
    InterventionSchedule,
)

__all__ = [
    "grid_to_events",
    "events_to_grid",
    "OpenSpells",
    "Simulation",
    "SimulationResult",
    "DiseaseModel",
    "DiseaseState",
    "TransmissionRecord",
    "Observer",
    "StatefulObserver",
    "SimSnapshot",
    "load_sim_checkpoint",
    "save_sim_checkpoint",
    "PrevalenceObserver",
    "OccupancyObserver",
    "MovementObserver",
    "Intervention",
    "CloseSchools",
    "ClosePlaceKind",
    "StayHomeOrder",
    "InterventionSchedule",
]
