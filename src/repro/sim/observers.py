"""Per-tick aggregate observers.

The paper notes that "recent urban-scale simulation models typically apply
aggregate metrics and statistics such as disease incidence to characterize
the state of the population over time" — these observers implement that
aggregate view, which the network analysis of Section V then goes beyond.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from .disease import DiseaseModel, DiseaseState

__all__ = [
    "Observer",
    "StatefulObserver",
    "PrevalenceObserver",
    "OccupancyObserver",
    "MovementObserver",
]


@runtime_checkable
class Observer(Protocol):
    """Anything with an ``on_tick`` hook."""

    def on_tick(
        self,
        hour: int,
        activity: np.ndarray,
        place: np.ndarray,
        disease: DiseaseModel | None,
    ) -> None: ...


@runtime_checkable
class StatefulObserver(Observer, Protocol):
    """An observer whose accumulated state survives checkpoint/resume.

    ``state_dict`` must return plain data (ints, lists, numpy arrays);
    ``load_state`` restores it onto a freshly constructed instance.  The
    engine snapshots every stateful observer so a resumed run reports the
    same aggregates as an uninterrupted one.
    """

    def state_dict(self) -> dict: ...

    def load_state(self, state: dict) -> None: ...


class PrevalenceObserver:
    """Hourly S/E/I/R counts (disease incidence time series)."""

    def __init__(self) -> None:
        self.hours: list[int] = []
        self.series: dict[str, list[int]] = {
            s.name.lower(): [] for s in DiseaseState
        }

    def on_tick(
        self,
        hour: int,
        activity: np.ndarray,
        place: np.ndarray,
        disease: DiseaseModel | None,
    ) -> None:
        if disease is None:
            return
        self.hours.append(hour)
        for name, count in disease.counts().items():
            self.series[name].append(count)

    def peak_infectious(self) -> tuple[int, int]:
        """(hour, count) at the epidemic peak; (0, 0) when never observed."""
        inf = self.series["infectious"]
        if not inf:
            return 0, 0
        i = int(np.argmax(inf))
        return self.hours[i], inf[i]

    def state_dict(self) -> dict:
        return {
            "hours": list(self.hours),
            "series": {k: list(v) for k, v in self.series.items()},
        }

    def load_state(self, state: dict) -> None:
        self.hours = list(state["hours"])
        self.series = {k: list(v) for k, v in state["series"].items()}


class OccupancyObserver:
    """Distribution of simultaneous place occupancy, sampled hourly.

    Collects a histogram of "how many people share a place right now",
    the quantity whose variance drives the paper's load-balancing needs
    (locations "range from a single individual to tens of thousands").
    """

    def __init__(self, max_occupancy: int = 4096) -> None:
        self.max_occupancy = max_occupancy
        self.histogram = np.zeros(max_occupancy + 1, dtype=np.int64)
        self.max_seen = 0

    def on_tick(
        self,
        hour: int,
        activity: np.ndarray,
        place: np.ndarray,
        disease: DiseaseModel | None,
    ) -> None:
        occ = np.bincount(place.astype(np.int64))
        occ = occ[occ > 0]
        if occ.size:
            self.max_seen = max(self.max_seen, int(occ.max()))
        clipped = np.minimum(occ, self.max_occupancy)
        self.histogram += np.bincount(
            clipped, minlength=self.max_occupancy + 1
        )

    def mean_occupancy(self) -> float:
        counts = self.histogram
        sizes = np.arange(len(counts))
        total = counts.sum()
        return float((counts * sizes).sum() / total) if total else 0.0

    def state_dict(self) -> dict:
        return {"histogram": self.histogram.copy(), "max_seen": self.max_seen}

    def load_state(self, state: dict) -> None:
        histogram = np.asarray(state["histogram"], dtype=np.int64)
        if histogram.shape != self.histogram.shape:
            raise ValueError("occupancy snapshot has a different max_occupancy")
        self.histogram = histogram.copy()
        self.max_seen = int(state["max_seen"])


class MovementObserver:
    """Counts agents that changed place each hour (movement volume).

    The distributed engine's migration traffic is this series restricted to
    moves that cross rank boundaries, so this observer provides the serial
    baseline for the partitioning experiment.
    """

    def __init__(self) -> None:
        self._last_place: np.ndarray | None = None
        self.moves_per_hour: list[int] = []

    def on_tick(
        self,
        hour: int,
        activity: np.ndarray,
        place: np.ndarray,
        disease: DiseaseModel | None,
    ) -> None:
        if self._last_place is not None:
            self.moves_per_hour.append(
                int(np.count_nonzero(place != self._last_place))
            )
        self._last_place = place.copy()

    @property
    def total_moves(self) -> int:
        return int(sum(self.moves_per_hour))

    def state_dict(self) -> dict:
        return {
            "last_place": (
                None if self._last_place is None else self._last_place.copy()
            ),
            "moves_per_hour": list(self.moves_per_hour),
        }

    def load_state(self, state: dict) -> None:
        last = state["last_place"]
        self._last_place = None if last is None else np.asarray(last).copy()
        self.moves_per_hour = list(state["moves_per_hour"])
