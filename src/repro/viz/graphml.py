"""GraphML writer (the interchange format iGraph exports natively).

A second export path mirroring how the paper's subgraphs were "exported
from R using iGraph"; readable by Gephi, Cytoscape, and networkx.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from ..errors import LayoutError

__all__ = ["write_graphml"]

_NS = "http://graphml.graphdrawing.org/xmlns"


def write_graphml(
    path: str | Path,
    adjacency: sp.spmatrix,
    node_attrs: dict[str, np.ndarray] | None = None,
) -> Path:
    """Write a symmetric weighted graph as GraphML.

    ``node_attrs`` maps attribute names to per-node arrays (numeric or
    string); edge weights are always written as the ``weight`` attribute.
    """
    a = sp.csr_matrix(adjacency)
    if a.shape[0] != a.shape[1]:
        raise LayoutError("adjacency must be square")
    n = a.shape[0]
    node_attrs = node_attrs or {}
    for name, values in node_attrs.items():
        if len(values) != n:
            raise LayoutError(f"attribute {name!r} length != {n}")

    ET.register_namespace("", _NS)
    root = ET.Element(f"{{{_NS}}}graphml")
    # attribute keys
    for idx, (name, values) in enumerate(node_attrs.items()):
        attr_type = (
            "double"
            if np.issubdtype(np.asarray(values).dtype, np.number)
            else "string"
        )
        ET.SubElement(
            root,
            f"{{{_NS}}}key",
            id=f"d{idx}",
            **{"for": "node", "attr.name": name, "attr.type": attr_type},
        )
    ET.SubElement(
        root,
        f"{{{_NS}}}key",
        id="w",
        **{"for": "edge", "attr.name": "weight", "attr.type": "double"},
    )
    graph = ET.SubElement(
        root, f"{{{_NS}}}graph", id="G", edgedefault="undirected"
    )
    keys = list(node_attrs.keys())
    for i in range(n):
        node = ET.SubElement(graph, f"{{{_NS}}}node", id=f"n{i}")
        for idx, name in enumerate(keys):
            data = ET.SubElement(node, f"{{{_NS}}}data", key=f"d{idx}")
            data.text = str(node_attrs[name][i])
    sym = a.maximum(a.T)
    coo = sp.triu(sym, k=1).tocoo()
    for eid, (i, j, w) in enumerate(zip(coo.row, coo.col, coo.data)):
        edge = ET.SubElement(
            graph,
            f"{{{_NS}}}edge",
            id=f"e{eid}",
            source=f"n{int(i)}",
            target=f"n{int(j)}",
        )
        data = ET.SubElement(edge, f"{{{_NS}}}data", key="w")
        data.text = str(float(w))
    path = Path(path)
    tree = ET.ElementTree(root)
    ET.indent(tree)
    tree.write(path, encoding="utf-8", xml_declaration=True)
    return path
