"""Visualization support (Figures 1–2 workflow).

The paper exports ego subgraphs from R/iGraph and renders them in Gephi
with the ForceAtlas2 layout, colored by vertex degree.  This subpackage
covers the full workflow without external tools:

* :mod:`repro.viz.forceatlas2` — a numpy implementation of the
  ForceAtlas2 force model (degree-weighted repulsion, linear attraction,
  gravity, adaptive cooling), "useful in spatializing Small-World and
  scale-free networks";
* :mod:`repro.viz.gexf` / :mod:`repro.viz.graphml` — Gephi-compatible
  file writers with positions, degree-based colors and edge weights;
* :mod:`repro.viz.ascii` — terminal renderings (log-log scatter and bar
  histograms) used by the examples and benchmark reports, since no
  plotting library is assumed.
"""

from .forceatlas2 import ForceAtlas2Layout, forceatlas2_layout
from .gexf import write_gexf
from .graphml import write_graphml
from .ascii import ascii_loglog, ascii_histogram, ascii_series
from .figdata import (
    export_fig3_csv,
    export_fig4_csv,
    export_fig5_csv,
    export_all_figure_data,
)

__all__ = [
    "ForceAtlas2Layout",
    "forceatlas2_layout",
    "write_gexf",
    "write_graphml",
    "ascii_loglog",
    "ascii_histogram",
    "ascii_series",
    "export_fig3_csv",
    "export_fig4_csv",
    "export_fig5_csv",
    "export_all_figure_data",
]
