"""GEXF 1.2 writer (Gephi's native format).

Exports a (sub)graph the way the paper moved data from R to Gephi: node
positions from the layout, "graph nodes ... colored according to their
degree — those with more neighbors are darker", and edge weights carrying
collocation hours.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from ..errors import LayoutError

__all__ = ["write_gexf", "degree_colors"]

_GEXF_NS = "http://www.gexf.net/1.2draft"
_VIZ_NS = "http://www.gexf.net/1.2draft/viz"


def degree_colors(degrees: np.ndarray) -> np.ndarray:
    """Map degrees to grayscale RGB: higher degree → darker (paper style).

    Returns ``(n, 3) uint8``.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    if degrees.size == 0:
        return np.zeros((0, 3), dtype=np.uint8)
    lo, hi = degrees.min(), degrees.max()
    t = (degrees - lo) / (hi - lo) if hi > lo else np.zeros_like(degrees)
    shade = (230.0 - 200.0 * t).astype(np.uint8)  # 230 light → 30 dark
    return np.stack([shade, shade, shade], axis=1)


def write_gexf(
    path: str | Path,
    adjacency: sp.spmatrix,
    positions: np.ndarray | None = None,
    node_labels: np.ndarray | None = None,
    node_colors: np.ndarray | None = None,
) -> Path:
    """Write a symmetric weighted graph as GEXF 1.2.

    Parameters
    ----------
    adjacency:
        symmetric (or upper-triangular) sparse matrix; only ``i < j``
        entries are written as undirected edges.
    positions:
        optional ``(n, 2)`` layout coordinates (``viz:position``).
    node_labels:
        optional per-node labels (defaults to the node index).
    node_colors:
        optional ``(n, 3)`` uint8 RGB (``viz:color``); defaults to
        :func:`degree_colors` of the adjacency.
    """
    a = sp.csr_matrix(adjacency)
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise LayoutError("adjacency must be square")
    if positions is not None and positions.shape != (n, 2):
        raise LayoutError(f"positions must be ({n}, 2)")
    sym = a.maximum(a.T)
    degrees = np.diff(sym.tocsr().indptr)
    colors = node_colors if node_colors is not None else degree_colors(degrees)
    if colors.shape != (n, 3):
        raise LayoutError(f"node_colors must be ({n}, 3)")

    ET.register_namespace("", _GEXF_NS)
    ET.register_namespace("viz", _VIZ_NS)
    gexf = ET.Element(f"{{{_GEXF_NS}}}gexf", version="1.2")
    graph = ET.SubElement(
        gexf, f"{{{_GEXF_NS}}}graph", defaultedgetype="undirected", mode="static"
    )
    nodes_el = ET.SubElement(graph, f"{{{_GEXF_NS}}}nodes")
    for i in range(n):
        label = str(node_labels[i]) if node_labels is not None else str(i)
        node = ET.SubElement(
            nodes_el, f"{{{_GEXF_NS}}}node", id=str(i), label=label
        )
        r, g, b = (int(c) for c in colors[i])
        ET.SubElement(
            node, f"{{{_VIZ_NS}}}color", r=str(r), g=str(g), b=str(b)
        )
        if positions is not None:
            ET.SubElement(
                node,
                f"{{{_VIZ_NS}}}position",
                x=f"{positions[i, 0]:.4f}",
                y=f"{positions[i, 1]:.4f}",
                z="0.0",
            )
    edges_el = ET.SubElement(graph, f"{{{_GEXF_NS}}}edges")
    coo = sp.triu(sym, k=1).tocoo()
    for eid, (i, j, w) in enumerate(zip(coo.row, coo.col, coo.data)):
        ET.SubElement(
            edges_el,
            f"{{{_GEXF_NS}}}edge",
            id=str(eid),
            source=str(int(i)),
            target=str(int(j)),
            weight=str(float(w)),
        )
    path = Path(path)
    tree = ET.ElementTree(gexf)
    ET.indent(tree)
    tree.write(path, encoding="utf-8", xml_declaration=True)
    return path
