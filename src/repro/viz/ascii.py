"""Terminal plots: log-log scatter, histograms, and time series.

No plotting library is assumed offline, so the examples and benchmark
reports render the paper's figures as text — good enough to eyeball the
flat head / steep tail of Figure 3 and the C = 1 spike of Figure 4.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_loglog", "ascii_histogram", "ascii_series"]


def _scatter_grid(
    x: np.ndarray,
    y: np.ndarray,
    width: int,
    height: int,
    log_x: bool,
    log_y: bool,
    marks: str = "o",
) -> tuple[list[list[str]], tuple[float, float], tuple[float, float]]:
    good = (x > 0 if log_x else np.isfinite(x)) & (
        y > 0 if log_y else np.isfinite(y)
    )
    x, y = x[good].astype(float), y[good].astype(float)
    if len(x) == 0:
        return [[" "] * width for _ in range(height)], (0, 1), (0, 1)
    tx = np.log10(x) if log_x else x
    ty = np.log10(y) if log_y else y
    x_lo, x_hi = float(tx.min()), float(tx.max())
    y_lo, y_hi = float(ty.min()), float(ty.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    cols = np.clip(((tx - x_lo) / x_span * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(
        ((ty - y_lo) / y_span * (height - 1)).astype(int), 0, height - 1
    )
    for c, r in zip(cols, rows):
        grid[height - 1 - r][c] = marks
    return grid, (x_lo, x_hi), (y_lo, y_hi)


def ascii_loglog(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 64,
    height: int = 20,
    title: str = "",
    overlays: list[tuple[np.ndarray, np.ndarray, str]] | None = None,
) -> str:
    """Log-log scatter plot; ``overlays`` adds (x, y, mark) series (e.g.
    the fitted curves of Figure 3)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    grid, (x_lo, x_hi), (y_lo, y_hi) = _scatter_grid(
        x, y, width, height, log_x=True, log_y=True
    )
    for ox, oy, mark in overlays or []:
        ox, oy = np.asarray(ox, dtype=float), np.asarray(oy, dtype=float)
        good = (ox > 0) & (oy > 0)
        ox, oy = ox[good], oy[good]
        if len(ox) == 0:
            continue
        tx, ty = np.log10(ox), np.log10(oy)
        inside = (tx >= x_lo) & (tx <= x_hi) & (ty >= y_lo) & (ty <= y_hi)
        tx, ty = tx[inside], ty[inside]
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0
        cols = np.clip(((tx - x_lo) / x_span * (width - 1)).astype(int), 0, width - 1)
        rows = np.clip(((ty - y_lo) / y_span * (height - 1)).astype(int), 0, height - 1)
        for c, r in zip(cols, rows):
            if grid[height - 1 - r][c] == " ":
                grid[height - 1 - r][c] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"  10^{y_hi:.1f} +" + "-" * width)
    for row in grid:
        lines.append("         |" + "".join(row))
    lines.append(f"  10^{y_lo:.1f} +" + "-" * width)
    lines.append(f"          10^{x_lo:.1f}" + " " * max(0, width - 16) + f"10^{x_hi:.1f}")
    return "\n".join(lines)


def ascii_histogram(
    edges: np.ndarray,
    counts: np.ndarray,
    width: int = 50,
    title: str = "",
    log_counts: bool = False,
) -> str:
    """Horizontal bar histogram (Figure 4 style)."""
    counts = np.asarray(counts, dtype=float)
    lines = [title] if title else []
    if len(counts) == 0:
        lines.append("(empty)")
        return "\n".join(lines)
    vals = np.log10(counts + 1) if log_counts else counts
    top = vals.max() or 1.0
    for i, c in enumerate(counts):
        lo, hi = edges[i], edges[i + 1]
        bar = "#" * int(round(vals[i] / top * width))
        lines.append(f"  [{lo:5.2f},{hi:5.2f})  {bar} {int(c)}")
    return "\n".join(lines)


def ascii_series(
    values: np.ndarray, width: int = 64, height: int = 12, title: str = ""
) -> str:
    """Line-ish plot of a time series (e.g. epidemic prevalence)."""
    values = np.asarray(values, dtype=float)
    x = np.arange(len(values), dtype=float) + 1.0
    grid, _, (y_lo, y_hi) = _scatter_grid(
        x, values, width, height, log_x=False, log_y=False, marks="*"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(f"  {y_hi:10.1f} +" + "-" * width)
    for row in grid:
        lines.append("             |" + "".join(row))
    lines.append(f"  {y_lo:10.1f} +" + "-" * width)
    lines.append(f"              t=0" + " " * max(0, width - 12) + f"t={len(values)}")
    return "\n".join(lines)
