"""Figure-data exporters: CSV series for every paper figure.

The benchmarks print shape-level comparisons; these exporters write the
underlying series so the figures can be re-plotted with any external tool
(gnuplot, matplotlib elsewhere, a spreadsheet).  One file per figure,
deliberately plain CSV with a header comment naming the paper figure.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..analysis.clustering import clustering_histogram, local_clustering
from ..analysis.degree import degree_distribution
from ..analysis.fits import compare_fits
from ..analysis.groups import age_group_degree_distributions
from ..core.network import CollocationNetwork
from ..synthpop.person import PersonTable

__all__ = [
    "export_fig3_csv",
    "export_fig4_csv",
    "export_fig5_csv",
    "export_all_figure_data",
]


def _write_csv(path: Path, header: str, columns: dict[str, np.ndarray]) -> Path:
    names = list(columns)
    rows = len(next(iter(columns.values())))
    lines = [f"# {header}", ",".join(names)]
    for i in range(rows):
        lines.append(
            ",".join(_fmt(columns[name][i]) for name in names)
        )
    path.write_text("\n".join(lines) + "\n")
    return path


def _fmt(value) -> str:
    if isinstance(value, (float, np.floating)):
        return f"{value:.6g}"
    return str(value)


def export_fig3_csv(network: CollocationNetwork, path: str | Path) -> Path:
    """Figure 3 series: degree, count, P(k), and the three fitted curves."""
    dist = degree_distribution(network.degrees())
    fits = compare_fits(dist)
    k = dist.degrees.astype(float)
    return _write_csv(
        Path(path),
        "paper Figure 3: vertex degree distribution + fits",
        {
            "degree": dist.degrees,
            "count": dist.counts,
            "fraction": dist.fractions,
            "power_law": fits["power_law"].predict(k),
            "truncated_power_law": fits["truncated_power_law"].predict(k),
            "exponential": fits["exponential"].predict(k),
        },
    )


def export_fig4_csv(
    network: CollocationNetwork, path: str | Path, n_bins: int = 20
) -> Path:
    """Figure 4 series: clustering-coefficient histogram."""
    coeffs = local_clustering(network)
    edges, counts = clustering_histogram(
        coeffs, n_bins=n_bins, degrees=network.degrees()
    )
    return _write_csv(
        Path(path),
        "paper Figure 4: local clustering coefficient histogram",
        {
            "bin_lo": edges[:-1],
            "bin_hi": edges[1:],
            "count": counts,
        },
    )


def export_fig5_csv(
    network: CollocationNetwork, persons: PersonTable, path: str | Path
) -> Path:
    """Figure 5 series: within-group degree distributions, long format."""
    dists = age_group_degree_distributions(network, persons)
    groups, degrees, counts = [], [], []
    for label, dist in dists.items():
        groups.extend([label] * len(dist.degrees))
        degrees.extend(dist.degrees.tolist())
        counts.extend(dist.counts.tolist())
    return _write_csv(
        Path(path),
        "paper Figure 5: within-age-group degree distributions",
        {
            "group": np.array(groups),
            "degree": np.array(degrees),
            "count": np.array(counts),
        },
    )


def export_all_figure_data(
    network: CollocationNetwork,
    persons: PersonTable,
    directory: str | Path,
) -> list[Path]:
    """Write fig3/fig4/fig5 CSVs into a directory; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [
        export_fig3_csv(network, directory / "fig3_degree_distribution.csv"),
        export_fig4_csv(network, directory / "fig4_clustering_histogram.csv"),
        export_fig5_csv(network, persons, directory / "fig5_age_groups.csv"),
    ]
