"""ForceAtlas2-style force-directed layout.

Implements the force model of Jacomy et al.'s ForceAtlas2 (the layout the
paper uses in Gephi): degree-weighted repulsion ``k_r (d_i+1)(d_j+1)/dist``,
linear attraction along edges scaled by edge weight, a gravity term pulling
components toward the origin, and adaptive global speed with per-iteration
swing damping.  "The positioning of nodes is force-directed such that
clusters of highly connected nodes are positioned closer, as are nodes with
greater edge weights."

Repulsion is computed in row blocks (O(n²) work, O(block·n) memory), which
comfortably handles the few-thousand-node ego networks of Figures 1–2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..errors import LayoutError

__all__ = ["ForceAtlas2Layout", "forceatlas2_layout"]

_MAX_NODES = 50_000


@dataclass
class ForceAtlas2Layout:
    """Layout state and parameters.

    Attributes
    ----------
    positions:
        ``(n, 2)`` float64 coordinates, updated in place by :meth:`step`.
    """

    adjacency: sp.csr_matrix
    scaling: float = 2.0
    gravity: float = 1.0
    edge_weight_influence: float = 1.0
    jitter_tolerance: float = 1.0
    block_rows: int = 1024
    seed: int = 0
    positions: np.ndarray = field(init=False)
    speed: float = field(init=False, default=1.0)
    speed_efficiency: float = field(init=False, default=1.0)

    def __post_init__(self) -> None:
        a = sp.csr_matrix(self.adjacency)
        if a.shape[0] != a.shape[1]:
            raise LayoutError("adjacency must be square")
        if a.shape[0] > _MAX_NODES:
            raise LayoutError(
                f"layout supports up to {_MAX_NODES} nodes, got {a.shape[0]}"
            )
        if (a != a.T).nnz:
            a = ((a + a.T) / 2).tocsr()
        self.adjacency = a
        n = a.shape[0]
        rng = np.random.default_rng(self.seed)
        self.positions = rng.normal(0.0, n**0.5, size=(n, 2))
        self.degrees = np.diff(a.indptr).astype(np.float64)
        if self.edge_weight_influence == 1.0:
            self._weights = a.data.astype(np.float64)
        else:
            self._weights = a.data.astype(np.float64) ** self.edge_weight_influence

    @property
    def n_nodes(self) -> int:
        return self.adjacency.shape[0]

    # -- forces ------------------------------------------------------------------

    def _repulsion(self) -> np.ndarray:
        """Degree-weighted pairwise repulsion, block-wise."""
        pos = self.positions
        n = self.n_nodes
        mass = self.degrees + 1.0
        force = np.zeros_like(pos)
        for lo in range(0, n, self.block_rows):
            hi = min(n, lo + self.block_rows)
            dx = pos[lo:hi, 0:1] - pos[None, :, 0]  # (b, n)
            dy = pos[lo:hi, 1:2] - pos[None, :, 1]
            d2 = dx * dx + dy * dy
            np.maximum(d2, 1e-6, out=d2)
            coef = self.scaling * mass[lo:hi, None] * mass[None, :] / d2
            # zero self-interaction
            rows = np.arange(lo, hi)
            coef[rows - lo, rows] = 0.0
            force[lo:hi, 0] += (coef * dx).sum(axis=1)
            force[lo:hi, 1] += (coef * dy).sum(axis=1)
        return force

    def _attraction(self) -> np.ndarray:
        """Linear attraction along edges (weighted)."""
        coo = self.adjacency.tocoo()
        pos = self.positions
        dx = pos[coo.col, 0] - pos[coo.row, 0]
        dy = pos[coo.col, 1] - pos[coo.row, 1]
        w = (
            coo.data.astype(np.float64) ** self.edge_weight_influence
            if self.edge_weight_influence != 1.0
            else coo.data.astype(np.float64)
        )
        force = np.zeros_like(pos)
        np.add.at(force[:, 0], coo.row, w * dx)
        np.add.at(force[:, 1], coo.row, w * dy)
        return force

    def _gravity(self) -> np.ndarray:
        """Pull toward the origin proportional to mass."""
        pos = self.positions
        dist = np.hypot(pos[:, 0], pos[:, 1])
        np.maximum(dist, 1e-6, out=dist)
        mass = self.degrees + 1.0
        coef = -self.gravity * mass / dist
        return pos * coef[:, None]

    # -- integration ------------------------------------------------------------------

    def step(self) -> float:
        """One ForceAtlas2 iteration; returns the mean node displacement."""
        force = self._repulsion() + self._attraction() + self._gravity()
        mass = self.degrees + 1.0
        norm = np.hypot(force[:, 0], force[:, 1])

        # adaptive speed (simplified FA2 swing/traction scheme)
        if not hasattr(self, "_last_force"):
            self._last_force = np.zeros_like(force)
        swing_vec = force - self._last_force
        swing = mass * np.hypot(swing_vec[:, 0], swing_vec[:, 1])
        traction_vec = force + self._last_force
        traction = 0.5 * mass * np.hypot(traction_vec[:, 0], traction_vec[:, 1])
        total_swing = float(swing.sum()) + 1e-12
        total_traction = float(traction.sum()) + 1e-12
        target = self.jitter_tolerance * total_traction / total_swing
        self.speed = min(self.speed * 1.5, target, 10.0)
        self._last_force = force

        factor = self.speed / (1.0 + self.speed * np.sqrt(swing / mass + 1e-12))
        displacement = force * factor[:, None]
        step_len = np.hypot(displacement[:, 0], displacement[:, 1])
        cap = 10.0 * np.sqrt(self.n_nodes)
        too_far = step_len > cap
        if too_far.any():
            displacement[too_far] *= (cap / step_len[too_far])[:, None]
        self.positions += displacement
        return float(np.hypot(displacement[:, 0], displacement[:, 1]).mean())

    def run(self, iterations: int = 100, tol: float = 1e-3) -> np.ndarray:
        """Iterate until convergence or ``iterations``; returns positions."""
        if iterations < 1:
            raise LayoutError("iterations must be >= 1")
        scale = np.sqrt(self.n_nodes) + 1.0
        for _ in range(iterations):
            moved = self.step()
            if moved < tol * scale:
                break
        return self.positions


def forceatlas2_layout(
    adjacency: sp.spmatrix,
    iterations: int = 100,
    seed: int = 0,
    **params: float,
) -> np.ndarray:
    """One-call layout: returns ``(n, 2)`` positions."""
    layout = ForceAtlas2Layout(adjacency=sp.csr_matrix(adjacency), seed=seed, **params)
    return layout.run(iterations=iterations)
