"""Preset experiment scenarios.

Named, documented configurations so experiments are reproducible by name
rather than by a bag of numbers.  ``paper`` is the scenario of record
(don't run it on a laptop); the laptop tiers trade fidelity for wall time.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import HOURS_PER_WEEK, ScaleConfig, SimulationConfig
from .errors import ConfigError

__all__ = ["Scenario", "SCENARIOS", "get_scenario"]


@dataclass(frozen=True)
class Scenario:
    """A named world + run configuration."""

    name: str
    description: str
    scale: ScaleConfig
    duration_hours: int
    n_ranks: int

    def simulation_config(self) -> SimulationConfig:
        return SimulationConfig(
            scale=self.scale,
            duration_hours=self.duration_hours,
            n_ranks=self.n_ranks,
        )


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="smoke",
            description="seconds-scale CI smoke test (1 k persons, 1 week, 2 ranks)",
            scale=ScaleConfig(n_persons=1_000, seed=1),
            duration_hours=HOURS_PER_WEEK,
            n_ranks=2,
        ),
        Scenario(
            name="laptop",
            description="default laptop experiment (10 k persons, 1 week, 8 ranks)",
            scale=ScaleConfig(n_persons=10_000, seed=42),
            duration_hours=HOURS_PER_WEEK,
            n_ranks=8,
        ),
        Scenario(
            name="bench",
            description="the benchmark world of EXPERIMENTS.md (6 k persons, seed 2017)",
            scale=ScaleConfig(n_persons=6_000, seed=2017),
            duration_hours=HOURS_PER_WEEK,
            n_ranks=8,
        ),
        Scenario(
            name="laptop-4wk",
            description="the paper's 4-week duration at laptop scale",
            scale=ScaleConfig(n_persons=10_000, seed=42),
            duration_hours=4 * HOURS_PER_WEEK,
            n_ranks=8,
        ),
        Scenario(
            name="workstation",
            description="large shared-memory box (100 k persons, 4 weeks, 32 ranks)",
            scale=ScaleConfig(n_persons=100_000, seed=42),
            duration_hours=4 * HOURS_PER_WEEK,
            n_ranks=32,
        ),
        Scenario(
            name="paper",
            description=(
                "the paper's scenario of record: 2.9 M persons, 4 weeks, "
                "256 ranks (requires cluster-class memory)"
            ),
            scale=ScaleConfig(n_persons=2_900_000, seed=42),
            duration_hours=4 * HOURS_PER_WEEK,
            n_ranks=256,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name; lists the options on a miss."""
    try:
        return SCENARIOS[name]
    except KeyError:
        options = ", ".join(sorted(SCENARIOS))
        raise ConfigError(
            f"unknown scenario {name!r}; available: {options}"
        ) from None
