"""Hourly weekly activity schedules.

chiSIM drives agents with "a daily schedule for each person [that] specifies
the activity and associated location with one-hour time resolution".  This
module generates those schedules as dense weekly grids:

* ``activity_grid``: ``(n_persons, 168) uint8`` activity codes;
* ``place_grid``:    ``(n_persons, 168) uint32`` place ids.

A grid is deterministic in ``(seed, week_index)`` but *varies between weeks*
(different outing choices), reproducing the paper's observation that yearly
log volume "depend[s] on the variability of the daily activity schedule".

Schedules are calibrated to average roughly five activity changes per
person-day — the constant the paper uses to size its event logs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..config import HOURS_PER_DAY, HOURS_PER_WEEK, ScheduleConfig
from ..errors import ScheduleError
from .person import NO_PLACE, PersonTable

__all__ = ["Activity", "ACTIVITY_NAMES", "WeekGrid", "WeeklyScheduleGenerator"]


class Activity(enum.IntEnum):
    """Activity codes stored in log records.  Values are stable."""

    AT_HOME = 0
    AT_SCHOOL = 1
    AT_WORK = 2
    LEISURE = 3
    ERRAND = 4
    LUNCH_OUT = 5


ACTIVITY_NAMES = {a: a.name.lower() for a in Activity}

WEEKDAYS = range(5)
WEEKEND = range(5, 7)


@dataclass
class WeekGrid:
    """One week of schedules for the whole population."""

    week_index: int
    activity: np.ndarray  # (n, 168) uint8
    place: np.ndarray  # (n, 168) uint32

    def __post_init__(self) -> None:
        if self.activity.shape != self.place.shape:
            raise ScheduleError("activity/place grids must have equal shape")
        if self.activity.shape[1] != HOURS_PER_WEEK:
            raise ScheduleError(
                f"grids must have {HOURS_PER_WEEK} hour columns, "
                f"got {self.activity.shape[1]}"
            )

    @property
    def n_persons(self) -> int:
        return self.activity.shape[0]

    def changes_per_person_day(self) -> float:
        """Mean number of activity changes per person per day.

        An activity change is an hour boundary where (activity, place)
        differs from the previous hour; the transition into hour 0 from the
        previous week's last hour is not counted (both are AT_HOME).
        """
        diff = (self.activity[:, 1:] != self.activity[:, :-1]) | (
            self.place[:, 1:] != self.place[:, :-1]
        )
        return float(diff.sum()) / (self.n_persons * 7)


class WeeklyScheduleGenerator:
    """Generates per-week schedule grids for a population.

    Parameters
    ----------
    persons:
        The population; schools/workplaces/favorites must be assigned.
    config:
        Schedule shape parameters.
    seed:
        Base seed; week *w* uses the spawn-key ``(seed, w)`` stream so any
        week can be generated independently and reproducibly (ranks in a
        distributed run generate only the weeks they need).
    """

    def __init__(
        self, persons: PersonTable, config: ScheduleConfig, seed: int
    ) -> None:
        if persons.favorites.shape[1] < 1:
            raise ScheduleError("persons need at least one favorite place")
        self.persons = persons
        self.config = config
        self.seed = seed
        # per-person stable work start jitter: a person keeps their shift
        base_rng = np.random.default_rng(np.random.SeedSequence(seed))
        n = len(persons)
        self._work_start = np.clip(
            config.work_start + base_rng.integers(-2, 3, n), 0, 24 - config.work_hours
        ).astype(np.int64)
        # Per-person stable outing propensity: real populations mix
        # home-bodies (who collocate almost only with their household,
        # producing the paper's flat degree-1..7 head and the clustering-
        # coefficient spike at 1.0) with frequent outgoers.  A Beta(0.7,
        # 1.8) factor normalized to mean 1 keeps the configured outing
        # probabilities as the population mean.
        prop = base_rng.beta(0.7, 1.8, n)
        self._propensity = prop / prop.mean() if prop.mean() > 0 else prop

    def _out_prob(self, base: float, rows: np.ndarray | None = None) -> np.ndarray:
        """Per-person outing probability scaled by stable propensity."""
        factor = self._propensity if rows is None else self._propensity[rows]
        return np.clip(base * factor, 0.0, 0.95)

    def _week_rng(self, week_index: int) -> np.random.Generator:
        ss = np.random.SeedSequence(self.seed, spawn_key=(week_index + 1,))
        return np.random.default_rng(ss)

    def _pick_favorite(
        self, rows: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Pick one favorite venue per listed person."""
        fav = self.persons.favorites
        k = fav.shape[1]
        choice = rng.integers(0, k, len(rows))
        return fav[rows, choice]

    def _set_block(
        self,
        grid_act: np.ndarray,
        grid_place: np.ndarray,
        rows: np.ndarray,
        day: int,
        start: np.ndarray,
        duration: np.ndarray,
        activity: Activity,
        place: np.ndarray,
    ) -> None:
        """Write an activity block of per-person start/duration (vectorized
        over persons; loops only over the ≤ max-duration offsets)."""
        if len(rows) == 0:
            return
        base = day * HOURS_PER_DAY
        max_dur = int(duration.max(initial=0))
        for off in range(max_dur):
            mask = duration > off
            hour = base + start[mask] + off
            ok = hour < (day + 1) * HOURS_PER_DAY  # clip to the day
            r = rows[mask][ok]
            h = hour[ok]
            grid_act[r, h] = int(activity)
            grid_place[r, h] = place[mask][ok]

    def week(self, week_index: int) -> WeekGrid:
        """Generate the grid for week ``week_index`` (0-based)."""
        if week_index < 0:
            raise ScheduleError("week_index must be >= 0")
        persons = self.persons
        cfg = self.config
        n = len(persons)
        rng = self._week_rng(week_index)

        act = np.zeros((n, HOURS_PER_WEEK), dtype=np.uint8)
        place = np.tile(
            persons.household[:, None], (1, HOURS_PER_WEEK)
        ).astype(np.uint32)

        students = np.flatnonzero(persons.is_student)
        workers = np.flatnonzero(persons.is_employed)
        everyone = np.arange(n)

        for day in WEEKDAYS:
            base = day * HOURS_PER_DAY
            # --- school ---
            if len(students):
                sl = slice(base + cfg.school_start, base + cfg.school_end)
                act[students, sl] = int(Activity.AT_SCHOOL)
                place[students, sl] = persons.school[students][:, None]
            # --- work ---
            if len(workers):
                ws = self._work_start[workers]
                dur = np.full(len(workers), cfg.work_hours, dtype=np.int64)
                self._set_block(
                    act, place, workers, day, ws, dur, Activity.AT_WORK,
                    persons.workplace[workers],
                )
                # lunch out replaces one mid-shift hour
                lunch = rng.random(len(workers)) < self._out_prob(cfg.lunch_out_prob, workers)
                lrows = workers[lunch]
                if len(lrows):
                    lstart = ws[lunch] + cfg.work_hours // 2
                    ldur = np.ones(len(lrows), dtype=np.int64)
                    self._set_block(
                        act, place, lrows, day, lstart, ldur,
                        Activity.LUNCH_OUT, self._pick_favorite(lrows, rng),
                    )
            # --- after-school activity (clubs, sports, friends) ---
            if len(students):
                after = rng.random(len(students)) < self._out_prob(0.5, students)
                arows = students[after]
                if len(arows):
                    astart = np.full(len(arows), cfg.school_end, dtype=np.int64)
                    adur = rng.integers(1, 3, len(arows))
                    self._set_block(
                        act, place, arows, day, astart, adur, Activity.LEISURE,
                        self._pick_favorite(arows, rng),
                    )
            # --- midday errand for persons with no school/work that day ---
            inactive = np.flatnonzero(~persons.is_student & ~persons.is_employed)
            if len(inactive):
                mid = rng.random(len(inactive)) < self._out_prob(0.6, inactive)
                mrows = inactive[mid]
                if len(mrows):
                    mstart = rng.integers(9, 16, len(mrows))
                    mdur = rng.integers(1, 3, len(mrows))
                    self._set_block(
                        act, place, mrows, day, mstart, mdur, Activity.ERRAND,
                        self._pick_favorite(mrows, rng),
                    )
            # --- evening outing ---
            out = rng.random(n) < self._out_prob(cfg.evening_out_prob)
            orows = everyone[out]
            if len(orows):
                ostart = rng.integers(17, 21, len(orows))
                odur = rng.integers(1, 3, len(orows))
                kind = rng.random(len(orows)) < 0.5
                fav = self._pick_favorite(orows, rng)
                for activity, sel in (
                    (Activity.LEISURE, kind),
                    (Activity.ERRAND, ~kind),
                ):
                    self._set_block(
                        act, place, orows[sel], day, ostart[sel], odur[sel],
                        activity, fav[sel],
                    )

        for day in WEEKEND:
            out = rng.random(n) < self._out_prob(cfg.weekend_out_prob)
            orows = everyone[out]
            if len(orows):
                ostart = rng.integers(10, 19, len(orows))
                odur = rng.integers(1, 5, len(orows))
                self._set_block(
                    act, place, orows, day, ostart, odur, Activity.LEISURE,
                    self._pick_favorite(orows, rng),
                )
            # a second, shorter errand for some
            err = rng.random(n) < self._out_prob(cfg.weekend_out_prob / 2)
            erows = everyone[err]
            if len(erows):
                estart = rng.integers(9, 21, len(erows))
                edur = np.ones(len(erows), dtype=np.int64)
                self._set_block(
                    act, place, erows, day, estart, edur, Activity.ERRAND,
                    self._pick_favorite(erows, rng),
                )

        # guarantee the day starts and ends at home so weeks chain cleanly
        home_cols = []
        for day in range(7):
            home_cols.extend(
                range(day * HOURS_PER_DAY, day * HOURS_PER_DAY + 7)
            )
            home_cols.append(day * HOURS_PER_DAY + 23)
        home_cols = np.array(home_cols)
        act[:, home_cols] = int(Activity.AT_HOME)
        place[:, home_cols] = persons.household[:, None]

        if (place == NO_PLACE).any():
            raise ScheduleError("schedule grid contains NO_PLACE entries")
        return WeekGrid(week_index=week_index, activity=act, place=place)
