"""Person → place assignment: schools, workplaces, favorite venues.

All assignments are distance-aware (a gravity model), because spatial
locality is what makes the paper's spatial rank-partitioning effective:
people mostly attend places near home, so geographically contiguous place
partitions minimize agent migration between ranks.

Schools enforce a capacity cap, and students are placed into classroom
sub-compartments ("can even specify sub-compartments such as classrooms");
the paper attributes the flat 0-14 degree distribution to these constraints.
"""

from __future__ import annotations

import numpy as np

from ..errors import PopulationError
from .person import NO_PLACE

__all__ = [
    "SCHOOL_AGE_MIN",
    "SCHOOL_AGE_MAX",
    "assign_schools",
    "assign_workplaces",
    "assign_favorites",
    "gravity_choice",
]

SCHOOL_AGE_MIN = 5
SCHOOL_AGE_MAX = 18

#: distance decay scale (km) for workplace/venue choice
GRAVITY_KM = 6.0
#: candidate pool size per person for the two-stage gravity sampler
GRAVITY_CANDIDATES = 12
#: employment rate for seniors (65+); adults use ScheduleConfig.employment_rate
SENIOR_EMPLOYMENT_RATE = 0.12


def gravity_choice(
    person_xy: np.ndarray,
    place_ids: np.ndarray,
    place_xy: np.ndarray,
    attractiveness: np.ndarray,
    rng: np.random.Generator,
    k: int = 1,
    decay_km: float = GRAVITY_KM,
    candidates: int = GRAVITY_CANDIDATES,
) -> np.ndarray:
    """Choose *k* places per person by a two-stage gravity model.

    Stage 1 samples ``candidates`` places per person proportional to global
    ``attractiveness`` (size); stage 2 re-weights the candidate set by
    ``exp(-distance / decay_km)`` and draws *k* winners without replacement.

    The two-stage scheme avoids materializing the full ``n_persons ×
    n_places`` distance matrix, which at paper scale would be ~14 TB; the
    candidate pool keeps memory at ``O(n_persons × candidates)`` while
    preserving the size-weighted, distance-decayed choice behaviour.

    Returns a ``(n_persons, k)`` uint32 array of place ids.
    """
    n = len(person_xy)
    if n == 0:
        return np.empty((0, k), dtype=np.uint32)
    if len(place_ids) == 0:
        raise PopulationError("gravity_choice needs at least one place")
    m = len(place_ids)
    c = min(candidates, m)
    if c < k:
        # tiny place pools: sample with replacement to fill k slots
        idx = rng.integers(0, m, size=(n, k))
        return place_ids[idx].astype(np.uint32)

    weights = np.asarray(attractiveness, dtype=np.float64)
    if weights.shape != (m,):
        raise PopulationError("attractiveness must align with place_ids")
    wsum = weights.sum()
    if not np.isfinite(wsum) or wsum <= 0:
        weights = np.ones(m) / m
    else:
        weights = weights / wsum

    cand = rng.choice(m, size=(n, c), p=weights)  # with replacement: fine for pools
    dx = place_xy[cand, 0] - person_xy[:, 0:1]
    dy = place_xy[cand, 1] - person_xy[:, 1:2]
    dist = np.hypot(dx, dy)
    local = np.exp(-dist / decay_km)
    # Gumbel-max trick: draw k winners per row without replacement without
    # a Python loop over persons.
    gumbel = rng.gumbel(size=(n, c))
    scores = np.log(np.maximum(local, 1e-300)) + gumbel
    # duplicate candidates within a row would let "without replacement" pick
    # the same place twice; that is acceptable for favorites (a person may
    # strongly prefer one venue) and irrelevant for k=1.
    top = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    chosen = np.take_along_axis(cand, top, axis=1)
    return place_ids[chosen].astype(np.uint32)


def assign_schools(
    ages: np.ndarray,
    home_xy: np.ndarray,
    school_building_xy: np.ndarray,
    school_capacity: int,
    classroom_size: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Assign school-age children to the nearest school building with space,
    then split each building's students into classroom compartments.

    Returns ``(building_index, classroom_slot)`` per person; non-students get
    ``building_index == NO_PLACE_IDX`` (int64 -1) and classroom 0.  The
    caller converts (building, classroom) pairs into classroom place ids.

    Assignment is round-based: every unassigned child bids for their nearest
    non-full building; overfull buildings keep their closest
    ``capacity`` bidders.  This converges in a handful of rounds and is the
    vectorized analogue of capacitated nearest-facility assignment.
    """
    n = len(ages)
    n_buildings = len(school_building_xy)
    if n_buildings == 0:
        raise PopulationError("no school buildings to assign")
    student = (ages >= SCHOOL_AGE_MIN) & (ages <= SCHOOL_AGE_MAX)
    building = np.full(n, -1, dtype=np.int64)

    student_ids = np.flatnonzero(student)
    if len(student_ids) == 0:
        return building, np.zeros(n, dtype=np.int64)

    # n_students x n_buildings distances; school counts are small (~1 per
    # 1450 persons) so this stays modest even at large n.
    sxy = home_xy[student_ids]
    dist = np.hypot(
        sxy[:, 0:1] - school_building_xy[None, :, 0],
        sxy[:, 1:2] - school_building_xy[None, :, 1],
    )
    pref = np.argsort(dist, axis=1)  # per-student building preference order

    remaining = np.full(n_buildings, school_capacity, dtype=np.int64)
    unassigned = np.arange(len(student_ids))
    round_idx = 0
    while len(unassigned) and round_idx < n_buildings:
        bids = pref[unassigned, round_idx]
        bid_dist = dist[unassigned, bids]
        accepted_rows = []
        for b in np.unique(bids):
            cap = remaining[b]
            rows = np.flatnonzero(bids == b)
            if cap <= 0:
                continue
            if len(rows) > cap:
                keep = rows[np.argsort(bid_dist[rows])[:cap]]
            else:
                keep = rows
            building[student_ids[unassigned[keep]]] = b
            remaining[b] -= len(keep)
            accepted_rows.append(keep)
        if accepted_rows:
            taken = np.concatenate(accepted_rows)
            mask = np.ones(len(unassigned), dtype=bool)
            mask[taken] = False
            unassigned = unassigned[mask]
        round_idx += 1
    if len(unassigned):
        # all buildings full: overflow students join a random building anyway
        # (real districts bus students); keeps every child in school.
        overflow = rng.integers(0, n_buildings, len(unassigned))
        building[student_ids[unassigned]] = overflow

    # classroom split: within a building, group same-age students into
    # classes of ~classroom_size (grade cohorts), so classmates are age peers.
    classroom = np.zeros(n, dtype=np.int64)
    assigned = np.flatnonzero(building >= 0)
    order = np.lexsort((ages[assigned], building[assigned]))
    ordered = assigned[order]
    b_sorted = building[ordered]
    # index within each building's age-sorted roster
    starts = np.concatenate(
        ([0], np.flatnonzero(b_sorted[1:] != b_sorted[:-1]) + 1)
    )
    within = np.arange(len(ordered))
    within = within - np.repeat(within[starts], np.diff(np.append(starts, len(ordered))))
    classroom[ordered] = within // classroom_size
    return building, classroom


def assign_workplaces(
    ages: np.ndarray,
    home_xy: np.ndarray,
    workplace_ids: np.ndarray,
    workplace_xy: np.ndarray,
    workplace_attract: np.ndarray,
    employment_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Assign a workplace id (or NO_PLACE) per person.

    Adults 19-64 are employed with ``employment_rate``; seniors with
    :data:`SENIOR_EMPLOYMENT_RATE`; students and children are not employed.
    Workplace choice follows the gravity model against a heavy-tailed
    attractiveness (≈ size) distribution, producing a log-normal-ish
    workplace size distribution like real firm sizes.
    """
    n = len(ages)
    workplace = np.full(n, NO_PLACE, dtype=np.uint32)
    adult = (ages >= 19) & (ages <= 64)
    senior = ages >= 65
    employed = np.zeros(n, dtype=bool)
    employed[adult] = rng.random(int(adult.sum())) < employment_rate
    employed[senior] = rng.random(int(senior.sum())) < SENIOR_EMPLOYMENT_RATE
    workers = np.flatnonzero(employed)
    if len(workers) == 0:
        return workplace
    chosen = gravity_choice(
        home_xy[workers], workplace_ids, workplace_xy, workplace_attract, rng, k=1
    )
    workplace[workers] = chosen[:, 0]
    return workplace


def assign_favorites(
    home_xy: np.ndarray,
    other_ids: np.ndarray,
    other_xy: np.ndarray,
    other_attract: np.ndarray,
    n_favorites: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Choose each person's rotation of favorite "other" venues.

    Returns ``(n_persons, n_favorites)`` uint32 place ids.  Favorites are
    gravity-chosen: near home and biased toward popular venues, which
    creates the hub places (transit, big stores) that bridge household
    clusters in the collocation network.
    """
    return gravity_choice(
        home_xy, other_ids, other_xy, other_attract, rng, k=n_favorites,
        decay_km=GRAVITY_KM / 2.0,
    )
