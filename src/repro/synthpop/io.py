"""Population persistence (npz).

The paper's input data lives in flat files totalling ~800 MB; we persist the
synthetic equivalent as a single compressed ``.npz`` so examples and
benchmarks can reuse a generated world instead of regenerating it.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..config import ScaleConfig
from ..errors import PopulationError
from .generator import SyntheticPopulation
from .person import PersonTable
from .places import PlaceTable

__all__ = ["save_population", "load_population"]

_FORMAT_VERSION = 1


def save_population(pop: SyntheticPopulation, path: str | Path) -> Path:
    """Write a population to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "version": _FORMAT_VERSION,
        "seed": pop.seed,
        "scale": asdict(pop.scale),
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        person_age=pop.persons.age,
        person_household=pop.persons.household,
        person_school=pop.persons.school,
        person_workplace=pop.persons.workplace,
        person_favorites=pop.persons.favorites,
        place_kind=pop.places.kind,
        place_x=pop.places.x,
        place_y=pop.places.y,
        place_capacity=pop.places.capacity,
    )
    return path


def load_population(path: str | Path) -> SyntheticPopulation:
    """Load a population previously written by :func:`save_population`."""
    path = Path(path)
    try:
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            if meta.get("version") != _FORMAT_VERSION:
                raise PopulationError(
                    f"unsupported population file version {meta.get('version')}"
                )
            persons = PersonTable(
                age=data["person_age"],
                household=data["person_household"],
                school=data["person_school"],
                workplace=data["person_workplace"],
                favorites=data["person_favorites"],
            )
            places = PlaceTable(
                kind=data["place_kind"],
                x=data["place_x"],
                y=data["place_y"],
                capacity=data["place_capacity"],
            )
            scale = ScaleConfig(**meta["scale"])
    except (KeyError, ValueError, json.JSONDecodeError) as exc:
        raise PopulationError(f"invalid population file {path}: {exc}") from exc
    return SyntheticPopulation(
        scale=scale, persons=persons, places=places, seed=meta["seed"]
    )
