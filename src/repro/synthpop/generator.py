"""Top-level synthetic population builder.

Produces a :class:`SyntheticPopulation` — the stand-in for chiSIM's ~800 MB
of census-derived input files — from a :class:`~repro.config.ScaleConfig`
and a seed.  The place id space is laid out in contiguous blocks::

    [ homes | school classrooms | workplaces | other venues ]

so that place kind can be recovered from an id by range checks, mirroring
how the paper cross-references uint32 log ids back to input tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ScaleConfig, ScheduleConfig
from ..errors import PopulationError
from .assignment import (
    assign_favorites,
    assign_schools,
    assign_workplaces,
)
from .household import generate_households
from .person import NO_PLACE, PersonTable
from .places import PlaceKind, PlaceTable, scatter_city_coords
from .schedule import WeeklyScheduleGenerator

__all__ = ["SyntheticPopulation", "generate_population"]


@dataclass
class SyntheticPopulation:
    """A generated world: persons, places, and schedule generator inputs.

    This plays the role of chiSIM's input data: "multiple files for
    activities, persons, and locations".
    """

    scale: ScaleConfig
    persons: PersonTable
    places: PlaceTable
    seed: int

    def __post_init__(self) -> None:
        self.persons.validate_against_places(len(self.places))

    @property
    def n_persons(self) -> int:
        return len(self.persons)

    @property
    def n_places(self) -> int:
        return len(self.places)

    def schedule_generator(
        self, config: ScheduleConfig | None = None
    ) -> WeeklyScheduleGenerator:
        """Build the weekly schedule generator for this population."""
        return WeeklyScheduleGenerator(
            self.persons, config or ScheduleConfig(), seed=self.seed
        )

    def summary(self) -> dict[str, int | float]:
        """Census-style summary used by examples and experiment reports."""
        persons = self.persons
        groups = persons.age_group()
        return {
            "n_persons": self.n_persons,
            "n_places": self.n_places,
            **{
                f"places_{k}": v for k, v in self.places.counts_by_kind().items()
            },
            "n_students": int(persons.is_student.sum()),
            "n_employed": int(persons.is_employed.sum()),
            "mean_age": float(persons.age.mean()),
            **{
                f"age_group_{i}": int(np.count_nonzero(groups == i))
                for i in range(int(groups.max(initial=0)) + 1)
            },
        }


def generate_population(
    scale: ScaleConfig | None = None,
    schedule: ScheduleConfig | None = None,
    seed: int | None = None,
) -> SyntheticPopulation:
    """Generate a full synthetic population.

    Parameters
    ----------
    scale:
        World size; defaults to laptop scale (10 k persons).
    schedule:
        Used for the employment rate during workplace assignment.
    seed:
        Overrides ``scale.seed`` when given.
    """
    scale = scale or ScaleConfig()
    schedule = schedule or ScheduleConfig()
    seed = scale.seed if seed is None else seed
    root = np.random.SeedSequence(seed)
    (hh_ss, place_ss, school_ss, work_ss, fav_ss) = root.spawn(5)

    plan = generate_households(scale, np.random.default_rng(hh_ss))
    n_households = plan.n_households

    place_rng = np.random.default_rng(place_ss)

    # --- place coordinate + capacity blocks -------------------------------
    home_x, home_y = scatter_city_coords(n_households, scale.city_km, place_rng)
    home_cap = plan.sizes.astype(np.uint32)

    n_schools = scale.n_schools
    school_x, school_y = scatter_city_coords(n_schools, scale.city_km, place_rng)
    classes_per_school = max(1, -(-scale.school_capacity // scale.classroom_size))

    n_work = scale.n_workplaces
    work_x, work_y = scatter_city_coords(n_work, scale.city_km, place_rng)
    # heavy-tailed firm sizes (log-normal), the usual empirical shape
    work_attract = place_rng.lognormal(mean=2.0, sigma=1.1, size=n_work)
    work_cap = np.maximum(1, work_attract).astype(np.uint32)

    n_other = scale.n_other_places
    other_x, other_y = scatter_city_coords(n_other, scale.city_km, place_rng)
    # venues have an even heavier tail (transit hubs, big-box stores)
    other_attract = place_rng.lognormal(mean=2.0, sigma=0.9, size=n_other)
    other_cap = np.maximum(1, other_attract).astype(np.uint32)

    # --- id layout ---------------------------------------------------------
    school_offset = n_households
    n_classrooms = n_schools * classes_per_school
    work_offset = school_offset + n_classrooms
    other_offset = work_offset + n_work
    n_places = other_offset + n_other

    kind = np.empty(n_places, dtype=np.uint8)
    x = np.empty(n_places, dtype=np.float32)
    y = np.empty(n_places, dtype=np.float32)
    capacity = np.empty(n_places, dtype=np.uint32)

    kind[:school_offset] = int(PlaceKind.HOME)
    x[:school_offset], y[:school_offset] = home_x, home_y
    capacity[:school_offset] = home_cap

    kind[school_offset:work_offset] = int(PlaceKind.SCHOOL)
    x[school_offset:work_offset] = np.repeat(school_x, classes_per_school)
    y[school_offset:work_offset] = np.repeat(school_y, classes_per_school)
    capacity[school_offset:work_offset] = scale.classroom_size

    kind[work_offset:other_offset] = int(PlaceKind.WORKPLACE)
    x[work_offset:other_offset], y[work_offset:other_offset] = work_x, work_y
    capacity[work_offset:other_offset] = work_cap

    kind[other_offset:] = int(PlaceKind.OTHER)
    x[other_offset:], y[other_offset:] = other_x, other_y
    capacity[other_offset:] = other_cap

    places = PlaceTable(kind=kind, x=x, y=y, capacity=capacity)

    # --- person assignments -------------------------------------------------
    person_home_xy = np.stack(
        [home_x[plan.person_household], home_y[plan.person_household]], axis=1
    ).astype(np.float64)

    building, classroom = assign_schools(
        plan.ages,
        person_home_xy,
        np.stack([school_x, school_y], axis=1).astype(np.float64),
        scale.school_capacity,
        scale.classroom_size,
        np.random.default_rng(school_ss),
    )
    school = np.full(plan.n_persons, NO_PLACE, dtype=np.uint32)
    has_school = building >= 0
    clamped_class = np.minimum(classroom[has_school], classes_per_school - 1)
    school[has_school] = (
        school_offset
        + building[has_school] * classes_per_school
        + clamped_class
    ).astype(np.uint32)

    workplace_ids = np.arange(work_offset, other_offset, dtype=np.uint32)
    workplace = assign_workplaces(
        plan.ages,
        person_home_xy,
        workplace_ids,
        np.stack([work_x, work_y], axis=1).astype(np.float64),
        work_attract,
        schedule.employment_rate,
        np.random.default_rng(work_ss),
    )
    # students are not also employed (keeps schedules conflict-free)
    workplace[school != NO_PLACE] = NO_PLACE

    other_ids = np.arange(other_offset, n_places, dtype=np.uint32)
    favorites = assign_favorites(
        person_home_xy,
        other_ids,
        np.stack([other_x, other_y], axis=1).astype(np.float64),
        other_attract,
        schedule.favorite_places,
        np.random.default_rng(fav_ss),
    )

    persons = PersonTable(
        age=plan.ages,
        household=plan.person_household.astype(np.uint32),
        school=school,
        workplace=workplace,
        favorites=favorites,
    )
    pop = SyntheticPopulation(scale=scale, persons=persons, places=places, seed=seed)
    if pop.n_persons != scale.n_persons:
        raise PopulationError(
            f"generated {pop.n_persons} persons, expected {scale.n_persons}"
        )
    return pop
