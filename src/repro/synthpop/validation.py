"""Population plausibility validation.

chiSIM's credibility rests on its input population being census-shaped;
this module is the automated audit for our synthetic stand-in.  It checks
structural integrity (references, coverage) and statistical plausibility
(age pyramid, household sizes, enrollment/employment rates, schedule
calibration) and returns human-readable findings instead of raising, so
callers can decide severity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ScheduleConfig
from .generator import SyntheticPopulation
from .person import NO_PLACE
from .places import PlaceKind

__all__ = ["ValidationReport", "validate_population"]


@dataclass
class ValidationReport:
    """Outcome of a population audit."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        lines = [f"population validation: {'OK' if self.ok else 'FAILED'}"]
        for e in self.errors:
            lines.append(f"  ERROR: {e}")
        for w in self.warnings:
            lines.append(f"  warn : {w}")
        for k, v in self.metrics.items():
            lines.append(f"  {k:>28}: {v:.3f}")
        return "\n".join(lines)


def validate_population(
    pop: SyntheticPopulation,
    schedule: ScheduleConfig | None = None,
    check_schedules: bool = True,
) -> ValidationReport:
    """Audit a population for structural and statistical plausibility."""
    report = ValidationReport()
    persons, places = pop.persons, pop.places

    # --- structural integrity -------------------------------------------------
    try:
        persons.validate_against_places(len(places))
    except Exception as exc:  # noqa: BLE001 - converted to a finding
        report.errors.append(f"reference integrity: {exc}")

    counts = places.counts_by_kind()
    for kind in ("home", "school", "workplace", "other"):
        if counts.get(kind, 0) == 0:
            report.errors.append(f"no places of kind {kind!r}")

    hh_counts = np.bincount(persons.household, minlength=len(places))
    homes = places.ids_of_kind(PlaceKind.HOME)
    occupied = hh_counts[homes]
    if (occupied == 0).any():
        report.warnings.append(
            f"{int((occupied == 0).sum())} home places have no residents"
        )

    # --- statistical plausibility ----------------------------------------------
    ages = persons.age.astype(np.int64)
    n = len(persons)
    child_share = np.count_nonzero(ages <= 14) / n
    senior_share = np.count_nonzero(ages >= 65) / n
    report.metrics["child_share"] = child_share
    report.metrics["senior_share"] = senior_share
    if not 0.08 <= child_share <= 0.40:
        report.warnings.append(
            f"child share {child_share:.2f} outside census band 0.08-0.40"
        )
    if not 0.04 <= senior_share <= 0.35:
        report.warnings.append(
            f"senior share {senior_share:.2f} outside census band 0.04-0.35"
        )

    mean_hh = float(occupied[occupied > 0].mean()) if occupied.size else 0.0
    report.metrics["mean_household_size"] = mean_hh
    target = pop.scale.mean_household_size
    if abs(mean_hh - target) > 0.4:
        report.warnings.append(
            f"mean household size {mean_hh:.2f} far from target {target}"
        )

    school_age = (ages >= 5) & (ages <= 18)
    enrolled = persons.school != NO_PLACE
    if school_age.any():
        enrollment = float(enrolled[school_age].mean())
        report.metrics["enrollment_rate"] = enrollment
        if enrollment < 0.99:
            report.errors.append(
                f"only {enrollment:.1%} of school-age children enrolled"
            )
    if (enrolled & ~school_age).any():
        report.errors.append("non-school-age persons enrolled in school")

    adults = (ages >= 19) & (ages <= 64)
    if adults.any():
        emp = float((persons.workplace[adults] != NO_PLACE).mean())
        report.metrics["adult_employment"] = emp
        if not 0.3 <= emp <= 0.95:
            report.warnings.append(
                f"adult employment {emp:.2f} outside band 0.30-0.95"
            )

    # --- schedule calibration ----------------------------------------------------
    if check_schedules:
        gen = pop.schedule_generator(schedule)
        grid = gen.week(0)
        rate = grid.changes_per_person_day()
        report.metrics["activity_changes_per_day"] = rate
        if not 2.0 <= rate <= 7.0:
            report.warnings.append(
                f"schedule produces {rate:.2f} activity changes/day; the "
                "paper sizes logs on ~5"
            )
        home_night = (
            grid.place[:, 3] == persons.household
        ).mean()  # 3 AM Monday
        report.metrics["home_at_3am"] = float(home_night)
        if home_night < 0.999:
            report.errors.append("agents away from home at 3 AM")

    return report
