"""Columnar person table.

Persons are stored as parallel numpy arrays (a struct-of-arrays layout)
rather than Python objects: at the paper's scale (2.9 M persons) an object
per person is untenable, and every consumer of this table — schedule
generation, the simulation engine, demographic sub-setting — operates on
whole columns at once.

Person ids are implicit row indices, matching the paper's log schema where
the person field of a log record is a uint32 id cross-referenced back to the
model input data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AGE_GROUPS
from ..errors import PopulationError

__all__ = ["NO_PLACE", "PersonTable"]

#: Sentinel place id meaning "no such place" (no school / not employed).
#: Chosen as the max uint32 so real place ids can use the full range below it.
NO_PLACE = np.uint32(0xFFFFFFFF)


@dataclass
class PersonTable:
    """Struct-of-arrays person table.

    Attributes
    ----------
    age:
        ``uint8`` age in years.
    household:
        ``uint32`` place id of the person's home.
    school:
        ``uint32`` place id of the person's school, or :data:`NO_PLACE`.
    workplace:
        ``uint32`` place id of the person's workplace, or :data:`NO_PLACE`.
    favorites:
        ``uint32`` array of shape ``(n, k)`` — the k "other" places the
        person rotates among for errands and leisure.
    """

    age: np.ndarray
    household: np.ndarray
    school: np.ndarray
    workplace: np.ndarray
    favorites: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.age)
        for name in ("household", "school", "workplace"):
            col = getattr(self, name)
            if col.shape != (n,):
                raise PopulationError(
                    f"column {name!r} has shape {col.shape}, expected ({n},)"
                )
        if self.favorites.ndim != 2 or self.favorites.shape[0] != n:
            raise PopulationError(
                f"favorites must be (n, k), got {self.favorites.shape}"
            )
        self.age = self.age.astype(np.uint8, copy=False)
        for name in ("household", "school", "workplace", "favorites"):
            setattr(
                self, name, getattr(self, name).astype(np.uint32, copy=False)
            )

    def __len__(self) -> int:
        return len(self.age)

    @property
    def n_persons(self) -> int:
        return len(self.age)

    @property
    def ids(self) -> np.ndarray:
        """Person ids (the row indices), as uint32."""
        return np.arange(len(self), dtype=np.uint32)

    @property
    def is_student(self) -> np.ndarray:
        return self.school != NO_PLACE

    @property
    def is_employed(self) -> np.ndarray:
        return self.workplace != NO_PLACE

    def age_group(self) -> np.ndarray:
        """Index into :data:`repro.config.AGE_GROUPS` per person (uint8)."""
        bins = np.array([hi for _, _, hi in AGE_GROUPS], dtype=np.int64)
        grp = np.searchsorted(bins, self.age.astype(np.int64), side="left")
        if grp.max(initial=0) >= len(AGE_GROUPS):
            raise PopulationError("person age outside supported range")
        return grp.astype(np.uint8)

    def select(self, mask: np.ndarray) -> np.ndarray:
        """Person ids matching a boolean mask (demographic sub-setting).

        This is the query hook the paper describes for "filtering simulation
        results via queries on the input data, e.g. ... persons matching
        certain demographic criteria".
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise PopulationError(
                f"mask shape {mask.shape} does not match population {len(self)}"
            )
        return np.flatnonzero(mask).astype(np.uint32)

    def validate_against_places(self, n_places: int) -> None:
        """Check that all referenced place ids exist (or are NO_PLACE)."""
        for name in ("household",):
            col = getattr(self, name)
            if col.size and col.max() >= n_places:
                raise PopulationError(f"{name} references unknown place id")
        for name in ("school", "workplace"):
            col = getattr(self, name)
            real = col[col != NO_PLACE]
            if real.size and real.max() >= n_places:
                raise PopulationError(f"{name} references unknown place id")
        fav = self.favorites
        if fav.size and fav.max() >= n_places:
            raise PopulationError("favorites reference unknown place id")
