"""Columnar place table with geospatial coordinates.

chiSIM's 1.2 M places are "specifically characterized as geospatial since
they correspond to real locations in the Chicago area".  Our synthetic city
is a square of side ``city_km`` with population density falling off from a
downtown core, which gives the distance-based school/workplace assignment
and the spatial rank-partitioning something realistic to work against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import PopulationError

__all__ = ["PlaceKind", "PlaceTable"]


class PlaceKind(enum.IntEnum):
    """Kinds of places.  Values are stable and stored in npz files."""

    HOME = 0
    SCHOOL = 1
    WORKPLACE = 2
    OTHER = 3


@dataclass
class PlaceTable:
    """Struct-of-arrays place table.

    Attributes
    ----------
    kind:
        ``uint8`` :class:`PlaceKind` value per place.
    x, y:
        ``float32`` coordinates in kilometres within the city square.
    capacity:
        ``uint32`` nominal capacity (school seats, workplace positions,
        venue size).  Homes use their household size.
    """

    kind: np.ndarray
    x: np.ndarray
    y: np.ndarray
    capacity: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.kind)
        for name in ("x", "y", "capacity"):
            col = getattr(self, name)
            if col.shape != (n,):
                raise PopulationError(
                    f"column {name!r} has shape {col.shape}, expected ({n},)"
                )
        self.kind = self.kind.astype(np.uint8, copy=False)
        self.x = self.x.astype(np.float32, copy=False)
        self.y = self.y.astype(np.float32, copy=False)
        self.capacity = self.capacity.astype(np.uint32, copy=False)

    def __len__(self) -> int:
        return len(self.kind)

    @property
    def n_places(self) -> int:
        return len(self.kind)

    def ids_of_kind(self, kind: PlaceKind) -> np.ndarray:
        """Place ids of a given kind, as uint32."""
        return np.flatnonzero(self.kind == int(kind)).astype(np.uint32)

    def coords(self) -> np.ndarray:
        """``(n, 2) float32`` coordinate matrix."""
        return np.stack([self.x, self.y], axis=1)

    def counts_by_kind(self) -> dict[str, int]:
        """Human-readable census of the place table."""
        return {
            kind.name.lower(): int(np.count_nonzero(self.kind == int(kind)))
            for kind in PlaceKind
        }


def scatter_city_coords(
    n: int, city_km: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Sample *n* locations with a dense core and sparse periphery.

    A mixture of a tight Gaussian blob around the city center (the "Loop")
    and a uniform background; clipped to the city square.  Produces the
    center-heavy density that makes spatial partitioning non-trivial.
    """
    if n < 0:
        raise PopulationError(f"cannot place {n} locations")
    core = rng.random(n) < 0.45
    n_core = int(core.sum())
    xs = np.empty(n, dtype=np.float32)
    ys = np.empty(n, dtype=np.float32)
    center = city_km / 2.0
    sigma = city_km / 8.0
    xs[core] = rng.normal(center, sigma, n_core)
    ys[core] = rng.normal(center, sigma, n_core)
    xs[~core] = rng.uniform(0.0, city_km, n - n_core)
    ys[~core] = rng.uniform(0.0, city_km, n - n_core)
    np.clip(xs, 0.0, city_km, out=xs)
    np.clip(ys, 0.0, city_km, out=ys)
    return xs.astype(np.float32), ys.astype(np.float32)
