"""Household generation: sizes, composition, and ages.

Households are the nightly cliques of the collocation network — everyone in
a household is collocated for every home hour — so their size distribution
directly shapes the low-degree head of the paper's Figure 3 (degrees 1-7
each hold ~10^5 persons at Chicago scale, which is what a household-size
mixture produces).

Sizes are drawn as ``1 + Poisson(mean - 1)`` capped at ``MAX_HOUSEHOLD``,
which hits the configured mean household size almost exactly while staying
vectorized.  Composition assigns adults first (one or two, occasionally a
senior household) and fills the remainder with children, producing a
Chicago-like age pyramid (~19% aged 0-14, ~13% aged 65+).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ScaleConfig
from ..errors import PopulationError

__all__ = ["HouseholdPlan", "generate_households", "MAX_HOUSEHOLD"]

MAX_HOUSEHOLD = 8

#: probability a multi-person household has two resident adults
TWO_ADULT_PROB = 0.62
#: probability a household is headed by seniors (65+)
SENIOR_HH_PROB = 0.17


@dataclass
class HouseholdPlan:
    """Output of household generation.

    Attributes
    ----------
    sizes:
        ``int64`` members per household; ``sizes.sum() == n_persons``.
    person_household:
        ``uint32`` household index per person.
    ages:
        ``uint8`` age per person.
    """

    sizes: np.ndarray
    person_household: np.ndarray
    ages: np.ndarray

    @property
    def n_households(self) -> int:
        return len(self.sizes)

    @property
    def n_persons(self) -> int:
        return len(self.ages)


def _sample_sizes(n_persons: int, mean: float, rng: np.random.Generator) -> np.ndarray:
    """Sample household sizes summing exactly to ``n_persons``."""
    if n_persons <= 0:
        raise PopulationError("population must have at least one person")
    est_households = max(1, int(n_persons / mean * 1.2) + 8)
    sizes = 1 + rng.poisson(mean - 1.0, est_households)
    np.clip(sizes, 1, MAX_HOUSEHOLD, out=sizes)
    cum = np.cumsum(sizes)
    cut = int(np.searchsorted(cum, n_persons))
    if cut >= len(sizes):  # pragma: no cover - est_households has 20% slack
        raise PopulationError("household size sampling under-allocated")
    sizes = sizes[: cut + 1].astype(np.int64)
    # trim the last household so the total is exact
    excess = int(sizes.sum()) - n_persons
    sizes[-1] -= excess
    if sizes[-1] <= 0:
        sizes = sizes[:-1]
        deficit = n_persons - int(sizes.sum())
        if deficit > 0:
            sizes = np.concatenate([sizes, [deficit]])
    assert int(sizes.sum()) == n_persons
    return sizes


def _sample_ages(
    sizes: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Assign ages per person given household sizes.

    Returns ``(ages, person_household)``.
    """
    n_households = len(sizes)
    n_persons = int(sizes.sum())
    person_household = np.repeat(
        np.arange(n_households, dtype=np.uint32), sizes
    )

    senior_hh = rng.random(n_households) < SENIOR_HH_PROB
    two_adults = (sizes >= 2) & (rng.random(n_households) < TWO_ADULT_PROB)
    n_adults_hh = np.where(two_adults, 2, 1)
    # children slots are whatever is left after the adults
    n_children_hh = sizes - n_adults_hh
    # seniors rarely have resident children; convert those slots to more
    # senior adults (e.g. multigenerational or group living)
    extra_senior_adults = np.where(senior_hh, n_children_hh, 0)
    n_children_hh = np.where(senior_hh, 0, n_children_hh)
    n_adults_hh = n_adults_hh + extra_senior_adults

    # Build a per-person "is_child" mask: within each household the first
    # n_adults slots are adults, the rest children.
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    slot_in_household = np.arange(n_persons) - offsets[person_household]
    is_child = slot_in_household >= n_adults_hh[person_household]
    hh_is_senior = senior_hh[person_household]

    ages = np.empty(n_persons, dtype=np.int64)

    # Children: uniform-ish 0-18 with a slight skew toward younger ages.
    n_child = int(is_child.sum())
    if n_child:
        ages[is_child] = np.minimum(
            rng.integers(0, 19, n_child), rng.integers(0, 19, n_child)
        ) + rng.integers(0, 7, n_child)
        np.clip(ages, 0, 18, out=ages, where=is_child)

    # Senior adults: 65-95 with declining tail.
    senior_adult = (~is_child) & hh_is_senior
    n_senior = int(senior_adult.sum())
    if n_senior:
        ages[senior_adult] = 65 + np.minimum(
            rng.exponential(9.0, n_senior).astype(np.int64), 30
        )

    # Working-age adults: 19-64, weighted toward 25-45 (parents of children).
    adult = (~is_child) & ~hh_is_senior
    n_adult = int(adult.sum())
    if n_adult:
        base = rng.triangular(19, 33, 65, n_adult).astype(np.int64)
        ages[adult] = np.clip(base, 19, 64)

    return ages.astype(np.uint8), person_household


def generate_households(
    scale: ScaleConfig, rng: np.random.Generator
) -> HouseholdPlan:
    """Generate households and person ages for a :class:`ScaleConfig`."""
    sizes = _sample_sizes(scale.n_persons, scale.mean_household_size, rng)
    ages, person_household = _sample_ages(sizes, rng)
    return HouseholdPlan(sizes=sizes, person_household=person_household, ages=ages)
