"""Synthetic Chicago-like population substrate.

The paper's chiSIM model consumes ~800 MB of census-derived input files for
persons, places, and activities.  Those files are not publicly available, so
this subpackage *generates* a population with the same statistical mechanisms
that shape the paper's results:

* households of realistic size (small, fully-connected nightly cliques);
* schools with capacity caps and classroom sub-compartments (the paper
  attributes the flat 0-14 degree distribution directly to these caps);
* workplaces with a heavy-tailed size distribution;
* a pool of "other" gathering places (shops, restaurants, transit) that
  create weak ties across households;
* hourly weekly activity schedules averaging ~5 activity changes per
  person-day (the figure the paper uses to size its event logs).

Everything is deterministic from a single integer seed.
"""

from .person import NO_PLACE, PersonTable
from .places import PlaceKind, PlaceTable
from .household import HouseholdPlan, generate_households
from .assignment import assign_schools, assign_workplaces, assign_favorites
from .schedule import Activity, ACTIVITY_NAMES, WeeklyScheduleGenerator
from .generator import SyntheticPopulation, generate_population
from .io import save_population, load_population
from .validation import ValidationReport, validate_population

__all__ = [
    "NO_PLACE",
    "PersonTable",
    "PlaceKind",
    "PlaceTable",
    "HouseholdPlan",
    "generate_households",
    "assign_schools",
    "assign_workplaces",
    "assign_favorites",
    "Activity",
    "ACTIVITY_NAMES",
    "WeeklyScheduleGenerator",
    "SyntheticPopulation",
    "generate_population",
    "save_population",
    "load_population",
    "ValidationReport",
    "validate_population",
]
