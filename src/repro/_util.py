"""Shared low-level helpers: seeding, timing, grouping, formatting.

These utilities encode the package-wide determinism and vectorization
discipline:

* all randomness flows through :class:`numpy.random.Generator` objects
  derived from a single :class:`numpy.random.SeedSequence`, so any run is
  exactly reproducible from one integer seed and independent substreams can
  be handed to parallel workers without correlation;
* grouping of large id arrays is done with ``argsort`` + boundary detection
  rather than Python dict loops (the ``data.table``-style fast subsetting
  from the paper's Section IV.A.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "rng_from_seed",
    "spawn_rngs",
    "group_by_key",
    "group_slices",
    "Timer",
    "StageTimings",
    "human_bytes",
    "human_count",
    "check_uint32",
    "stable_hash_u32",
    "stable_uniform",
    "atomic_write_bytes",
]


def rng_from_seed(seed: int | np.random.SeedSequence | None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed.

    ``None`` yields a nondeterministically-seeded generator (OS entropy);
    everything else is fully deterministic.
    """
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Spawn *n* statistically independent generators from one seed.

    Used to hand each simulated rank / worker its own stream so that results
    do not depend on scheduling order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def group_by_key(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group row indices of ``keys`` by value.

    Returns ``(unique_keys, order, boundaries)`` where ``order`` is an argsort
    of ``keys`` and ``boundaries`` contains the start offset of each group in
    ``order`` plus a final sentinel ``len(keys)``.  Rows of group ``i`` are
    ``order[boundaries[i]:boundaries[i+1]]``.

    This is the vectorized equivalent of ``split(df, df$key)`` and is the
    backbone of per-place log subsetting.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("group_by_key expects a 1-D key array")
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    if len(sorted_keys) == 0:
        return sorted_keys, order, np.array([0], dtype=np.intp)
    # boundaries where the sorted key changes
    change = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate(([0], change, [len(keys)]))
    unique = sorted_keys[starts[:-1]]
    return unique, order, starts


def group_slices(keys: np.ndarray) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(key, row_indices)`` per distinct key value (vectorized)."""
    unique, order, starts = group_by_key(keys)
    for i, key in enumerate(unique):
        yield int(key), order[starts[i] : starts[i + 1]]


class Timer:
    """Context-manager wall-clock timer with nanosecond resolution.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self._start: int | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed = (time.perf_counter_ns() - self._start) / 1e9


@dataclass
class StageTimings:
    """Accumulates named stage durations for pipeline reports.

    Every ``add`` also flows through the active telemetry probe (scoped
    as ``{scope}.{name}``), so stage timings land in the process-wide
    metrics registry without each call site being instrumented twice.
    """

    stages: dict[str, float] = field(default_factory=dict)
    #: probe scope prefix ("synthesis" for pipeline runs, "cache" for
    #: the tile cache's internal stage clocks)
    scope: str = "synthesis"

    def add(self, name: str, seconds: float) -> None:
        seconds = float(seconds)
        self.stages[name] = self.stages.get(name, 0.0) + seconds
        from .obs import get_probe  # deferred: _util must stay import-light

        get_probe().stage(f"{self.scope}.{name}", seconds)

    def merge(self, other: "StageTimings") -> None:
        """Fold another table in without re-emitting probe events (the
        other table already emitted when its stages were recorded)."""
        for name, secs in other.stages.items():
            self.stages[name] = self.stages.get(name, 0.0) + float(secs)

    def time(self, name: str) -> "_StageContext":
        return _StageContext(self, name)

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    def report(self) -> str:
        """Multi-line human-readable timing table."""
        if not self.stages:
            return "(no stages timed)"
        width = max(len(k) for k in self.stages)
        lines = [
            f"{name:<{width}}  {secs:10.4f} s" for name, secs in self.stages.items()
        ]
        lines.append(f"{'total':<{width}}  {self.total:10.4f} s")
        return "\n".join(lines)


class _StageContext:
    def __init__(self, timings: StageTimings, name: str) -> None:
        self._timings = timings
        self._name = name
        self._timer = Timer()

    def __enter__(self) -> "_StageContext":
        self._timer.__enter__()
        return self

    def __exit__(self, *exc: object) -> None:
        self._timer.__exit__(*exc)
        self._timings.add(self._name, self._timer.elapsed)


_BYTE_UNITS = ["B", "KiB", "MiB", "GiB", "TiB"]


def human_bytes(n: int | float) -> str:
    """Format a byte count, e.g. ``human_bytes(2048) == '2.00 KiB'``."""
    n = float(n)
    for unit in _BYTE_UNITS:
        if abs(n) < 1024.0 or unit == _BYTE_UNITS[-1]:
            return f"{n:.2f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")


def human_count(n: int | float) -> str:
    """Format a large count with thousands separators."""
    return f"{int(n):,}"


def stable_hash_u32(*values: int) -> int:
    """Deterministic 32-bit hash of a tuple of integers.

    Unlike :func:`hash`, the result is identical across processes and
    interpreter invocations (``PYTHONHASHSEED`` does not apply), which the
    retry machinery relies on for reproducible backoff jitter.
    """
    import zlib

    blob = b"".join(int(v).to_bytes(8, "little", signed=True) for v in values)
    return zlib.crc32(blob) & 0xFFFFFFFF


def stable_uniform(*values: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by integers."""
    return stable_hash_u32(*values) / 2**32


def atomic_write_bytes(path: "str | Path", data: bytes) -> None:
    """Write *data* to *path* via a same-directory temp file + rename.

    Readers never observe a partially written file: they see either the
    previous content or the full new content.  This is the commit primitive
    for synthesis checkpoints.
    """
    import os

    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


U32_MAX = np.uint32(0xFFFFFFFF)


def check_uint32(values: np.ndarray | Sequence[int], name: str) -> np.ndarray:
    """Validate that *values* fit in uint32 and return them as uint32.

    The EVL log schema (paper Section III) stores every field as a 4-byte
    unsigned integer; anything outside [0, 2**32) is a caller bug worth a
    loud error rather than silent wraparound.
    """
    arr = np.asarray(values)
    if arr.size and (arr.min() < 0 or arr.max() > int(U32_MAX)):
        raise ValueError(
            f"{name} contains values outside the uint32 range "
            f"[{arr.min()}, {arr.max()}]"
        )
    return arr.astype(np.uint32, copy=False)
