"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "PopulationError",
    "ScheduleError",
    "SimulationError",
    "CommError",
    "PartitionError",
    "LogFormatError",
    "LogTruncatedError",
    "LogCorruptError",
    "SynthesisError",
    "AnalysisError",
    "FitError",
    "LayoutError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Invalid or inconsistent configuration values."""


class PopulationError(ReproError):
    """Synthetic population generation failed or produced invalid data."""


class ScheduleError(ReproError):
    """Activity schedule construction or validation failed."""


class SimulationError(ReproError):
    """Agent-based model execution failed."""


class CommError(ReproError):
    """Communicator misuse (bad rank, mismatched collective, closed cluster)."""


class PartitionError(ReproError):
    """Place-to-rank or work partitioning failed validation."""


class LogFormatError(ReproError):
    """An event-log file is not a valid EVL container."""


class LogTruncatedError(LogFormatError):
    """An event-log file ends mid-chunk (e.g. writer crashed before flush)."""


class LogCorruptError(LogFormatError):
    """An event-log chunk failed its checksum."""


class SynthesisError(ReproError):
    """Collocation network synthesis failed."""


class AnalysisError(ReproError):
    """Network analysis computation failed."""


class FitError(AnalysisError):
    """Distribution fitting could not converge or was given unusable data."""


class LayoutError(ReproError):
    """Graph layout computation failed."""
