"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "PopulationError",
    "ScheduleError",
    "SimulationError",
    "CommError",
    "RankFailureError",
    "RankDeadError",
    "PartitionError",
    "TaskRetryError",
    "CheckpointError",
    "LogFormatError",
    "LogTruncatedError",
    "LogCorruptError",
    "SynthesisError",
    "TileCacheError",
    "ServiceError",
    "FrameError",
    "AdmissionError",
    "OverloadError",
    "DeadlineError",
    "ReplicaSetError",
    "AnalysisError",
    "FitError",
    "LayoutError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Invalid or inconsistent configuration values."""


class PopulationError(ReproError):
    """Synthetic population generation failed or produced invalid data."""


class ScheduleError(ReproError):
    """Activity schedule construction or validation failed."""


class SimulationError(ReproError):
    """Agent-based model execution failed."""


class CommError(ReproError):
    """Communicator misuse (bad rank, mismatched collective, closed cluster)."""


class RankFailureError(CommError):
    """A rank stopped participating in collectives (missed its heartbeat
    deadline or broke the barrier).

    ``suspects`` lists the ranks that had made the fewest barrier arrivals
    when the failure was detected — the ranks most likely dead.
    """

    def __init__(self, message: str, suspects: list[int] | None = None) -> None:
        super().__init__(message)
        self.suspects: list[int] = suspects or []


class RankDeadError(ReproError):
    """Raised by :meth:`~repro.distrib.comm.Communicator.die` to simulate a
    hard rank kill: the runner unwinds the rank's stack *without* notifying
    siblings, exactly like a SIGKILLed MPI process — detection must come
    from the heartbeat deadline, not from exception propagation."""


class PartitionError(ReproError):
    """Place-to-rank or work partitioning failed validation."""


class TaskRetryError(PartitionError):
    """A pool task kept failing after exhausting its retry budget.

    Carries the zero-based ``task_index`` within the failing ``map`` call
    and the number of ``attempts`` made; ``__cause__`` is the last
    underlying exception.
    """

    def __init__(self, message: str, task_index: int, attempts: int) -> None:
        super().__init__(message)
        self.task_index = task_index
        self.attempts = attempts


class CheckpointError(ReproError):
    """A synthesis checkpoint is unusable (missing, damaged, or written by
    a run with a different configuration)."""


class LogFormatError(ReproError):
    """An event-log file is not a valid EVL container."""


class LogTruncatedError(LogFormatError):
    """An event-log file ends mid-chunk (e.g. writer crashed before flush)."""


class LogCorruptError(LogFormatError):
    """An event-log chunk failed its checksum."""


class SynthesisError(ReproError):
    """Collocation network synthesis failed."""


class TileCacheError(SynthesisError):
    """The temporal tile cache was misused or its store is unusable."""


class ServiceError(ReproError):
    """The network-query service failed a request or was misused.

    ``code`` is the wire-protocol error code (``bad-request``,
    ``admission``, ``internal``, ``shutting-down``, ``malformed``) so
    clients can branch without parsing the message text.
    """

    def __init__(self, message: str, code: str = "internal") -> None:
        super().__init__(message)
        self.code = code


class FrameError(ServiceError):
    """A wire frame is malformed (bad length prefix, oversized, not JSON).

    The stream cannot be resynchronized past a broken frame, so the
    server answers once with ``code="malformed"`` and closes the
    connection."""

    def __init__(self, message: str) -> None:
        super().__init__(message, code="malformed")


class AdmissionError(ServiceError):
    """A query was rejected by per-tenant admission control.

    ``retry_after`` is the server's suggested back-off in seconds; the
    request was *not* executed and can be retried verbatim."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message, code="admission")
        self.retry_after = float(retry_after)


class OverloadError(ServiceError):
    """The server shed a request to protect itself under overload.

    Unlike :class:`AdmissionError` (one tenant over its own budget), an
    overload rejection is *server-wide*: the admission queue depth or the
    in-flight-age threshold tripped.  ``retry_after`` is the suggested
    back-off; the request was not executed and may be retried verbatim —
    ideally on another replica."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message, code="overload")
        self.retry_after = float(retry_after)


class DeadlineError(ServiceError):
    """A request's deadline was (or would be) exceeded.

    ``code="expired"`` means the deadline had already passed when the
    request reached the server (or a queued composition was abandoned
    before it started) — the work was rejected, never executed.
    ``code="deadline"`` means the deadline ran out while the work was in
    progress; partial server-side work continues only to serve coalesced
    peers and is never returned to this caller."""

    def __init__(self, message: str, code: str = "deadline") -> None:
        super().__init__(message, code=code)


class ReplicaSetError(ServiceError):
    """Every replica in a failover set is unusable (connection failures,
    open circuit breakers, or exhausted retries).  ``__cause__`` carries
    the last underlying failure."""

    def __init__(self, message: str) -> None:
        super().__init__(message, code="unavailable")


class AnalysisError(ReproError):
    """Network analysis computation failed."""


class FitError(AnalysisError):
    """Distribution fitting could not converge or was given unusable data."""


class LayoutError(ReproError):
    """Graph layout computation failed."""
