"""Synthetic random network generators — the paper's conclusion baseline.

The conclusions discuss whether "generated random scale-free or power-law
networks" can stand in for empirically-grounded social networks: "Random
synthetic networks could be a starting point for a realistic social
interaction network model, but would need to be tailored to capture the
more complex structure in the vertex degree distribution graphs presented
in this paper."

This subpackage implements the generator families the paper references —
Watts–Strogatz small-world [4], Barabási–Albert scale-free [19],
Dangalchev's two-level network model [24] — plus a configuration-model
generator that matches an *observed* degree sequence exactly.  All return
upper-triangular sparse adjacencies compatible with
:class:`repro.core.network.CollocationNetwork`, so every analysis in
:mod:`repro.analysis` runs on them unchanged; the ABL-GEN benchmark
quantifies exactly which chiSIM features each family fails to capture.
"""

from .models import (
    barabasi_albert,
    watts_strogatz,
    dangalchev,
    configuration_model,
    erdos_renyi,
    as_network,
)

__all__ = [
    "barabasi_albert",
    "watts_strogatz",
    "dangalchev",
    "configuration_model",
    "erdos_renyi",
    "as_network",
]
