"""Random graph generators (Watts–Strogatz, Barabási–Albert, Dangalchev,
configuration model, Erdős–Rényi).

All generators return a :class:`~repro.core.network.CollocationNetwork`
(unit edge weights unless stated), so the full Section V analysis tooling
applies to them directly.  Determinism: every generator takes an explicit
``numpy.random.Generator``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core.network import CollocationNetwork
from ..errors import AnalysisError

__all__ = [
    "as_network",
    "erdos_renyi",
    "watts_strogatz",
    "barabasi_albert",
    "dangalchev",
    "configuration_model",
]


def as_network(
    rows: np.ndarray,
    cols: np.ndarray,
    n: int,
    weights: np.ndarray | None = None,
) -> CollocationNetwork:
    """Build a network from an edge list (deduplicated, no self-loops)."""
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    lo = np.minimum(rows, cols)
    hi = np.maximum(rows, cols)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    w = (
        np.ones(len(lo), dtype=np.int64)
        if weights is None
        else np.asarray(weights, dtype=np.int64)[keep]
    )
    # dedupe parallel edges (keep max weight)
    key = lo * n + hi
    order = np.argsort(key, kind="stable")
    key, lo, hi, w = key[order], lo[order], hi[order], w[order]
    first = np.ones(len(key), dtype=bool)
    first[1:] = key[1:] != key[:-1]
    adj = sp.coo_matrix(
        (w[first], (lo[first], hi[first])), shape=(n, n)
    ).tocsr()
    return CollocationNetwork(adj)


def erdos_renyi(n: int, m: int, rng: np.random.Generator) -> CollocationNetwork:
    """G(n, m): *m* uniform random edges (simple graph)."""
    if n < 2 or m < 0:
        raise AnalysisError("need n >= 2 and m >= 0")
    rows = rng.integers(0, n, int(2.5 * m) + 8)
    cols = rng.integers(0, n, len(rows))
    net = as_network(rows, cols, n)
    # trim to m edges deterministically (highest (i,j) keys dropped)
    if net.n_edges > m:
        coo = net.adjacency.tocoo()
        keep = rng.permutation(net.n_edges)[:m]
        adj = sp.coo_matrix(
            (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=(n, n)
        ).tocsr()
        net = CollocationNetwork(adj)
    return net


def watts_strogatz(
    n: int, k: int, p: float, rng: np.random.Generator
) -> CollocationNetwork:
    """Watts–Strogatz small-world ring [4]: even ``k`` nearest neighbors,
    each edge rewired with probability ``p``."""
    if k % 2 or k <= 0 or k >= n:
        raise AnalysisError("k must be even with 0 < k < n")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError("p must be a probability")
    src_list = []
    dst_list = []
    nodes = np.arange(n, dtype=np.int64)
    for d in range(1, k // 2 + 1):
        src = nodes
        dst = (nodes + d) % n
        rewire = rng.random(n) < p
        new_dst = dst.copy()
        if rewire.any():
            cand = rng.integers(0, n, int(rewire.sum()))
            new_dst[rewire] = cand
        src_list.append(src)
        dst_list.append(new_dst)
    return as_network(np.concatenate(src_list), np.concatenate(dst_list), n)


def barabasi_albert(
    n: int, m: int, rng: np.random.Generator
) -> CollocationNetwork:
    """Barabási–Albert preferential attachment [19]: each new vertex
    attaches *m* edges to existing vertices with probability ∝ degree."""
    if m < 1 or n <= m:
        raise AnalysisError("need 1 <= m < n")
    # repeated-nodes trick: sampling uniformly from the stub list is
    # sampling proportional to degree
    stubs: list[int] = list(range(m + 1)) * 1  # seed clique stubs added below
    rows: list[int] = []
    cols: list[int] = []
    # seed: a small clique over the first m+1 vertices
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            rows.append(i)
            cols.append(j)
            stubs.extend((i, j))
    stub_arr = np.array(stubs, dtype=np.int64)
    stub_len = len(stub_arr)
    capacity = stub_len + 2 * m * n + 16
    buf = np.empty(capacity, dtype=np.int64)
    buf[:stub_len] = stub_arr
    for v in range(m + 1, n):
        targets: set[int] = set()
        # rejection-sample m distinct degree-proportional targets
        while len(targets) < m:
            pick = int(buf[rng.integers(0, stub_len)])
            targets.add(pick)
        for t in targets:
            rows.append(v)
            cols.append(t)
            buf[stub_len] = v
            buf[stub_len + 1] = t
            stub_len += 2
    return as_network(np.array(rows), np.array(cols), n)


def dangalchev(
    n: int, m: int, c: float, rng: np.random.Generator
) -> CollocationNetwork:
    """Dangalchev's two-level network model [24].

    Like Barabási–Albert, but a vertex's attractiveness is its degree plus
    ``c`` times the *sum of its neighbors' degrees* — attachment "to the
    well-connected neighborhood", producing tunable clustering and a
    heavier tail than pure BA for ``c > 0`` (``c = 0`` reduces to BA).
    """
    if m < 1 or n <= m:
        raise AnalysisError("need 1 <= m < n")
    if c < 0:
        raise AnalysisError("c must be >= 0")
    degree = np.zeros(n, dtype=np.float64)
    nbr_deg_sum = np.zeros(n, dtype=np.float64)
    neighbors: list[list[int]] = [[] for _ in range(n)]
    rows: list[int] = []
    cols: list[int] = []

    def add_edge(a: int, b: int) -> None:
        rows.append(a)
        cols.append(b)
        # update two-level weights
        for x, y in ((a, b), (b, a)):
            nbr_deg_sum[x] += degree[y]
        # existing neighbors of a and b see a degree bump
        for x in (a, b):
            for nb in neighbors[x]:
                nbr_deg_sum[nb] += 1.0
        degree[a] += 1
        degree[b] += 1
        neighbors[a].append(b)
        neighbors[b].append(a)

    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            add_edge(i, j)

    for v in range(m + 1, n):
        active = m + 1 if v == m + 1 else v
        weight = degree[:active] + c * nbr_deg_sum[:active]
        total = weight.sum()
        if total <= 0:
            probs = np.full(active, 1.0 / active)
        else:
            probs = weight / total
        targets: set[int] = set()
        guard = 0
        while len(targets) < m and guard < 50 * m:
            pick = int(rng.choice(active, p=probs))
            targets.add(pick)
            guard += 1
        for t in targets:
            add_edge(v, t)
    return as_network(np.array(rows), np.array(cols), n)


def configuration_model(
    degree_sequence: np.ndarray, rng: np.random.Generator
) -> CollocationNetwork:
    """Simple-graph configuration model: matches an observed degree
    sequence approximately (self-loops and multi-edges discarded).

    This is the strongest "tailored random network" baseline the paper's
    conclusion contemplates: it matches Figure 3 *exactly by construction*
    and still fails the clustering structure (ABL-GEN bench).
    """
    degrees = np.asarray(degree_sequence, dtype=np.int64)
    if degrees.ndim != 1 or (degrees < 0).any():
        raise AnalysisError("degree sequence must be non-negative 1-D")
    n = len(degrees)
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    if len(stubs) % 2:
        stubs = stubs[:-1]  # drop one stub to make pairing possible
    rng.shuffle(stubs)
    half = len(stubs) // 2
    return as_network(stubs[:half], stubs[half:], n)
