"""Per-tenant admission control for the network-query service.

The service's failure mode under unconstrained concurrent load is memory:
every admitted query materializes a composed CSR whose size is roughly
proportional to its window length, and a burst of wide-window queries
from one client can OOM the process for everyone.  Admission control
turns that into a polite, *retryable* rejection instead: each tenant has
a budget of estimated in-flight nonzeros, a query is charged an estimate
up front and released when its response has been written, and a query
that would overflow its tenant's budget is rejected with a suggested
``retry_after`` — never executed, never queued.

The charge is ``max(1, density × window_hours)`` where ``density`` is a
running *maximum* of observed result-nnz per window hour (conservative:
admission must err toward rejecting, since the alternative is an OOM
kill that takes down every tenant).  Before any query completes, the
configurable ``assume_nnz_per_hour`` prior applies; with the default 0
prior each query costs 1, which degrades admission to a per-tenant
concurrency cap until real densities are learned.

Budgets are strictly per tenant: one tenant's admitted, in-flight, or
rejected queries never change another tenant's headroom (the
concurrency suite asserts this).  All bookkeeping happens on the event
loop thread, so no locking is needed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AdmissionError

__all__ = ["AdmissionController", "TenantUsage"]


@dataclass
class TenantUsage:
    """One tenant's live admission ledger."""

    in_flight_nnz: float = 0.0
    in_flight_queries: int = 0
    admitted: int = 0
    rejected: int = 0

    def snapshot(self) -> dict:
        return {
            "in_flight_nnz": round(self.in_flight_nnz, 1),
            "in_flight_queries": self.in_flight_queries,
            "admitted": self.admitted,
            "rejected": self.rejected,
        }


@dataclass
class AdmissionController:
    """Charge/release ledger with a learned nnz-per-hour density.

    Parameters
    ----------
    budget_nnz:
        Per-tenant ceiling on estimated in-flight nonzeros; ``None``
        admits everything (the ledger still tracks usage for ``stats``).
    retry_after:
        Suggested client back-off carried by rejections, seconds.
    assume_nnz_per_hour:
        Density prior used until completed queries establish a real one.
    """

    budget_nnz: float | None = None
    retry_after: float = 0.05
    assume_nnz_per_hour: float = 0.0
    tenants: dict[str, TenantUsage] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._density = float(self.assume_nnz_per_hour)

    @property
    def density(self) -> float:
        """Current estimate of result nonzeros per window hour."""
        return self._density

    def estimate(self, hours: int) -> float:
        """Conservative nnz cost of a query spanning ``hours``."""
        return max(1.0, self._density * max(int(hours), 0))

    def admit(self, tenant: str, hours: int) -> float:
        """Charge ``tenant`` for one query, or reject it.

        Returns the charged cost (pass it back to :meth:`release`);
        raises :class:`AdmissionError` if the tenant's budget cannot
        cover it.  A single query wider than the whole budget is still
        admitted when the tenant is otherwise idle — otherwise it could
        never run at all.
        """
        usage = self.tenants.setdefault(tenant, TenantUsage())
        cost = self.estimate(hours)
        if (
            self.budget_nnz is not None
            and usage.in_flight_queries > 0
            and usage.in_flight_nnz + cost > self.budget_nnz
        ):
            usage.rejected += 1
            raise AdmissionError(
                f"tenant {tenant!r} over budget: in flight "
                f"{usage.in_flight_nnz:.0f} nnz + estimated {cost:.0f} > "
                f"{self.budget_nnz:.0f}",
                retry_after=self.retry_after,
            )
        usage.in_flight_nnz += cost
        usage.in_flight_queries += 1
        usage.admitted += 1
        return cost

    def release(self, tenant: str, cost: float) -> None:
        """Return a previously charged cost to the tenant's budget."""
        usage = self.tenants[tenant]
        usage.in_flight_nnz = max(0.0, usage.in_flight_nnz - cost)
        usage.in_flight_queries = max(0, usage.in_flight_queries - 1)

    def observe(self, hours: int, nnz: int) -> None:
        """Fold one completed query's actual size into the density.

        The estimate only ratchets up — admission stays conservative
        even if later windows happen to be sparse.
        """
        if hours > 0:
            self._density = max(self._density, nnz / hours)

    def snapshot(self) -> dict:
        return {
            "budget_nnz": self.budget_nnz,
            "density_nnz_per_hour": round(self._density, 2),
            "tenants": {
                name: usage.snapshot()
                for name, usage in sorted(self.tenants.items())
            },
        }
