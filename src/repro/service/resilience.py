"""Resilience primitives for the network-query service.

Four small, composable pieces — each is plain synchronous Python so it
can be exercised deterministically (every class takes an injectable
``time_fn``) and shared between the asyncio server, the failover client,
and the chaos tests:

:class:`Deadline`
    A monotonic-clock absolute deadline.  Clients attach a relative
    budget (seconds) to the frame header; the server converts it to a
    :class:`Deadline` on receipt and threads it through admission, the
    executor queue, composition, encoding, and the response write.  A
    ``None`` budget means "no deadline" and costs nothing to check.

:class:`LoadShedder`
    The bounded per-server admission queue.  Work is classed by
    priority — control ops (``ping``/``stats``/``live``/``ready``) are
    never shed, queries are shed when the admitted-but-unfinished depth
    reaches ``limit`` or the oldest in-flight request exceeds
    ``shed_inflight_age`` (the server is presumed stuck, so piling more
    work behind it only grows the heap), and background prefetch is shed
    first, at a fraction of the query limit.  Shedding raises
    :class:`~repro.errors.OverloadError` carrying ``retry_after`` — the
    request is rejected immediately instead of queuing unboundedly.

:class:`CircuitBreaker`
    Per-replica health for the failover client: *closed* (healthy) →
    *open* (recent error rate or latency over threshold; all traffic
    skips the replica) → *half-open* (after ``reset_timeout``, one probe
    is let through; success closes the breaker, failure re-opens it).

:func:`jittered_backoff`
    Decorrelated exponential backoff: ``base·2^attempt`` capped at
    ``cap``, scaled by a uniform jitter in ``[0.5, 1.0]`` so a herd of
    rejected clients does not stampede back in lockstep.
"""

from __future__ import annotations

import random
import time
from collections import deque
from typing import Callable

from ..errors import OverloadError

__all__ = [
    "Deadline",
    "LoadShedder",
    "CircuitBreaker",
    "jittered_backoff",
    "PRIORITY_CONTROL",
    "PRIORITY_QUERY",
    "PRIORITY_PREFETCH",
]

#: admission priority classes, best first (smaller sheds later)
PRIORITY_CONTROL = 0
PRIORITY_QUERY = 1
PRIORITY_PREFETCH = 2


class Deadline:
    """An absolute point on the monotonic clock (or no deadline at all).

    Built from a relative budget with :meth:`after`; ``None`` budgets
    produce an inert deadline that never expires, so callers can thread
    one object through unconditionally.
    """

    __slots__ = ("at", "_time")

    def __init__(
        self,
        at: float | None,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        self.at = at
        self._time = time_fn

    @classmethod
    def after(
        cls,
        seconds: float | None,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """A deadline ``seconds`` from now; ``None`` never expires.

        A non-positive budget yields an *already expired* deadline — the
        caller decides whether that is a rejection (the server does).
        """
        if seconds is None:
            return cls(None, time_fn)
        return cls(time_fn() + float(seconds), time_fn)

    @property
    def expired(self) -> bool:
        return self.at is not None and self._time() >= self.at

    def remaining(self) -> float | None:
        """Seconds left (may be negative); ``None`` for no deadline."""
        if self.at is None:
            return None
        return self.at - self._time()

    def bound(self, seconds: float | None) -> float | None:
        """``min(seconds, remaining)`` treating ``None`` as infinite."""
        rem = self.remaining()
        if rem is None:
            return seconds
        if seconds is None:
            return rem
        return min(seconds, rem)

    def __repr__(self) -> str:
        if self.at is None:
            return "Deadline(none)"
        return f"Deadline({self.remaining():+.3f}s)"


def jittered_backoff(
    attempt: int,
    base: float = 0.05,
    cap: float = 1.0,
    rng: random.Random | None = None,
) -> float:
    """Sleep for retry ``attempt`` (0-based): capped exponential with
    uniform jitter in ``[0.5, 1.0]`` of the capped value."""
    capped = min(float(cap), float(base) * (2.0 ** int(attempt)))
    r = rng.random() if rng is not None else random.random()
    return capped * (0.5 + 0.5 * r)


class LoadShedder:
    """Bounded admission ledger with priority-classed shedding.

    ``admit`` returns a token to pass back to ``release``; both are
    O(1).  The "queue" being bounded is the set of admitted-but-
    unfinished requests — everything parked on the executor or awaiting
    a coalesced composition — which is exactly the state that grows
    without bound when the server is slower than its arrival rate.

    Parameters
    ----------
    limit:
        Maximum admitted-but-unfinished queries; ``None`` never sheds on
        depth.  Prefetch work is capped at ``prefetch_headroom · limit``
        so background warming is shed before any client query is.
    shed_inflight_age:
        If the *oldest* admitted request has been in flight longer than
        this many seconds, new non-control work is shed: a wedged
        composition must not grow an unbounded convoy behind it.
    retry_after:
        Back-off hint carried by the raised :class:`OverloadError`.
    """

    def __init__(
        self,
        limit: int | None = None,
        shed_inflight_age: float | None = None,
        retry_after: float = 0.05,
        prefetch_headroom: float = 0.5,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        if limit is not None and limit < 1:
            raise ValueError("queue limit must be positive (or None)")
        self.limit = limit
        self.shed_inflight_age = shed_inflight_age
        self.retry_after = float(retry_after)
        self.prefetch_headroom = float(prefetch_headroom)
        self._time = time_fn
        self._seq = 0
        #: token -> (priority, admitted_at); insertion-ordered, so the
        #: first entry is always the oldest in-flight request
        self._inflight: dict[int, tuple[int, float]] = {}

    @property
    def depth(self) -> int:
        return len(self._inflight)

    def oldest_age(self) -> float:
        """Seconds the oldest admitted request has been in flight."""
        if not self._inflight:
            return 0.0
        _prio, started = next(iter(self._inflight.values()))
        return self._time() - started

    def admit(self, priority: int) -> int:
        """Admit one unit of work, or raise :class:`OverloadError`.

        Control-priority work is never shed *and never occupies a
        slot* — probes and stats must keep answering precisely when the
        server is melting, and a probe storm must not eat query
        capacity.  ``depth`` therefore counts only sheddable work.
        """
        self._seq += 1
        if priority <= PRIORITY_CONTROL:
            return self._seq
        if (
            self.shed_inflight_age is not None
            and self.oldest_age() > self.shed_inflight_age
        ):
            raise OverloadError(
                f"oldest in-flight request is {self.oldest_age():.2f}s "
                f"old (limit {self.shed_inflight_age}s); shedding new "
                "work",
                retry_after=self.retry_after,
            )
        if self.limit is not None:
            cap = self.limit
            if priority >= PRIORITY_PREFETCH:
                cap = max(1, int(self.limit * self.prefetch_headroom))
            if len(self._inflight) >= cap:
                raise OverloadError(
                    f"admission queue full ({len(self._inflight)} in "
                    f"flight >= {cap})",
                    retry_after=self.retry_after,
                )
        self._inflight[self._seq] = (priority, self._time())
        return self._seq

    def release(self, token: int) -> None:
        self._inflight.pop(token, None)

    def snapshot(self) -> dict:
        return {
            "limit": self.limit,
            "depth": self.depth,
            "oldest_age": round(self.oldest_age(), 3),
            "shed_inflight_age": self.shed_inflight_age,
        }


class CircuitBreaker:
    """Closed/open/half-open replica health on error rate and latency.

    Outcomes are recorded into a bounded window; once at least
    ``min_samples`` are present and the unhealthy fraction reaches
    ``failure_threshold``, the breaker opens.  A success slower than
    ``latency_threshold`` counts as unhealthy — a replica that answers
    correctly but far too slowly is still the wrong place to send
    traffic.  After ``reset_timeout`` an open breaker lets exactly one
    probe through (*half-open*): probe success closes it with a clean
    window, probe failure re-opens it and re-arms the timer.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        window: int = 16,
        min_samples: int = 4,
        failure_threshold: float = 0.5,
        latency_threshold: float | None = None,
        reset_timeout: float = 1.0,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.failure_threshold = float(failure_threshold)
        self.latency_threshold = latency_threshold
        self.reset_timeout = float(reset_timeout)
        self._time = time_fn
        self._outcomes: deque[bool] = deque(maxlen=self.window)
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probing = False
        self.opens = 0

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """May a request be sent now?  (Half-open grants one probe.)"""
        if self._state == self.CLOSED:
            return True
        if self._state == self.OPEN:
            if self._time() - self._opened_at >= self.reset_timeout:
                self._state = self.HALF_OPEN
                self._probing = True
                return True
            return False
        # half-open: one outstanding probe at a time
        if not self._probing:
            self._probing = True
            return True
        return False

    def reopen_in(self) -> float:
        """Seconds until an open breaker will grant its next probe."""
        if self._state != self.OPEN:
            return 0.0
        return max(0.0, self._opened_at + self.reset_timeout - self._time())

    def record_success(self, latency: float | None = None) -> None:
        healthy = (
            latency is None
            or self.latency_threshold is None
            or latency <= self.latency_threshold
        )
        if self._state == self.HALF_OPEN:
            if healthy:
                self._reset()
            else:
                self._trip()
            return
        self._push(healthy)

    def record_failure(self) -> None:
        if self._state == self.HALF_OPEN:
            self._trip()
            return
        self._push(False)

    def _push(self, healthy: bool) -> None:
        self._outcomes.append(healthy)
        if len(self._outcomes) >= self.min_samples:
            bad = sum(1 for ok in self._outcomes if not ok)
            if bad / len(self._outcomes) >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._time()
        self._probing = False
        self._outcomes.clear()
        self.opens += 1

    def _reset(self) -> None:
        self._state = self.CLOSED
        self._probing = False
        self._outcomes.clear()

    def snapshot(self) -> dict:
        return {
            "state": self._state,
            "opens": self.opens,
            "window": list(self._outcomes),
            "reopen_in": round(self.reopen_in(), 3),
        }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self._state}, opens={self.opens})"
