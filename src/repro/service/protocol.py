"""Wire protocol for the network-query service: length-prefixed JSON frames.

One frame is::

    +----------------+---------------------+----------------------+
    | 4-byte big-    | JSON header         | optional binary blob |
    | endian length  | (``length`` bytes)  | (``blob_len`` bytes) |
    +----------------+---------------------+----------------------+

The header is a JSON object; when it carries ``blob_len > 0``, exactly
that many raw bytes follow (responses use the blob to ship CSR matrices
as uncompressed ``.npz`` archives — zero re-encoding on either side,
:func:`encode_network`/:func:`decode_network` round-trip bit-identically).
Requests are pure JSON.

Length-prefixed framing (rather than HTTP) keeps the hot path to two
``readexactly`` calls per message and makes malformed input *detectable*:
a length prefix outside ``(0, max_frame]`` or a non-JSON header raises
:class:`~repro.errors.FrameError`, and because a broken frame loses the
stream's phase, the server answers once and closes that connection.

Requests
--------
``{"op": ..., "id": ..., "tenant": ..., **params}`` — ``id`` is echoed
verbatim in the response so clients can pipeline requests; ``tenant``
(default ``"anon"``) selects the admission-control ledger.  An optional
``deadline`` (a number: the client's remaining budget in *seconds*,
relative so clock skew cannot bite) bounds the request server-side —
work the server cannot finish in time is rejected, never silently
queued.  An optional ``trace`` object (``{"trace_id", "span_id"}``,
see :class:`repro.obs.TraceContext`) parents the server's request span
to the caller's trace; the resolved trace id comes back as
``trace_id`` in the response.  Ops:

========== ===========================================================
``ping``     liveness probe (echoes ``draining``)
``live``     liveness detail: lifecycle state + uptime
``ready``    readiness verdict + reasons (load-balancer probe)
``window``   ``t0, t1`` → full-network CSR for the window (blob)
``layer``    ``kind, t0, t1`` → one place-kind layer's CSR (blob)
``ego``      ``person, t0, t1 [, radius]`` → induced ego subgraph (blob)
``degrees``  ``t0, t1 [, kind]`` → degree summary + histogram (JSON)
``stats``    server + cache counters (JSON)
``metrics``  process metrics-registry snapshot (JSON)
``reload``   re-open caches against the current log bytes (admin)
``shutdown`` begin graceful drain (admin)
========== ===========================================================

Responses
---------
``{"id", "ok": true, ...}`` on success.  On failure ``ok`` is false and
``error`` / ``code`` describe why; ``code="admission"`` (one tenant over
budget) and ``code="overload"`` (server-wide load shed) additionally
carry ``retry_after`` (seconds) and mean the query was not executed and
may be retried verbatim.  ``code="expired"`` means the deadline had
already passed when the request was dispatched (rejected, never run);
``code="deadline"`` means it ran out mid-flight.
"""

from __future__ import annotations

import asyncio
import io
import json
from typing import Any

import numpy as np
import scipy.sparse as sp

from ..core.network import CollocationNetwork
from ..errors import FrameError

__all__ = [
    "MAX_FRAME",
    "DEFAULT_PORT",
    "read_frame",
    "write_frame",
    "encode_network",
    "decode_network",
    "encode_csr",
    "decode_csr",
]

#: default cap on one frame's header *and* blob size (64 MiB each)
MAX_FRAME = 64 << 20
DEFAULT_PORT = 7227


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> tuple[dict, bytes]:
    """Read one ``(header, blob)`` frame.

    Raises :class:`FrameError` on a malformed frame (bad length, bad
    JSON, non-object header, bad ``blob_len``) and lets
    ``asyncio.IncompleteReadError`` / connection errors propagate for a
    peer that simply went away.
    """
    head = await reader.readexactly(4)
    length = int.from_bytes(head, "big")
    if not 0 < length <= max_frame:
        raise FrameError(
            f"frame length {length} outside (0, {max_frame}]"
        )
    payload = await reader.readexactly(length)
    try:
        header = json.loads(payload)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame header is not JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise FrameError("frame header must be a JSON object")
    blob_len = header.get("blob_len", 0)
    if not isinstance(blob_len, int) or not 0 <= blob_len <= max_frame:
        raise FrameError(f"bad blob_len {blob_len!r}")
    blob = await reader.readexactly(blob_len) if blob_len else b""
    return header, blob


def write_frame(
    writer: asyncio.StreamWriter, header: dict, blob: bytes = b""
) -> None:
    """Queue one frame on the writer (caller awaits ``drain()``)."""
    if blob:
        header = dict(header, blob_len=len(blob))
    payload = json.dumps(header, separators=(",", ":")).encode()
    writer.write(len(payload).to_bytes(4, "big") + payload + blob)


def encode_csr(mat: sp.csr_matrix, **extra: np.ndarray) -> bytes:
    """Uncompressed ``.npz`` bytes of a CSR triple (+ named extras)."""
    buf = io.BytesIO()
    np.savez(
        buf,
        data=mat.data,
        indices=mat.indices,
        indptr=mat.indptr,
        shape=np.array(mat.shape, dtype=np.int64),
        **extra,
    )
    return buf.getvalue()


def decode_csr(blob: bytes) -> tuple[sp.csr_matrix, dict[str, np.ndarray]]:
    """Inverse of :func:`encode_csr`; extras returned by name."""
    with np.load(io.BytesIO(blob)) as z:
        mat = sp.csr_matrix(
            (z["data"], z["indices"], z["indptr"]), shape=tuple(z["shape"])
        )
        extra = {
            k: z[k] for k in z.files
            if k not in ("data", "indices", "indptr", "shape")
        }
    return mat, extra


def encode_network(net: CollocationNetwork) -> bytes:
    """A :class:`CollocationNetwork` as npz bytes (window included)."""
    return encode_csr(
        net.adjacency, window=np.array([net.t0, net.t1], dtype=np.int64)
    )


def decode_network(blob: bytes) -> CollocationNetwork:
    """Bit-identical inverse of :func:`encode_network`."""
    mat, extra = decode_csr(blob)
    t0, t1 = (int(v) for v in extra["window"])
    return CollocationNetwork(mat, t0=t0, t1=t1)


def error_response(
    request_id: Any, message: str, code: str, **extra: Any
) -> dict:
    """A failure response header echoing the request id."""
    return {"id": request_id, "ok": False, "error": message, "code": code, **extra}


def ok_response(request_id: Any, **fields: Any) -> dict:
    """A success response header echoing the request id."""
    return {"id": request_id, "ok": True, **fields}
