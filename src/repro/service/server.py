"""Async multi-tenant network-query service over warm tile caches.

This is the long-lived front end that turns the batch synthesis pipeline
into infrastructure: one process owns warm
:class:`~repro.core.tilecache.TileCache` instances (the full network plus
lazily created per-place-kind layer caches) and serves concurrent window,
layer, ego-subgraph, and degree-summary queries from many clients over
the length-prefixed frame protocol in :mod:`repro.service.protocol`.

Architecture
------------
* **One event loop, a small executor.**  Connections, framing, admission,
  and coalescing run on the asyncio loop; compositions and blob encoding
  run in a bounded thread pool.  The tile caches are thread-safe (one
  lock over cache state, composition outside it), so executor threads
  share them directly — no per-query cache, no copies.
* **Request coalescing.**  Identical in-flight compositions are shared:
  the first request for a ``(cache, t0, t1)`` key becomes the *leader*
  and runs the composition; followers await the leader's future and get
  the same immutable :class:`CollocationNetwork` object.  ``ego`` and
  ``degrees`` requests coalesce with plain ``window`` requests for the
  same window, since they derive from the same composition.
* **Admission control.**  Every query charges its tenant's
  :class:`~repro.service.admission.AdmissionController` ledger before
  any work happens and releases after its response blob is encoded; an
  over-budget query is rejected with ``retry_after`` instead of growing
  the heap.  Budgets are strictly per tenant.
* **Background prefetch.**  After each window query the aligned tile
  span, extended ``prefetch_tiles`` base tiles fore and aft (clamped to
  the log horizon), is queued for background warming — sliding-window
  workloads find their next tile already built.
* **Deadline propagation.**  A request may carry a ``deadline`` budget
  (seconds) in its frame header; the server converts it to a monotonic
  :class:`~repro.service.resilience.Deadline` on receipt.  Dead-on-
  arrival work is rejected with ``code="expired"`` before it touches the
  queue; a composition whose every registered waiter has expired is
  abandoned at executor dequeue; waiting on a composition, encoding, and
  the response write are all bounded by the remaining budget
  (``code="deadline"`` when it runs out mid-flight).  Coalesced peers
  with later deadlines are unaffected — a follower that receives a
  leader's abandonment but still has budget simply recomposes.
* **Load shedding.**  A :class:`~repro.service.resilience.LoadShedder`
  bounds admitted-but-unfinished work server-wide.  Control ops
  (``ping``/``stats``/``metrics``/``live``/``ready``) are never shed;
  queries are
  shed with ``code="overload"`` + ``retry_after`` when depth reaches
  ``queue_limit`` or the oldest in-flight request exceeds
  ``shed_inflight_age``; background prefetch is shed first, at half the
  query limit.
* **Slow-client write timeout.**  A response write that cannot drain
  within ``write_timeout`` aborts that connection (counted in
  ``slow_writes``) instead of parking a handler on a stalled socket
  forever.
* **Graceful drain.**  ``stop()`` refuses new work (``shutting-down``
  rejections) while continuing to *answer* — probes and rejections stay
  fast so load balancers fail over cleanly — waits for in-flight
  requests to finish writing on an event signalled at last-inflight-
  exit (no polling), and force-aborts any writer still unfinished at
  the ``drain_timeout`` deadline before closing caches and the
  executor.
* **Reload.**  The ``reload`` op re-opens every cache against the
  current log bytes (new content digest).  In-flight queries keep a
  reference to the cache they started on and finish consistently; the
  retired cache is closed once its last query completes.
* **Telemetry.**  Every non-control request runs inside a ``request``
  span parented to the client's ``header["trace"]`` context, with
  ``admission`` → ``coalesce`` → ``compose`` → ``kernel`` children (the
  composition carries the leader's context into the executor thread),
  and the trace id is echoed in every response.  Service counters are
  mirrored into the process metrics registry (``service.*``) and the
  ``metrics`` op returns a registry snapshot; ``trace_log`` streams
  finished spans to JSONL for ``repro trace``.  See :mod:`repro.obs`.
"""

from __future__ import annotations

import asyncio
import logging
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..analysis.degree import degree_distribution
from ..analysis.ego import ego_network
from ..core.layers import LAYER_KINDS, layer_caches
from ..core.tilecache import TileCache
from ..obs import (
    JsonlSpanSink,
    TraceContext,
    current_context,
    default_registry,
    get_collector,
    get_probe,
    start_span,
    use_context,
)
from ..errors import (
    AdmissionError,
    DeadlineError,
    FrameError,
    OverloadError,
    ReproError,
    ServiceError,
)
from ..synthpop.places import PlaceTable
from .admission import AdmissionController
from .health import HealthMonitor
from .resilience import (
    PRIORITY_PREFETCH,
    PRIORITY_QUERY,
    Deadline,
    LoadShedder,
)
from .protocol import (
    DEFAULT_PORT,
    MAX_FRAME,
    encode_csr,
    encode_network,
    error_response,
    ok_response,
    read_frame,
    write_frame,
)

__all__ = ["ServiceConfig", "ServiceStats", "NetworkQueryService"]

log = logging.getLogger("repro.service")

#: handle key for the full (all place kinds) network cache
_FULL = "full"


@dataclass
class ServiceConfig:
    """Tunables for one :class:`NetworkQueryService`."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it from ``service.port``)
    port: int = DEFAULT_PORT
    tile_hours: int = 24
    #: per-cache in-memory LRU budget (stored nonzeros); None = unbounded
    cache_budget_nnz: int | None = None
    #: directory for persisted tiles (one subdirectory per cache)
    cache_dir: str | Path | None = None
    dispatch: str = "value"
    strict: bool = False
    #: kernel backend for tile construction (see :mod:`repro.core.kernels`);
    #: bit-identical across choices, so persisted tiles remain valid
    backend: str | None = None
    #: per-tenant admission budget in estimated in-flight nnz; None admits all
    tenant_budget_nnz: float | None = None
    #: back-off hint carried by admission rejections, seconds
    retry_after: float = 0.05
    #: admission density prior until completed queries establish one
    assume_nnz_per_hour: float = 0.0
    #: composition/encode thread pool size
    executor_threads: int = 2
    #: base tiles warmed ahead/behind each queried span; 0 disables prefetch
    prefetch_tiles: int = 1
    max_frame: int = MAX_FRAME
    #: seconds stop() waits for in-flight requests before force-closing
    drain_timeout: float = 10.0
    #: default ego-subgraph BFS radius (the paper's figures use 2)
    ego_radius: int = 2
    #: server-side cap applied to every request's deadline budget
    #: (seconds); also the default for requests that carry none.  None
    #: leaves deadline-less requests unbounded.
    default_deadline: float | None = None
    #: abort a connection whose response write cannot drain within this
    #: many seconds (slow/stalled client); None disables
    write_timeout: float | None = 30.0
    #: load shedding: max admitted-but-unfinished queries server-wide;
    #: None never sheds on depth
    queue_limit: int | None = 256
    #: load shedding: reject new work while the oldest in-flight request
    #: is older than this many seconds; None disables the age trigger
    shed_inflight_age: float | None = None
    #: append every finished span (server-side and absorbed worker spans)
    #: to this JSONL file for ``repro trace``; None disables
    trace_log: str | Path | None = None
    #: number of place shards per cache; 1 serves every cache from one
    #: process-local :class:`TileCache`, >1 switches every handle to a
    #: :class:`~repro.distrib.shardsynth.ShardedTileCache` (per-shard
    #: place-masked caches + a reduce tier, bit-identical answers)
    shards: int = 1
    #: place-partition strategy for sharded caches
    #: (see :data:`repro.distrib.shardsynth.STRATEGIES`)
    shard_partition: str = "refined"

    def synthesis_plan(self):
        """The :class:`~repro.core.plan.SynthesisPlan` this config implies.

        Cache directories are deliberately left out: the service keys
        per-cache subdirectories itself.
        """
        from ..core.plan import SynthesisPlan

        return SynthesisPlan(
            dispatch=self.dispatch,
            strict=self.strict,
            backend=self.backend,
            tile_hours=self.tile_hours,
            cache_budget_nnz=self.cache_budget_nnz,
        )


@dataclass
class ServiceStats:
    """Service counters with an atomic snapshot.

    Counters are mutated through :meth:`bump` under one lock, and
    :meth:`snapshot` copies them under the same lock — a reader never
    sees a half-updated set of counters even when executor threads or
    a concurrent ``stats`` request race the event loop.  Direct
    attribute reads remain valid for tests and single-field checks.
    """

    connections: int = 0
    requests: int = 0
    #: network-producing queries (window / layer / ego / degrees)
    queries: int = 0
    #: compositions actually executed (coalescing leaders)
    compositions: int = 0
    #: queries that shared an in-flight leader's composition
    coalesced: int = 0
    #: admission-control rejections
    rejections: int = 0
    #: malformed frames (connection closed after each)
    malformed: int = 0
    #: client connections that vanished mid-request/response
    disconnects: int = 0
    #: unexpected internal errors answered with code="internal"
    errors: int = 0
    #: base tiles built by the background prefetcher
    prefetched_tiles: int = 0
    reloads: int = 0
    #: requests whose deadline had already passed on arrival (rejected
    #: with code="expired", never queued)
    expired: int = 0
    #: requests whose deadline ran out mid-flight (code="deadline")
    deadline_timeouts: int = 0
    #: queries shed by the admission queue (code="overload")
    shed: int = 0
    #: background prefetch jobs dropped under load
    shed_prefetch: int = 0
    #: connections aborted because a response write stalled past
    #: write_timeout
    slow_writes: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, name: str, n: int = 1) -> None:
        """Atomically add ``n`` to the named counter and mirror the
        event into the metrics registry (``service.<name>``)."""
        with self._lock:
            setattr(self, name, getattr(self, name) + n)
        get_probe().count(f"service.{name}", n)

    def snapshot(self, **gauges) -> dict:
        """One consistent copy of every counter, plus any instantaneous
        gauges the caller supplies (e.g. ``uptime``, ``inflight``)."""
        with self._lock:
            out = {
                k: getattr(self, k)
                for k in self.__dataclass_fields__
                if not k.startswith("_")
            }
        out.update(gauges)
        return out


class _CacheHandle:
    """One tile cache plus the loop-side state that rides along with it.

    ``refs`` counts in-flight uses (queries and prefetches).  After a
    reload retires a handle, the cache is closed exactly when the last
    reference drops — never under a live query.
    """

    __slots__ = ("cache", "horizon", "refs", "retired", "inflight", "prefetched")

    def __init__(self, cache: TileCache, horizon: int) -> None:
        self.cache = cache
        self.horizon = horizon
        self.refs = 0
        self.retired = False
        #: in-flight coalesced compositions keyed by ``(t0, t1)``
        self.inflight: dict[tuple[int, int], _Inflight] = {}
        #: base-tile indices already queued for prefetch
        self.prefetched: set[int] = set()


class _Inflight:
    """One coalesced composition: shared future + waiter deadlines.

    Waiters register their deadlines on the event loop; the executor
    job reads them (GIL-ordered against the appends) right before
    composing, so work every waiter has already abandoned is never
    started.  ``no_deadline`` latches when any waiter has no deadline —
    such a composition is never abandoned.
    """

    __slots__ = ("fut", "deadlines", "no_deadline")

    def __init__(self, fut: asyncio.Future) -> None:
        self.fut = fut
        self.deadlines: list[float] = []
        self.no_deadline = False

    def register(self, dl: Deadline) -> None:
        if dl.at is None:
            self.no_deadline = True
        else:
            self.deadlines.append(dl.at)

    def abandoned(self, now: float) -> bool:
        """True iff every registered waiter's deadline has passed."""
        if self.no_deadline or not self.deadlines:
            return False
        return all(at <= now for at in self.deadlines)


def _trace_id() -> str:
    """The current request's trace id, for log correlation."""
    ctx = current_context()
    return ctx.trace_id if ctx is not None else "-"


def _require_int(header: dict, name: str, minimum: int | None = None) -> int:
    value = header.get(name)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(f"{name!r} must be an integer", code="bad-request")
    if minimum is not None and value < minimum:
        raise ServiceError(
            f"{name!r} must be >= {minimum}, got {value}", code="bad-request"
        )
    return value


def _window_params(header: dict) -> tuple[int, int]:
    t0 = _require_int(header, "t0", minimum=0)
    t1 = _require_int(header, "t1")
    if t1 <= t0:
        raise ServiceError(
            f"empty query window [{t0}, {t1})", code="bad-request"
        )
    return t0, t1


class NetworkQueryService:
    """Serve network queries over a log directory to many clients.

    Parameters
    ----------
    log_dir:
        Per-rank EVL directory the caches are built over.
    n_persons:
        Population size (matrix dimension).
    places:
        Optional :class:`PlaceTable`; required only for ``layer`` queries
        (and ``degrees`` restricted to a kind).
    config:
        :class:`ServiceConfig` tunables.

    Usage::

        service = NetworkQueryService(log_dir, pop.n_persons,
                                      places=pop.places)
        async with service:           # binds, starts serving
            ...                       # service.port is the bound port
        # stop() drains and closes on exit
    """

    def __init__(
        self,
        log_dir: str | Path,
        n_persons: int,
        places: PlaceTable | None = None,
        config: ServiceConfig | None = None,
    ) -> None:
        self.log_dir = Path(log_dir)
        self.n_persons = int(n_persons)
        self.places = places
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self.admission = AdmissionController(
            budget_nnz=self.config.tenant_budget_nnz,
            retry_after=self.config.retry_after,
            assume_nnz_per_hour=self.config.assume_nnz_per_hour,
        )
        self.shedder = LoadShedder(
            limit=self.config.queue_limit,
            shed_inflight_age=self.config.shed_inflight_age,
            retry_after=self.config.retry_after,
        )
        self.health = HealthMonitor()
        self._handles: dict[str, _CacheHandle] = {}
        self._handle_futures: dict[str, asyncio.Future] = {}
        self._retired: list[_CacheHandle] = []
        self._server: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._inflight = 0
        #: set whenever _inflight is zero; stop() waits on it instead of
        #: polling, and the last in-flight exit signals it
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._stopping = False
        self._stopped = asyncio.Event()
        self._started = False
        self._prefetch_task: asyncio.Task | None = None
        self._prefetch_queue: asyncio.Queue | None = None
        self._trace_sink: JsonlSpanSink | None = None
        #: one shard plan shared by every sharded cache handle, built
        #: lazily in the executor and dropped on reload (log bytes may
        #: have changed)
        self._shard_plan = None
        self._shard_plan_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise ServiceError("service is not started", code="internal")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "NetworkQueryService":
        """Open the full-network cache and begin accepting connections."""
        if self._started:
            raise ServiceError("service already started", code="internal")
        self._started = True
        if self.config.trace_log is not None:
            self._trace_sink = JsonlSpanSink(self.config.trace_log)
            get_collector().add_sink(self._trace_sink)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="repro-service",
        )
        await self._get_handle(_FULL)  # fail fast on an unusable log dir
        self._prefetch_queue = asyncio.Queue()
        if self.config.prefetch_tiles > 0:
            self._prefetch_task = asyncio.create_task(self._prefetch_worker())
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.config.host, port=self.config.port
        )
        self.health.to_ready()
        return self

    async def stop(self) -> None:
        """Drain in-flight requests, then close everything (idempotent).

        The drain waits on the idle event signalled by the last
        in-flight exit — no polling — bounded by ``drain_timeout``.
        New requests arriving mid-drain are *answered* with
        ``shutting-down`` (the listener stays open until the drain
        completes, so a connection racing the shutdown never hangs on an
        unreachable port with bytes half-sent).  A writer that cannot
        finish by the deadline is force-aborted rather than waited on
        forever.
        """
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        self._draining = True
        self.health.to_draining()
        clean = True
        if self._inflight > 0:
            try:
                await asyncio.wait_for(
                    self._idle.wait(), self.config.drain_timeout
                )
            except asyncio.TimeoutError:
                clean = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._prefetch_task is not None:
            self._prefetch_task.cancel()
            try:
                await self._prefetch_task
            except asyncio.CancelledError:
                pass
            self._prefetch_task = None
        for writer in list(self._writers):
            if clean:
                writer.close()
            else:
                # a stalled response write must not outlive the drain
                # deadline: reset the connection instead of joining it
                try:
                    writer.transport.abort()
                except (AttributeError, RuntimeError):
                    writer.close()
        self._writers.clear()
        for handle in list(self._handles.values()) + self._retired:
            handle.retired = True
            handle.cache.close()
        self._handles.clear()
        self._retired.clear()
        if self._executor is not None:
            # after a timed-out drain an executor thread may be wedged in
            # a composition; joining it would hang stop() forever
            self._executor.shutdown(wait=clean, cancel_futures=not clean)
        if self._trace_sink is not None:
            get_collector().remove_sink(self._trace_sink)
            self._trace_sink.close()
            self._trace_sink = None
        self.health.to_stopped()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` has completed (CLI serve loop)."""
        await self._stopped.wait()

    async def prefetch_idle(self) -> None:
        """Wait until the background prefetcher has drained its queue."""
        if self._prefetch_queue is not None:
            await self._prefetch_queue.join()

    async def __aenter__(self) -> "NetworkQueryService":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # -- cache handles --------------------------------------------------------

    def _shard_plan_for(self):
        """The service-wide shard plan, built at most once per log
        generation (executor thread; reload drops it)."""
        from ..distrib.shardsynth import log_horizon, plan_shards
        from ..evlog.multifile import LogSet

        with self._shard_plan_lock:
            if self._shard_plan is None:
                cfg = self.config
                log_set = LogSet(self.log_dir)
                horizon = log_horizon(log_set)
                coords = (
                    self.places.coords() if self.places is not None else None
                )
                n_places = (
                    len(self.places.kind) if self.places is not None else None
                )
                self._shard_plan = plan_shards(
                    log_set,
                    cfg.shards,
                    0,
                    max(horizon, 1),
                    strategy=cfg.shard_partition,
                    coords=coords,
                    n_places=n_places,
                    strict=cfg.strict,
                    backend=cfg.backend,
                )
            return self._shard_plan

    def _build_handle_sync(self, key: str) -> _CacheHandle:
        """Executor side of cache construction (reads every log byte)."""
        cfg = self.config
        if cfg.shards > 1:
            from ..distrib.shardsynth import ShardedTileCache
            from ..synthpop.places import PlaceKind

            place_mask = None
            if key != _FULL:
                assert self.places is not None
                place_mask = self.places.kind == int(PlaceKind[key.upper()])
            cache = ShardedTileCache(
                self.log_dir,
                self.n_persons,
                self._shard_plan_for(),
                cache_dir=(
                    Path(cfg.cache_dir) / key
                    if cfg.cache_dir is not None
                    else None
                ),
                place_mask=place_mask,
                plan=cfg.synthesis_plan(),
            )
            return _CacheHandle(cache, horizon=cache.horizon())
        if key == _FULL:
            cache = TileCache(
                self.log_dir,
                self.n_persons,
                tile_hours=cfg.tile_hours,
                budget_nnz=cfg.cache_budget_nnz,
                cache_dir=(
                    Path(cfg.cache_dir) / key
                    if cfg.cache_dir is not None
                    else None
                ),
                dispatch=cfg.dispatch,
                strict=cfg.strict,
                backend=cfg.backend,
            )
        else:
            assert self.places is not None
            cache = layer_caches(
                self.log_dir,
                self.places,
                self.n_persons,
                tile_hours=cfg.tile_hours,
                budget_nnz=cfg.cache_budget_nnz,
                cache_dir=cfg.cache_dir,
                dispatch=cfg.dispatch,
                strict=cfg.strict,
                kinds=[key],
                backend=cfg.backend,
            )[key]
        return _CacheHandle(cache, horizon=cache.horizon())

    async def _get_handle(self, key: str) -> _CacheHandle:
        """The live handle for ``key``, building its cache at most once
        even under concurrent first requests."""
        handle = self._handles.get(key)
        if handle is not None:
            return handle
        if key != _FULL:
            if key not in LAYER_KINDS:
                raise ServiceError(
                    f"unknown layer kind {key!r}; expected one of "
                    f"{', '.join(LAYER_KINDS)}",
                    code="bad-request",
                )
            if self.places is None:
                raise ServiceError(
                    "layer queries need the service started with a "
                    "population's place table",
                    code="bad-request",
                )
        fut = self._handle_futures.get(key)
        if fut is not None:
            return await fut
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._handle_futures[key] = fut
        try:
            handle = await loop.run_in_executor(
                self._executor, self._build_handle_sync, key
            )
        except Exception as exc:
            fut.set_exception(exc)
            fut.exception()  # mark retrieved: followers may be absent
            raise
        else:
            self._handles[key] = handle
            fut.set_result(handle)
            return handle
        finally:
            self._handle_futures.pop(key, None)

    def _maybe_close(self, handle: _CacheHandle) -> None:
        if handle.retired and handle.refs == 0:
            handle.cache.close()
            if handle in self._retired:
                self._retired.remove(handle)

    async def _reload(self) -> str:
        """Swap every cache for a fresh one keyed to the current log
        bytes; in-flight queries finish on the caches they started on."""
        keys = list(self._handles)
        old = [self._handles[k] for k in keys]
        with self._shard_plan_lock:
            # the new log bytes may put work in different places
            self._shard_plan = None
        loop = asyncio.get_running_loop()
        fresh = {}
        for key in keys:
            fresh[key] = await loop.run_in_executor(
                self._executor, self._build_handle_sync, key
            )
        self._handles.update(fresh)
        for handle in old:
            handle.retired = True
            self._retired.append(handle)
            self._maybe_close(handle)
        self.stats.bump("reloads")
        return self._handles[_FULL].cache.digest

    # -- coalesced composition ------------------------------------------------

    def _start_composition(
        self, handle: _CacheHandle, wkey: tuple[int, int]
    ) -> _Inflight:
        """Launch one composition on the executor, owning its own cache
        reference so it survives every waiter abandoning it (deadline
        timeouts must not yank a cache out from under a running build)."""
        loop = asyncio.get_running_loop()
        entry = _Inflight(loop.create_future())
        handle.inflight[wkey] = entry
        handle.refs += 1
        self.stats.bump("compositions")
        t0, t1 = wkey
        # the leader's coalesce-span context, carried into the executor
        # thread so the composition (and the cache's kernel spans under
        # it) nest in the leader's trace
        ctx = current_context()

        def job():
            # executor-queue expiry: work every waiter has abandoned by
            # dequeue time is rejected, not silently executed
            if entry.abandoned(time.monotonic()):
                raise DeadlineError(
                    f"composition of [{t0}, {t1}) abandoned: every "
                    "waiter's deadline expired before it was dequeued",
                    code="expired",
                )
            with use_context(ctx):
                with start_span(
                    "compose", attrs={"t0": t0, "t1": t1}
                ) as span:
                    net = handle.cache.query_window(t0, t1)
                    span.set_attr("n_edges", net.n_edges)
                    return net

        exec_fut = loop.run_in_executor(self._executor, job)

        def _done(f: asyncio.Future) -> None:
            # pop before resolving so a waiter retrying on abandonment
            # becomes a fresh leader instead of re-joining this entry
            if handle.inflight.get(wkey) is entry:
                del handle.inflight[wkey]
            handle.refs -= 1
            self._maybe_close(handle)
            exc = f.exception()
            if exc is not None:
                entry.fut.set_exception(exc)
                entry.fut.exception()  # waiters may all be gone
            else:
                entry.fut.set_result(f.result())

        exec_fut.add_done_callback(_done)
        return entry

    async def _coalesced_window(
        self, key: str, t0: int, t1: int, dl: Deadline
    ):
        """One window composition per in-flight ``(cache, t0, t1)``.

        Waiting is bounded by the request's deadline; the composition
        itself is shared and keeps running for coalesced peers even if
        this waiter times out.  A waiter handed a peer-abandonment
        (every *earlier* waiter expired before the build was dequeued)
        recomposes as a new leader while it still has budget.
        """
        while True:
            handle = await self._get_handle(key)
            wkey = (t0, t1)
            entry = handle.inflight.get(wkey)
            with start_span(
                "coalesce",
                attrs={
                    "cache": key,
                    "t0": t0,
                    "t1": t1,
                    "role": "leader" if entry is None else "follower",
                },
            ):
                if entry is None:
                    entry = self._start_composition(handle, wkey)
                else:
                    self.stats.bump("coalesced")
                entry.register(dl)
                handle.refs += 1
                try:
                    try:
                        net = await asyncio.wait_for(
                            asyncio.shield(entry.fut), dl.remaining()
                        )
                    except asyncio.TimeoutError:
                        self.stats.bump("deadline_timeouts")
                        raise DeadlineError(
                            f"deadline exceeded composing [{t0}, {t1})"
                        ) from None
                    except DeadlineError:
                        if dl.expired:
                            raise
                        # our registration raced the executor's
                        # abandonment check; we still have budget, so
                        # compose again
                        continue
                    self.admission.observe(t1 - t0, net.n_edges)
                    self._note_span(handle, t0, t1)
                    return net
                finally:
                    handle.refs -= 1
                    self._maybe_close(handle)

    # -- prefetch -------------------------------------------------------------

    def _note_span(self, handle: _CacheHandle, t0: int, t1: int) -> None:
        """Queue the tiles fore and aft of a queried span for warming."""
        n_ahead = self.config.prefetch_tiles
        if n_ahead <= 0 or self._prefetch_queue is None or handle.retired:
            return
        T = self.config.tile_hours
        a0, a1 = t0 // T, -(-t1 // T)
        last_tile = -(-handle.horizon // T)  # first tile past the horizon
        candidates = [i for i in range(a1, min(a1 + n_ahead, last_tile))]
        candidates += [i for i in range(max(a0 - n_ahead, 0), a0)]
        for idx in candidates:
            if idx not in handle.prefetched:
                handle.prefetched.add(idx)
                self._prefetch_queue.put_nowait((handle, idx))

    def _warm_traced(self, handle: _CacheHandle, t0: int, t1: int) -> int:
        """Executor body of one prefetch: a root ``prefetch`` span so the
        cache's kernel spans don't show up as orphan roots."""
        with start_span("prefetch", parent=None, attrs={"t0": t0, "t1": t1}):
            return handle.cache.warm(t0, t1)

    async def _prefetch_worker(self) -> None:
        """Warm queued tiles in the background; never dies on an error."""
        assert self._prefetch_queue is not None
        loop = asyncio.get_running_loop()
        T = self.config.tile_hours
        while True:
            handle, idx = await self._prefetch_queue.get()
            try:
                if not handle.retired:
                    # prefetch is the lowest admission class: under load
                    # it is shed (and un-marked, so a later quiet-period
                    # query can queue the tile again) before any client
                    # query is
                    try:
                        token = self.shedder.admit(PRIORITY_PREFETCH)
                    except OverloadError:
                        self.stats.bump("shed_prefetch")
                        handle.prefetched.discard(idx)
                        self._prefetch_queue.task_done()
                        continue
                    handle.refs += 1
                    try:
                        built = await loop.run_in_executor(
                            self._executor,
                            self._warm_traced,
                            handle,
                            idx * T,
                            (idx + 1) * T,
                        )
                        self.stats.bump("prefetched_tiles", built)
                    finally:
                        self.shedder.release(token)
                        handle.refs -= 1
                        self._maybe_close(handle)
            except asyncio.CancelledError:
                self._prefetch_queue.task_done()
                raise
            except Exception:
                self.stats.bump("errors")
            else:
                self._prefetch_queue.task_done()
                continue
            self._prefetch_queue.task_done()

    # -- connection handling --------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.bump("connections")
        self._writers.add(writer)
        try:
            while True:
                try:
                    header, _blob = await read_frame(
                        reader, self.config.max_frame
                    )
                except FrameError as exc:
                    # a broken frame loses stream phase: answer and close
                    self.stats.bump("malformed")
                    try:
                        write_frame(
                            writer,
                            error_response(None, str(exc), "malformed"),
                        )
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    OSError,
                ):
                    break  # peer went away between requests
                self._inflight += 1
                self._idle.clear()
                try:
                    resp_header, resp_blob = await self._dispatch(header)
                    try:
                        write_frame(writer, resp_header, resp_blob)
                        await asyncio.wait_for(
                            writer.drain(), self.config.write_timeout
                        )
                    except asyncio.TimeoutError:
                        # stalled client socket: reset it rather than
                        # park this handler (and the drain) forever
                        self.stats.bump("slow_writes")
                        try:
                            writer.transport.abort()
                        except (AttributeError, RuntimeError):
                            pass
                        break
                    except (ConnectionError, OSError):
                        self.stats.bump("disconnects")
                        break
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    #: ops that produce network answers — deadline-checked, sheddable
    _QUERY_OPS = frozenset({"window", "layer", "ego", "degrees"})
    #: control plane — never shed, answered even mid-drain
    _CONTROL_OPS = frozenset({"ping", "stats", "metrics", "live", "ready"})

    def _parse_deadline(self, header: dict) -> Deadline:
        """The request's effective deadline: the client budget capped by
        the server-side default (which also covers budget-less requests)."""
        raw = header.get("deadline")
        if raw is None:
            return Deadline.after(self.config.default_deadline)
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise ServiceError(
                "'deadline' must be a number of seconds", code="bad-request"
            )
        budget = float(raw)
        if self.config.default_deadline is not None:
            budget = min(budget, self.config.default_deadline)
        return Deadline.after(budget)

    async def _dispatch(self, header: dict) -> tuple[dict, bytes]:
        """Trace-aware dispatch shell around :meth:`_dispatch_guarded`.

        A non-control request runs inside a ``request`` span parented to
        the client's ``header["trace"]`` context (when it sent one), so
        the whole server-side tree — admission, coalescing, the executor
        composition, the cache's kernel work — hangs off the caller's
        trace.  The trace id is echoed in every response (``trace_id``)
        so clients can correlate without parsing span logs.
        """
        rid = header.get("id")
        op = header.get("op")
        ctx = TraceContext.from_wire(header.get("trace"))
        span = None
        if op in self._OPS and op not in self._CONTROL_OPS:
            span = start_span(
                "request",
                parent=ctx,
                attrs={"op": op, "tenant": header.get("tenant", "anon")},
            )
            span.__enter__()
        try:
            resp, blob = await self._dispatch_guarded(rid, op, header)
            if span is not None and not resp.get("ok", False):
                span.set_status(f"error:{resp.get('code')}")
        finally:
            if span is not None:
                span.__exit__(*sys.exc_info())
        tid = span.trace_id if span is not None else None
        if not tid and ctx is not None:
            tid = ctx.trace_id
        if tid:
            resp.setdefault("trace_id", tid)
        return resp, blob

    async def _dispatch_guarded(
        self, rid, op, header: dict
    ) -> tuple[dict, bytes]:
        self.stats.bump("requests")
        if self._draining and op not in self._CONTROL_OPS:
            return (
                error_response(rid, "server is draining", "shutting-down"),
                b"",
            )
        handler = self._OPS.get(op)
        if handler is None:
            return (
                error_response(rid, f"unknown op {op!r}", "bad-request"),
                b"",
            )
        shed_token = None
        try:
            dl = self._parse_deadline(header)
            # dead-on-arrival work is rejected before it can queue
            if dl.expired:
                self.stats.bump("expired")
                log.warning(
                    "expired on arrival: op=%s id=%r trace=%s",
                    op, rid, _trace_id(),
                )
                raise DeadlineError(
                    "deadline already expired on arrival", code="expired"
                )
            if op in self._QUERY_OPS:
                try:
                    shed_token = self.shedder.admit(PRIORITY_QUERY)
                except OverloadError:
                    self.stats.bump("shed")
                    self.health.note_shed()
                    log.warning(
                        "shed under load: op=%s id=%r trace=%s",
                        op, rid, _trace_id(),
                    )
                    raise
            return await handler(self, rid, header, dl)
        except (AdmissionError, OverloadError) as exc:
            if isinstance(exc, AdmissionError):
                self.stats.bump("rejections")
            return (
                error_response(
                    rid, str(exc), exc.code, retry_after=exc.retry_after
                ),
                b"",
            )
        except ServiceError as exc:
            return error_response(rid, str(exc), exc.code), b""
        except ReproError as exc:
            # domain validation (bad window, unknown person, damaged logs)
            return error_response(rid, str(exc), "bad-request"), b""
        except Exception as exc:  # noqa: BLE001 - server must stay up
            self.stats.bump("errors")
            log.exception(
                "internal error: op=%s id=%r trace=%s", op, rid, _trace_id()
            )
            return (
                error_response(
                    rid, f"{type(exc).__name__}: {exc}", "internal"
                ),
                b"",
            )
        finally:
            if shed_token is not None:
                self.shedder.release(shed_token)

    # -- ops ------------------------------------------------------------------

    def _tenant(self, header: dict) -> str:
        tenant = header.get("tenant", "anon")
        if not isinstance(tenant, str) or not tenant:
            raise ServiceError("'tenant' must be a non-empty string",
                               code="bad-request")
        return tenant

    async def _bounded_executor(self, dl: Deadline, fn, *args):
        """Run ``fn`` on the executor, waiting at most the remaining
        deadline budget.  The executor job itself is not interrupted
        (threads cannot be), but this waiter stops holding admission and
        connection state for it the moment the budget runs out."""
        loop = asyncio.get_running_loop()
        fut = loop.run_in_executor(self._executor, fn, *args)
        try:
            return await asyncio.wait_for(asyncio.shield(fut), dl.remaining())
        except asyncio.TimeoutError:
            self.stats.bump("deadline_timeouts")
            fut.add_done_callback(
                lambda f: f.exception()  # abandoned: mark retrieved
            )
            raise DeadlineError(
                "deadline exceeded encoding the response"
            ) from None

    async def _admitted_window(self, header: dict, key: str, dl: Deadline):
        """Parse, admit, compose, encode-release: the shared query core.

        Returns ``(net, t0, t1, release)`` — the caller must invoke
        ``release()`` once it no longer holds response-sized data.
        """
        t0, t1 = _window_params(header)
        tenant = self._tenant(header)
        self.stats.bump("queries")
        with start_span("admission", attrs={"tenant": tenant}) as span:
            cost = self.admission.admit(tenant, t1 - t0)
            span.set_attr("cost_nnz", cost)
        released = False

        def release() -> None:
            nonlocal released
            if not released:
                released = True
                self.admission.release(tenant, cost)

        try:
            net = await self._coalesced_window(key, t0, t1, dl)
        except BaseException:
            release()
            raise
        return net, t0, t1, release

    async def _op_ping(self, rid, header, dl) -> tuple[dict, bytes]:
        return ok_response(rid, pong=True, draining=self._draining), b""

    async def _op_live(self, rid, header, dl) -> tuple[dict, bytes]:
        return ok_response(rid, **self.health.liveness()), b""

    async def _op_ready(self, rid, header, dl) -> tuple[dict, bytes]:
        return (
            ok_response(
                rid,
                **self.health.readiness(
                    queue_depth=self.shedder.depth,
                    queue_limit=self.shedder.limit,
                ),
            ),
            b"",
        )

    async def _op_window(self, rid, header, dl) -> tuple[dict, bytes]:
        net, t0, t1, release = await self._admitted_window(header, _FULL, dl)
        try:
            blob = await self._bounded_executor(dl, encode_network, net)
        finally:
            release()
        return (
            ok_response(
                rid,
                t0=t0,
                t1=t1,
                n_persons=net.n_persons,
                n_edges=net.n_edges,
                total_weight=net.total_weight,
            ),
            blob,
        )

    async def _op_layer(self, rid, header, dl) -> tuple[dict, bytes]:
        kind = header.get("kind")
        if not isinstance(kind, str):
            raise ServiceError("'kind' must be a string", code="bad-request")
        net, t0, t1, release = await self._admitted_window(
            header, kind.lower(), dl
        )
        try:
            blob = await self._bounded_executor(dl, encode_network, net)
        finally:
            release()
        return (
            ok_response(
                rid,
                kind=kind.lower(),
                t0=t0,
                t1=t1,
                n_persons=net.n_persons,
                n_edges=net.n_edges,
                total_weight=net.total_weight,
            ),
            blob,
        )

    async def _op_ego(self, rid, header, dl) -> tuple[dict, bytes]:
        person = _require_int(header, "person", minimum=0)
        radius = header.get("radius", self.config.ego_radius)
        if isinstance(radius, bool) or not isinstance(radius, int) or radius < 1:
            raise ServiceError(
                "'radius' must be a positive integer", code="bad-request"
            )
        net, t0, t1, release = await self._admitted_window(header, _FULL, dl)
        try:
            def _build() -> tuple[bytes, int, int]:
                ego = ego_network(net, person, radius=radius)
                blob = encode_csr(
                    ego.matrix,
                    persons=ego.persons.astype(np.int64),
                    center=np.array([ego.center], dtype=np.int64),
                    radius=np.array([ego.radius], dtype=np.int64),
                )
                return blob, ego.n_nodes, ego.n_edges

            blob, n_nodes, n_edges = await self._bounded_executor(dl, _build)
        finally:
            release()
        return (
            ok_response(
                rid,
                person=person,
                radius=radius,
                t0=t0,
                t1=t1,
                n_nodes=n_nodes,
                n_edges=n_edges,
            ),
            blob,
        )

    async def _op_degrees(self, rid, header, dl) -> tuple[dict, bytes]:
        kind = header.get("kind")
        if kind is not None and not isinstance(kind, str):
            raise ServiceError(
                "'kind' must be a string when given", code="bad-request"
            )
        key = kind.lower() if kind is not None else _FULL
        net, t0, t1, release = await self._admitted_window(header, key, dl)
        try:
            def _summarize() -> dict:
                dist = degree_distribution(net.degrees())
                return {
                    "t0": t0,
                    "t1": t1,
                    "kind": None if key == _FULL else key,
                    "n_vertices": int(dist.n_vertices),
                    "n_isolated": int(dist.n_isolated),
                    "n_edges": net.n_edges,
                    "total_weight": net.total_weight,
                    "mean_degree": float(dist.mean_degree),
                    "max_degree": (
                        int(dist.degrees.max()) if len(dist.degrees) else 0
                    ),
                    "degrees": dist.degrees.tolist(),
                    "counts": dist.counts.tolist(),
                }

            summary = await self._bounded_executor(dl, _summarize)
        finally:
            release()
        return ok_response(rid, **summary), b""

    async def _op_stats(self, rid, header, dl) -> tuple[dict, bytes]:
        caches = {}
        for key, handle in self._handles.items():
            s = handle.cache.stats
            caches[key] = {
                "digest": handle.cache.digest,
                "horizon": handle.horizon,
                "queries": s.queries,
                "tile_hits": s.tile_hits,
                "fringe_hits": s.fringe_hits,
                "disk_hits": s.disk_hits,
                "tiles_built": s.tiles_built,
                "tiles_merged": s.tiles_merged,
                "evictions": s.evictions,
                "tiles_quarantined": s.tiles_quarantined,
                "cached_nnz": handle.cache.cached_nnz,
                "quarantined": list(handle.cache.quarantined),
                "quarantined_tiles": list(handle.cache.quarantined_tiles),
            }
        return (
            ok_response(
                rid,
                stats=self.stats.snapshot(
                    uptime=round(self.health.uptime, 3),
                    inflight=self._inflight,
                ),
                admission=self.admission.snapshot(),
                shedder=self.shedder.snapshot(),
                health={
                    "state": self.health.state,
                    "uptime": round(self.health.uptime, 3),
                },
                caches=caches,
            ),
            b"",
        )

    async def _op_metrics(self, rid, header, dl) -> tuple[dict, bytes]:
        """Process-wide metrics registry snapshot (counters, gauges,
        histograms) — the same registry ``repro metrics`` renders."""
        return ok_response(rid, metrics=default_registry().snapshot()), b""

    async def _op_reload(self, rid, header, dl) -> tuple[dict, bytes]:
        digest = await self._reload()
        return ok_response(rid, reloaded=True, digest=digest), b""

    async def _op_shutdown(self, rid, header, dl) -> tuple[dict, bytes]:
        # respond first; the drain starts as soon as this request's
        # response is on the wire (stop() waits for in-flight writes)
        asyncio.get_running_loop().call_soon(
            lambda: asyncio.ensure_future(self.stop())
        )
        return ok_response(rid, stopping=True), b""

    _OPS = {
        "ping": _op_ping,
        "live": _op_live,
        "ready": _op_ready,
        "window": _op_window,
        "layer": _op_layer,
        "ego": _op_ego,
        "degrees": _op_degrees,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "reload": _op_reload,
        "shutdown": _op_shutdown,
    }
