"""Async multi-tenant network-query service over warm tile caches.

This is the long-lived front end that turns the batch synthesis pipeline
into infrastructure: one process owns warm
:class:`~repro.core.tilecache.TileCache` instances (the full network plus
lazily created per-place-kind layer caches) and serves concurrent window,
layer, ego-subgraph, and degree-summary queries from many clients over
the length-prefixed frame protocol in :mod:`repro.service.protocol`.

Architecture
------------
* **One event loop, a small executor.**  Connections, framing, admission,
  and coalescing run on the asyncio loop; compositions and blob encoding
  run in a bounded thread pool.  The tile caches are thread-safe (one
  lock over cache state, composition outside it), so executor threads
  share them directly — no per-query cache, no copies.
* **Request coalescing.**  Identical in-flight compositions are shared:
  the first request for a ``(cache, t0, t1)`` key becomes the *leader*
  and runs the composition; followers await the leader's future and get
  the same immutable :class:`CollocationNetwork` object.  ``ego`` and
  ``degrees`` requests coalesce with plain ``window`` requests for the
  same window, since they derive from the same composition.
* **Admission control.**  Every query charges its tenant's
  :class:`~repro.service.admission.AdmissionController` ledger before
  any work happens and releases after its response blob is encoded; an
  over-budget query is rejected with ``retry_after`` instead of growing
  the heap.  Budgets are strictly per tenant.
* **Background prefetch.**  After each window query the aligned tile
  span, extended ``prefetch_tiles`` base tiles fore and aft (clamped to
  the log horizon), is queued for background warming — sliding-window
  workloads find their next tile already built.
* **Graceful drain.**  ``stop()`` refuses new work (``shutting-down``
  rejections), stops accepting connections, waits for in-flight
  requests to finish writing (bounded by ``drain_timeout``), then closes
  caches and the executor.
* **Reload.**  The ``reload`` op re-opens every cache against the
  current log bytes (new content digest).  In-flight queries keep a
  reference to the cache they started on and finish consistently; the
  retired cache is closed once its last query completes.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..analysis.degree import degree_distribution
from ..analysis.ego import ego_network
from ..core.layers import LAYER_KINDS, layer_caches
from ..core.tilecache import TileCache
from ..errors import AdmissionError, FrameError, ReproError, ServiceError
from ..synthpop.places import PlaceTable
from .admission import AdmissionController
from .protocol import (
    DEFAULT_PORT,
    MAX_FRAME,
    encode_csr,
    encode_network,
    error_response,
    ok_response,
    read_frame,
    write_frame,
)

__all__ = ["ServiceConfig", "ServiceStats", "NetworkQueryService"]

#: handle key for the full (all place kinds) network cache
_FULL = "full"


@dataclass
class ServiceConfig:
    """Tunables for one :class:`NetworkQueryService`."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it from ``service.port``)
    port: int = DEFAULT_PORT
    tile_hours: int = 24
    #: per-cache in-memory LRU budget (stored nonzeros); None = unbounded
    cache_budget_nnz: int | None = None
    #: directory for persisted tiles (one subdirectory per cache)
    cache_dir: str | Path | None = None
    dispatch: str = "value"
    strict: bool = False
    #: per-tenant admission budget in estimated in-flight nnz; None admits all
    tenant_budget_nnz: float | None = None
    #: back-off hint carried by admission rejections, seconds
    retry_after: float = 0.05
    #: admission density prior until completed queries establish one
    assume_nnz_per_hour: float = 0.0
    #: composition/encode thread pool size
    executor_threads: int = 2
    #: base tiles warmed ahead/behind each queried span; 0 disables prefetch
    prefetch_tiles: int = 1
    max_frame: int = MAX_FRAME
    #: seconds stop() waits for in-flight requests before force-closing
    drain_timeout: float = 10.0
    #: default ego-subgraph BFS radius (the paper's figures use 2)
    ego_radius: int = 2


@dataclass
class ServiceStats:
    """Event-loop-owned counters (mutated on the loop thread only)."""

    connections: int = 0
    requests: int = 0
    #: network-producing queries (window / layer / ego / degrees)
    queries: int = 0
    #: compositions actually executed (coalescing leaders)
    compositions: int = 0
    #: queries that shared an in-flight leader's composition
    coalesced: int = 0
    #: admission-control rejections
    rejections: int = 0
    #: malformed frames (connection closed after each)
    malformed: int = 0
    #: client connections that vanished mid-request/response
    disconnects: int = 0
    #: unexpected internal errors answered with code="internal"
    errors: int = 0
    #: base tiles built by the background prefetcher
    prefetched_tiles: int = 0
    reloads: int = 0

    def snapshot(self) -> dict:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


class _CacheHandle:
    """One tile cache plus the loop-side state that rides along with it.

    ``refs`` counts in-flight uses (queries and prefetches).  After a
    reload retires a handle, the cache is closed exactly when the last
    reference drops — never under a live query.
    """

    __slots__ = ("cache", "horizon", "refs", "retired", "inflight", "prefetched")

    def __init__(self, cache: TileCache, horizon: int) -> None:
        self.cache = cache
        self.horizon = horizon
        self.refs = 0
        self.retired = False
        #: in-flight coalescing futures keyed by ``(t0, t1)``
        self.inflight: dict[tuple[int, int], asyncio.Future] = {}
        #: base-tile indices already queued for prefetch
        self.prefetched: set[int] = set()


def _require_int(header: dict, name: str, minimum: int | None = None) -> int:
    value = header.get(name)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(f"{name!r} must be an integer", code="bad-request")
    if minimum is not None and value < minimum:
        raise ServiceError(
            f"{name!r} must be >= {minimum}, got {value}", code="bad-request"
        )
    return value


def _window_params(header: dict) -> tuple[int, int]:
    t0 = _require_int(header, "t0", minimum=0)
    t1 = _require_int(header, "t1")
    if t1 <= t0:
        raise ServiceError(
            f"empty query window [{t0}, {t1})", code="bad-request"
        )
    return t0, t1


class NetworkQueryService:
    """Serve network queries over a log directory to many clients.

    Parameters
    ----------
    log_dir:
        Per-rank EVL directory the caches are built over.
    n_persons:
        Population size (matrix dimension).
    places:
        Optional :class:`PlaceTable`; required only for ``layer`` queries
        (and ``degrees`` restricted to a kind).
    config:
        :class:`ServiceConfig` tunables.

    Usage::

        service = NetworkQueryService(log_dir, pop.n_persons,
                                      places=pop.places)
        async with service:           # binds, starts serving
            ...                       # service.port is the bound port
        # stop() drains and closes on exit
    """

    def __init__(
        self,
        log_dir: str | Path,
        n_persons: int,
        places: PlaceTable | None = None,
        config: ServiceConfig | None = None,
    ) -> None:
        self.log_dir = Path(log_dir)
        self.n_persons = int(n_persons)
        self.places = places
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self.admission = AdmissionController(
            budget_nnz=self.config.tenant_budget_nnz,
            retry_after=self.config.retry_after,
            assume_nnz_per_hour=self.config.assume_nnz_per_hour,
        )
        self._handles: dict[str, _CacheHandle] = {}
        self._handle_futures: dict[str, asyncio.Future] = {}
        self._retired: list[_CacheHandle] = []
        self._server: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._inflight = 0
        self._draining = False
        self._stopped = asyncio.Event()
        self._started = False
        self._prefetch_task: asyncio.Task | None = None
        self._prefetch_queue: asyncio.Queue | None = None

    # -- lifecycle ------------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise ServiceError("service is not started", code="internal")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "NetworkQueryService":
        """Open the full-network cache and begin accepting connections."""
        if self._started:
            raise ServiceError("service already started", code="internal")
        self._started = True
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="repro-service",
        )
        await self._get_handle(_FULL)  # fail fast on an unusable log dir
        self._prefetch_queue = asyncio.Queue()
        if self.config.prefetch_tiles > 0:
            self._prefetch_task = asyncio.create_task(self._prefetch_worker())
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.config.host, port=self.config.port
        )
        return self

    async def stop(self) -> None:
        """Drain in-flight requests, then close everything (idempotent)."""
        if self._stopped.is_set():
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout
        while self._inflight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.01)
        if self._prefetch_task is not None:
            self._prefetch_task.cancel()
            try:
                await self._prefetch_task
            except asyncio.CancelledError:
                pass
            self._prefetch_task = None
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        for handle in list(self._handles.values()) + self._retired:
            handle.retired = True
            handle.cache.close()
        self._handles.clear()
        self._retired.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self._stopped.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` has completed (CLI serve loop)."""
        await self._stopped.wait()

    async def prefetch_idle(self) -> None:
        """Wait until the background prefetcher has drained its queue."""
        if self._prefetch_queue is not None:
            await self._prefetch_queue.join()

    async def __aenter__(self) -> "NetworkQueryService":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # -- cache handles --------------------------------------------------------

    def _build_handle_sync(self, key: str) -> _CacheHandle:
        """Executor side of cache construction (reads every log byte)."""
        cfg = self.config
        if key == _FULL:
            cache = TileCache(
                self.log_dir,
                self.n_persons,
                tile_hours=cfg.tile_hours,
                budget_nnz=cfg.cache_budget_nnz,
                cache_dir=(
                    Path(cfg.cache_dir) / key
                    if cfg.cache_dir is not None
                    else None
                ),
                dispatch=cfg.dispatch,
                strict=cfg.strict,
            )
        else:
            assert self.places is not None
            cache = layer_caches(
                self.log_dir,
                self.places,
                self.n_persons,
                tile_hours=cfg.tile_hours,
                budget_nnz=cfg.cache_budget_nnz,
                cache_dir=cfg.cache_dir,
                dispatch=cfg.dispatch,
                strict=cfg.strict,
                kinds=[key],
            )[key]
        return _CacheHandle(cache, horizon=cache.horizon())

    async def _get_handle(self, key: str) -> _CacheHandle:
        """The live handle for ``key``, building its cache at most once
        even under concurrent first requests."""
        handle = self._handles.get(key)
        if handle is not None:
            return handle
        if key != _FULL:
            if key not in LAYER_KINDS:
                raise ServiceError(
                    f"unknown layer kind {key!r}; expected one of "
                    f"{', '.join(LAYER_KINDS)}",
                    code="bad-request",
                )
            if self.places is None:
                raise ServiceError(
                    "layer queries need the service started with a "
                    "population's place table",
                    code="bad-request",
                )
        fut = self._handle_futures.get(key)
        if fut is not None:
            return await fut
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._handle_futures[key] = fut
        try:
            handle = await loop.run_in_executor(
                self._executor, self._build_handle_sync, key
            )
        except Exception as exc:
            fut.set_exception(exc)
            fut.exception()  # mark retrieved: followers may be absent
            raise
        else:
            self._handles[key] = handle
            fut.set_result(handle)
            return handle
        finally:
            self._handle_futures.pop(key, None)

    def _maybe_close(self, handle: _CacheHandle) -> None:
        if handle.retired and handle.refs == 0:
            handle.cache.close()
            if handle in self._retired:
                self._retired.remove(handle)

    async def _reload(self) -> str:
        """Swap every cache for a fresh one keyed to the current log
        bytes; in-flight queries finish on the caches they started on."""
        keys = list(self._handles)
        old = [self._handles[k] for k in keys]
        loop = asyncio.get_running_loop()
        fresh = {}
        for key in keys:
            fresh[key] = await loop.run_in_executor(
                self._executor, self._build_handle_sync, key
            )
        self._handles.update(fresh)
        for handle in old:
            handle.retired = True
            self._retired.append(handle)
            self._maybe_close(handle)
        self.stats.reloads += 1
        return self._handles[_FULL].cache.digest

    # -- coalesced composition ------------------------------------------------

    async def _coalesced_window(self, key: str, t0: int, t1: int):
        """One window composition per in-flight ``(cache, t0, t1)``."""
        handle = await self._get_handle(key)
        handle.refs += 1
        try:
            wkey = (t0, t1)
            fut = handle.inflight.get(wkey)
            if fut is not None:
                self.stats.coalesced += 1
                net = await fut
            else:
                loop = asyncio.get_running_loop()
                fut = loop.create_future()
                handle.inflight[wkey] = fut
                self.stats.compositions += 1
                try:
                    net = await loop.run_in_executor(
                        self._executor, handle.cache.query_window, t0, t1
                    )
                except Exception as exc:
                    fut.set_exception(exc)
                    fut.exception()  # followers may be absent
                    raise
                else:
                    fut.set_result(net)
                finally:
                    handle.inflight.pop(wkey, None)
            self.admission.observe(t1 - t0, net.n_edges)
            self._note_span(handle, t0, t1)
            return net
        finally:
            handle.refs -= 1
            self._maybe_close(handle)

    # -- prefetch -------------------------------------------------------------

    def _note_span(self, handle: _CacheHandle, t0: int, t1: int) -> None:
        """Queue the tiles fore and aft of a queried span for warming."""
        n_ahead = self.config.prefetch_tiles
        if n_ahead <= 0 or self._prefetch_queue is None or handle.retired:
            return
        T = self.config.tile_hours
        a0, a1 = t0 // T, -(-t1 // T)
        last_tile = -(-handle.horizon // T)  # first tile past the horizon
        candidates = [i for i in range(a1, min(a1 + n_ahead, last_tile))]
        candidates += [i for i in range(max(a0 - n_ahead, 0), a0)]
        for idx in candidates:
            if idx not in handle.prefetched:
                handle.prefetched.add(idx)
                self._prefetch_queue.put_nowait((handle, idx))

    async def _prefetch_worker(self) -> None:
        """Warm queued tiles in the background; never dies on an error."""
        assert self._prefetch_queue is not None
        loop = asyncio.get_running_loop()
        T = self.config.tile_hours
        while True:
            handle, idx = await self._prefetch_queue.get()
            try:
                if not handle.retired:
                    handle.refs += 1
                    try:
                        built = await loop.run_in_executor(
                            self._executor,
                            handle.cache.warm,
                            idx * T,
                            (idx + 1) * T,
                        )
                        self.stats.prefetched_tiles += built
                    finally:
                        handle.refs -= 1
                        self._maybe_close(handle)
            except asyncio.CancelledError:
                self._prefetch_queue.task_done()
                raise
            except Exception:
                self.stats.errors += 1
            else:
                self._prefetch_queue.task_done()
                continue
            self._prefetch_queue.task_done()

    # -- connection handling --------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        self._writers.add(writer)
        try:
            while True:
                try:
                    header, _blob = await read_frame(
                        reader, self.config.max_frame
                    )
                except FrameError as exc:
                    # a broken frame loses stream phase: answer and close
                    self.stats.malformed += 1
                    try:
                        write_frame(
                            writer,
                            error_response(None, str(exc), "malformed"),
                        )
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    OSError,
                ):
                    break  # peer went away between requests
                self._inflight += 1
                try:
                    resp_header, resp_blob = await self._dispatch(header)
                    try:
                        write_frame(writer, resp_header, resp_blob)
                        await writer.drain()
                    except (ConnectionError, OSError):
                        self.stats.disconnects += 1
                        break
                finally:
                    self._inflight -= 1
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, header: dict) -> tuple[dict, bytes]:
        rid = header.get("id")
        op = header.get("op")
        self.stats.requests += 1
        if self._draining and op not in ("ping", "stats"):
            return (
                error_response(rid, "server is draining", "shutting-down"),
                b"",
            )
        handler = self._OPS.get(op)
        if handler is None:
            return (
                error_response(rid, f"unknown op {op!r}", "bad-request"),
                b"",
            )
        try:
            return await handler(self, rid, header)
        except AdmissionError as exc:
            self.stats.rejections += 1
            return (
                error_response(
                    rid, str(exc), exc.code, retry_after=exc.retry_after
                ),
                b"",
            )
        except ServiceError as exc:
            return error_response(rid, str(exc), exc.code), b""
        except ReproError as exc:
            # domain validation (bad window, unknown person, damaged logs)
            return error_response(rid, str(exc), "bad-request"), b""
        except Exception as exc:  # noqa: BLE001 - server must stay up
            self.stats.errors += 1
            return (
                error_response(
                    rid, f"{type(exc).__name__}: {exc}", "internal"
                ),
                b"",
            )

    # -- ops ------------------------------------------------------------------

    def _tenant(self, header: dict) -> str:
        tenant = header.get("tenant", "anon")
        if not isinstance(tenant, str) or not tenant:
            raise ServiceError("'tenant' must be a non-empty string",
                               code="bad-request")
        return tenant

    async def _admitted_window(self, header: dict, key: str):
        """Parse, admit, compose, encode-release: the shared query core.

        Returns ``(net, t0, t1, release)`` — the caller must invoke
        ``release()`` once it no longer holds response-sized data.
        """
        t0, t1 = _window_params(header)
        tenant = self._tenant(header)
        self.stats.queries += 1
        cost = self.admission.admit(tenant, t1 - t0)
        released = False

        def release() -> None:
            nonlocal released
            if not released:
                released = True
                self.admission.release(tenant, cost)

        try:
            net = await self._coalesced_window(key, t0, t1)
        except BaseException:
            release()
            raise
        return net, t0, t1, release

    async def _op_ping(self, rid, header) -> tuple[dict, bytes]:
        return ok_response(rid, pong=True, draining=self._draining), b""

    async def _op_window(self, rid, header) -> tuple[dict, bytes]:
        net, t0, t1, release = await self._admitted_window(header, _FULL)
        try:
            blob = await asyncio.get_running_loop().run_in_executor(
                self._executor, encode_network, net
            )
        finally:
            release()
        return (
            ok_response(
                rid,
                t0=t0,
                t1=t1,
                n_persons=net.n_persons,
                n_edges=net.n_edges,
                total_weight=net.total_weight,
            ),
            blob,
        )

    async def _op_layer(self, rid, header) -> tuple[dict, bytes]:
        kind = header.get("kind")
        if not isinstance(kind, str):
            raise ServiceError("'kind' must be a string", code="bad-request")
        net, t0, t1, release = await self._admitted_window(
            header, kind.lower()
        )
        try:
            blob = await asyncio.get_running_loop().run_in_executor(
                self._executor, encode_network, net
            )
        finally:
            release()
        return (
            ok_response(
                rid,
                kind=kind.lower(),
                t0=t0,
                t1=t1,
                n_persons=net.n_persons,
                n_edges=net.n_edges,
                total_weight=net.total_weight,
            ),
            blob,
        )

    async def _op_ego(self, rid, header) -> tuple[dict, bytes]:
        person = _require_int(header, "person", minimum=0)
        radius = header.get("radius", self.config.ego_radius)
        if isinstance(radius, bool) or not isinstance(radius, int) or radius < 1:
            raise ServiceError(
                "'radius' must be a positive integer", code="bad-request"
            )
        net, t0, t1, release = await self._admitted_window(header, _FULL)
        loop = asyncio.get_running_loop()
        try:
            def _build() -> tuple[bytes, int, int]:
                ego = ego_network(net, person, radius=radius)
                blob = encode_csr(
                    ego.matrix,
                    persons=ego.persons.astype(np.int64),
                    center=np.array([ego.center], dtype=np.int64),
                    radius=np.array([ego.radius], dtype=np.int64),
                )
                return blob, ego.n_nodes, ego.n_edges

            blob, n_nodes, n_edges = await loop.run_in_executor(
                self._executor, _build
            )
        finally:
            release()
        return (
            ok_response(
                rid,
                person=person,
                radius=radius,
                t0=t0,
                t1=t1,
                n_nodes=n_nodes,
                n_edges=n_edges,
            ),
            blob,
        )

    async def _op_degrees(self, rid, header) -> tuple[dict, bytes]:
        kind = header.get("kind")
        if kind is not None and not isinstance(kind, str):
            raise ServiceError(
                "'kind' must be a string when given", code="bad-request"
            )
        key = kind.lower() if kind is not None else _FULL
        net, t0, t1, release = await self._admitted_window(header, key)
        loop = asyncio.get_running_loop()
        try:
            def _summarize() -> dict:
                dist = degree_distribution(net.degrees())
                return {
                    "t0": t0,
                    "t1": t1,
                    "kind": None if key == _FULL else key,
                    "n_vertices": int(dist.n_vertices),
                    "n_isolated": int(dist.n_isolated),
                    "n_edges": net.n_edges,
                    "total_weight": net.total_weight,
                    "mean_degree": float(dist.mean_degree),
                    "max_degree": (
                        int(dist.degrees.max()) if len(dist.degrees) else 0
                    ),
                    "degrees": dist.degrees.tolist(),
                    "counts": dist.counts.tolist(),
                }

            summary = await loop.run_in_executor(self._executor, _summarize)
        finally:
            release()
        return ok_response(rid, **summary), b""

    async def _op_stats(self, rid, header) -> tuple[dict, bytes]:
        caches = {}
        for key, handle in self._handles.items():
            s = handle.cache.stats
            caches[key] = {
                "digest": handle.cache.digest,
                "horizon": handle.horizon,
                "queries": s.queries,
                "tile_hits": s.tile_hits,
                "fringe_hits": s.fringe_hits,
                "disk_hits": s.disk_hits,
                "tiles_built": s.tiles_built,
                "tiles_merged": s.tiles_merged,
                "evictions": s.evictions,
                "cached_nnz": handle.cache.cached_nnz,
                "quarantined": list(handle.cache.quarantined),
            }
        return (
            ok_response(
                rid,
                stats=self.stats.snapshot(),
                admission=self.admission.snapshot(),
                caches=caches,
            ),
            b"",
        )

    async def _op_reload(self, rid, header) -> tuple[dict, bytes]:
        digest = await self._reload()
        return ok_response(rid, reloaded=True, digest=digest), b""

    async def _op_shutdown(self, rid, header) -> tuple[dict, bytes]:
        # respond first; the drain starts as soon as this request's
        # response is on the wire (stop() waits for in-flight writes)
        asyncio.get_running_loop().call_soon(
            lambda: asyncio.ensure_future(self.stop())
        )
        return ok_response(rid, stopping=True), b""

    _OPS = {
        "ping": _op_ping,
        "window": _op_window,
        "layer": _op_layer,
        "ego": _op_ego,
        "degrees": _op_degrees,
        "stats": _op_stats,
        "reload": _op_reload,
        "shutdown": _op_shutdown,
    }
