"""Long-lived network-query service: the batch pipeline as infrastructure.

The paper's product is a *queryable* endogenous network; this package
serves it.  A :class:`NetworkQueryService` owns warm
:class:`~repro.core.tilecache.TileCache` instances over a log directory
and answers concurrent window / layer / ego-subgraph / degree-summary
queries from many clients over a length-prefixed frame protocol, with
request coalescing, per-tenant admission control, background tile
prefetch, and graceful drain.  The resilience layer adds deadline
propagation, priority load shedding, liveness/readiness probes
(:mod:`repro.service.resilience`, :mod:`repro.service.health`), and a
replica-failover client with circuit breakers and request hedging
(:mod:`repro.service.failover`).  See :mod:`repro.service.server` for
the architecture and :mod:`repro.service.protocol` for the wire format.

Start one from the CLI with ``repro serve`` and query it with
``repro client`` or programmatically::

    service = NetworkQueryService(log_dir, pop.n_persons, places=pop.places)
    async with service:
        async with ServiceClient(port=service.port) as client:
            net = await client.query_window(0, 168)
"""

from .admission import AdmissionController, TenantUsage
from .client import EgoResult, QueryMethods, ServiceClient, SyncServiceClient
from .failover import FailoverClient
from .health import HealthMonitor
from .protocol import (
    DEFAULT_PORT,
    MAX_FRAME,
    decode_csr,
    decode_network,
    encode_csr,
    encode_network,
    read_frame,
    write_frame,
)
from .resilience import (
    CircuitBreaker,
    Deadline,
    LoadShedder,
    jittered_backoff,
)
from .server import NetworkQueryService, ServiceConfig, ServiceStats

__all__ = [
    "AdmissionController",
    "TenantUsage",
    "EgoResult",
    "QueryMethods",
    "ServiceClient",
    "SyncServiceClient",
    "FailoverClient",
    "HealthMonitor",
    "CircuitBreaker",
    "Deadline",
    "LoadShedder",
    "jittered_backoff",
    "DEFAULT_PORT",
    "MAX_FRAME",
    "decode_csr",
    "decode_network",
    "encode_csr",
    "encode_network",
    "read_frame",
    "write_frame",
    "NetworkQueryService",
    "ServiceConfig",
    "ServiceStats",
]
