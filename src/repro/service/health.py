"""Liveness and readiness for the network-query service.

Two probes, wired into the frame protocol as the ``live`` and ``ready``
ops (control priority: never shed, answered even mid-drain):

* **Liveness** answers "is the process's event loop turning?" — the act
  of answering *is* the probe, so it only ever reports ``live: true``
  plus the current lifecycle state and uptime.  An operator's probe
  timeout, not a negative answer, is what detects a dead loop.
* **Readiness** answers "should a load balancer send traffic here?" —
  false while starting (caches not yet open), while draining, while the
  admission queue is at its limit, or within ``shed_grace`` seconds of
  the last load-shed (a server that just shed is still under pressure;
  flapping back into rotation immediately re-creates the overload).

The monitor itself is a tiny synchronous state machine so it can be
unit-tested without a server and reused by future shard/replica
managers; the server owns the transitions.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["HealthMonitor", "STARTING", "READY", "DRAINING", "STOPPED"]

STARTING = "starting"
READY = "ready"
DRAINING = "draining"
STOPPED = "stopped"


class HealthMonitor:
    """Lifecycle state + shed pressure, feeding the probe ops."""

    def __init__(
        self,
        shed_grace: float = 0.5,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        self.shed_grace = float(shed_grace)
        self._time = time_fn
        self._born = time_fn()
        self._state = STARTING
        self._last_shed: float | None = None

    @property
    def state(self) -> str:
        return self._state

    @property
    def uptime(self) -> float:
        return self._time() - self._born

    def to_ready(self) -> None:
        self._state = READY

    def to_draining(self) -> None:
        self._state = DRAINING

    def to_stopped(self) -> None:
        self._state = STOPPED

    def note_shed(self) -> None:
        """Record a load-shed; readiness stays false for ``shed_grace``."""
        self._last_shed = self._time()

    def recently_shed(self) -> bool:
        return (
            self._last_shed is not None
            and self._time() - self._last_shed < self.shed_grace
        )

    def liveness(self) -> dict:
        return {
            "live": True,
            "state": self._state,
            "uptime": round(self.uptime, 3),
        }

    def readiness(
        self, queue_depth: int = 0, queue_limit: int | None = None
    ) -> dict:
        """The readiness verdict plus the reasons it is false (if any)."""
        reasons: list[str] = []
        if self._state != READY:
            reasons.append(f"state is {self._state!r}")
        if queue_limit is not None and queue_depth >= queue_limit:
            reasons.append(
                f"admission queue full ({queue_depth}/{queue_limit})"
            )
        if self.recently_shed():
            reasons.append("recently shed load")
        return {
            "ready": not reasons,
            "state": self._state,
            "reasons": reasons,
            "queue_depth": queue_depth,
            "queue_limit": queue_limit,
        }
