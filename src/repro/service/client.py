"""Clients for the network-query service.

:class:`ServiceClient` is the asyncio client used by the concurrency
tests and the load-generator benchmark: one TCP connection, sequential
request/response (pipelining is the protocol's job, concurrency is the
caller's — open several clients for parallel load).  Admission
rejections surface as :class:`~repro.errors.AdmissionError` carrying the
server's ``retry_after``; ``retries`` turns them into bounded
sleep-and-retry loops instead.

:class:`SyncServiceClient` wraps it in a private event loop for the CLI
and scripts.
"""

from __future__ import annotations

import asyncio
from typing import Any

import numpy as np
import scipy.sparse as sp

from ..core.network import CollocationNetwork
from ..errors import AdmissionError, ServiceError
from .protocol import (
    DEFAULT_PORT,
    MAX_FRAME,
    decode_csr,
    decode_network,
    read_frame,
    write_frame,
)

__all__ = ["ServiceClient", "SyncServiceClient", "EgoResult"]


class EgoResult:
    """Decoded ``ego`` response: symmetric CSR + global person ids."""

    def __init__(
        self,
        center: int,
        persons: np.ndarray,
        matrix: sp.csr_matrix,
        radius: int,
        t0: int,
        t1: int,
    ) -> None:
        self.center = center
        self.persons = persons
        self.matrix = matrix
        self.radius = radius
        self.t0 = t0
        self.t1 = t1

    @property
    def n_nodes(self) -> int:
        return len(self.persons)

    @property
    def n_edges(self) -> int:
        return int(self.matrix.nnz // 2)


class ServiceClient:
    """One connection to a :class:`NetworkQueryService`.

    Parameters
    ----------
    host, port:
        Server address.
    tenant:
        Admission-control identity sent with every query.
    retries:
        Extra attempts after an admission rejection; each sleeps the
        server-suggested ``retry_after`` first.  0 surfaces the first
        rejection as :class:`AdmissionError`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        tenant: str = "anon",
        retries: int = 0,
        max_frame: int = MAX_FRAME,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.retries = int(retries)
        self.max_frame = max_frame
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- request core ---------------------------------------------------------

    async def request(self, op: str, **params: Any) -> tuple[dict, bytes]:
        """One raw request/response; raises mapped service errors."""
        if self._writer is None or self._reader is None:
            raise ServiceError("client is not connected", code="internal")
        attempts = self.retries + 1
        for attempt in range(attempts):
            self._next_id += 1
            header = {
                "op": op,
                "id": self._next_id,
                "tenant": self.tenant,
                **params,
            }
            write_frame(self._writer, header)
            await self._writer.drain()
            resp, blob = await read_frame(self._reader, self.max_frame)
            if resp.get("ok"):
                if resp.get("id") != header["id"]:
                    raise ServiceError(
                        f"response id {resp.get('id')!r} != request id "
                        f"{header['id']!r}",
                        code="internal",
                    )
                return resp, blob
            code = resp.get("code", "internal")
            message = resp.get("error", "service error")
            if code == "admission":
                retry_after = float(resp.get("retry_after", 0.05))
                if attempt + 1 < attempts:
                    await asyncio.sleep(retry_after)
                    continue
                raise AdmissionError(message, retry_after=retry_after)
            raise ServiceError(message, code=code)
        raise AssertionError("unreachable")

    # -- typed queries --------------------------------------------------------

    async def ping(self) -> dict:
        resp, _ = await self.request("ping")
        return resp

    async def query_window(self, t0: int, t1: int) -> CollocationNetwork:
        """The full network of ``[t0, t1)``, bit-identical to a direct
        interval-kernel synthesis of the same window."""
        _resp, blob = await self.request("window", t0=t0, t1=t1)
        return decode_network(blob)

    async def query_layer(
        self, kind: str, t0: int, t1: int
    ) -> CollocationNetwork:
        """One place-kind layer's network of ``[t0, t1)``."""
        _resp, blob = await self.request("layer", kind=kind, t0=t0, t1=t1)
        return decode_network(blob)

    async def query_ego(
        self, person: int, t0: int, t1: int, radius: int | None = None
    ) -> EgoResult:
        """The induced ego subgraph around ``person`` over ``[t0, t1)``."""
        params: dict[str, Any] = {"person": person, "t0": t0, "t1": t1}
        if radius is not None:
            params["radius"] = radius
        resp, blob = await self.request("ego", **params)
        matrix, extra = decode_csr(blob)
        return EgoResult(
            center=int(extra["center"][0]),
            persons=extra["persons"],
            matrix=matrix,
            radius=int(extra["radius"][0]),
            t0=resp["t0"],
            t1=resp["t1"],
        )

    async def degree_summary(
        self, t0: int, t1: int, kind: str | None = None
    ) -> dict:
        """Degree summary + histogram of ``[t0, t1)`` (optionally one
        layer)."""
        params: dict[str, Any] = {"t0": t0, "t1": t1}
        if kind is not None:
            params["kind"] = kind
        resp, _ = await self.request("degrees", **params)
        return resp

    async def stats(self) -> dict:
        resp, _ = await self.request("stats")
        return resp

    async def reload(self) -> dict:
        resp, _ = await self.request("reload")
        return resp

    async def shutdown(self) -> dict:
        resp, _ = await self.request("shutdown")
        return resp


class SyncServiceClient:
    """Blocking facade over :class:`ServiceClient` (CLI / scripts).

    Owns a private event loop; every call connects lazily and runs one
    request to completion.  Not for concurrent use — open real
    :class:`ServiceClient` connections for load.
    """

    def __init__(self, **kwargs: Any) -> None:
        self._kwargs = kwargs
        self._loop = asyncio.new_event_loop()
        self._client: ServiceClient | None = None

    def _run(self, coro):
        return self._loop.run_until_complete(coro)

    def _ensure(self) -> ServiceClient:
        if self._client is None:
            client = ServiceClient(**self._kwargs)
            self._run(client.connect())
            self._client = client
        return self._client

    def close(self) -> None:
        if self._client is not None:
            self._run(self._client.close())
            self._client = None
        if not self._loop.is_closed():
            self._loop.close()

    def __enter__(self) -> "SyncServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __getattr__(self, name: str):
        """Expose every async query method synchronously."""
        target = getattr(ServiceClient, name, None)
        if target is None or name.startswith("_"):
            raise AttributeError(name)

        def call(*args: Any, **kwargs: Any):
            client = self._ensure()
            return self._run(getattr(client, name)(*args, **kwargs))

        return call
