"""Clients for the network-query service.

:class:`ServiceClient` is the asyncio client used by the concurrency
tests and the load-generator benchmark: one TCP connection, sequential
request/response (pipelining is the protocol's job, concurrency is the
caller's — open several clients for parallel load).  Admission and
overload rejections surface as :class:`~repro.errors.AdmissionError` /
:class:`~repro.errors.OverloadError` carrying the server's
``retry_after``; ``retries`` turns them into bounded retry loops whose
sleeps are jittered and capped (``retry_after · 2^attempt`` up to
``max_retry_sleep``, scaled by a uniform jitter) so a herd of rejected
clients does not stampede back in lockstep.  A client-side ``deadline``
budget is attached to every request header; deadline rejections come
back as :class:`~repro.errors.DeadlineError` (``code="expired"`` when
dead on arrival, ``code="deadline"`` when it ran out mid-flight) and are
never retried here — the budget is already gone.

:class:`SyncServiceClient` wraps any async client (this one or
:class:`~repro.service.failover.FailoverClient`) in a private event loop
for the CLI and scripts.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any

import numpy as np
import scipy.sparse as sp

from ..core.network import CollocationNetwork
from ..errors import (
    AdmissionError,
    DeadlineError,
    OverloadError,
    ServiceError,
)
from ..obs import start_span
from .protocol import (
    DEFAULT_PORT,
    MAX_FRAME,
    decode_csr,
    decode_network,
    read_frame,
    write_frame,
)
from .resilience import jittered_backoff

__all__ = ["ServiceClient", "SyncServiceClient", "EgoResult", "QueryMethods"]


class EgoResult:
    """Decoded ``ego`` response: symmetric CSR + global person ids."""

    def __init__(
        self,
        center: int,
        persons: np.ndarray,
        matrix: sp.csr_matrix,
        radius: int,
        t0: int,
        t1: int,
    ) -> None:
        self.center = center
        self.persons = persons
        self.matrix = matrix
        self.radius = radius
        self.t0 = t0
        self.t1 = t1

    @property
    def n_nodes(self) -> int:
        return len(self.persons)

    @property
    def n_edges(self) -> int:
        return int(self.matrix.nnz // 2)


class QueryMethods:
    """Typed query methods over an abstract ``request(op, **params)``.

    Shared by :class:`ServiceClient` (one connection) and
    :class:`~repro.service.failover.FailoverClient` (a replica set) so
    callers and the CLI can treat either uniformly.
    """

    async def request(self, op: str, **params: Any) -> tuple[dict, bytes]:
        raise NotImplementedError

    async def ping(self) -> dict:
        resp, _ = await self.request("ping")
        return resp

    async def liveness(self) -> dict:
        resp, _ = await self.request("live")
        return resp

    async def readiness(self) -> dict:
        resp, _ = await self.request("ready")
        return resp

    async def query_window(self, t0: int, t1: int) -> CollocationNetwork:
        """The full network of ``[t0, t1)``, bit-identical to a direct
        interval-kernel synthesis of the same window."""
        _resp, blob = await self.request("window", t0=t0, t1=t1)
        return decode_network(blob)

    async def query_layer(
        self, kind: str, t0: int, t1: int
    ) -> CollocationNetwork:
        """One place-kind layer's network of ``[t0, t1)``."""
        _resp, blob = await self.request("layer", kind=kind, t0=t0, t1=t1)
        return decode_network(blob)

    async def query_ego(
        self, person: int, t0: int, t1: int, radius: int | None = None
    ) -> EgoResult:
        """The induced ego subgraph around ``person`` over ``[t0, t1)``."""
        params: dict[str, Any] = {"person": person, "t0": t0, "t1": t1}
        if radius is not None:
            params["radius"] = radius
        resp, blob = await self.request("ego", **params)
        matrix, extra = decode_csr(blob)
        return EgoResult(
            center=int(extra["center"][0]),
            persons=extra["persons"],
            matrix=matrix,
            radius=int(extra["radius"][0]),
            t0=resp["t0"],
            t1=resp["t1"],
        )

    async def degree_summary(
        self, t0: int, t1: int, kind: str | None = None
    ) -> dict:
        """Degree summary + histogram of ``[t0, t1)`` (optionally one
        layer)."""
        params: dict[str, Any] = {"t0": t0, "t1": t1}
        if kind is not None:
            params["kind"] = kind
        resp, _ = await self.request("degrees", **params)
        return resp

    async def stats(self) -> dict:
        resp, _ = await self.request("stats")
        return resp

    async def metrics(self) -> dict:
        """The server's process-wide metrics registry snapshot."""
        resp, _ = await self.request("metrics")
        return resp


class ServiceClient(QueryMethods):
    """One connection to a :class:`NetworkQueryService`.

    Parameters
    ----------
    host, port:
        Server address.
    tenant:
        Admission-control identity sent with every query.
    retries:
        Extra attempts after an admission/overload rejection; each
        sleeps a jittered, capped back-off first.  0 surfaces the first
        rejection.
    deadline:
        Per-request budget (seconds) attached to every request header;
        the server rejects rather than serves work it cannot finish in
        time.  ``None`` sends no budget.  A per-call ``deadline=``
        keyword on :meth:`request` overrides it.
    max_retry_sleep:
        Cap on any single retry sleep, seconds.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        tenant: str = "anon",
        retries: int = 0,
        deadline: float | None = None,
        max_retry_sleep: float = 1.0,
        max_frame: int = MAX_FRAME,
        rng: random.Random | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.retries = int(retries)
        self.deadline = deadline
        self.max_retry_sleep = float(max_retry_sleep)
        self.max_frame = max_frame
        self._rng = rng
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0
        #: trace id echoed by the server for the most recent response —
        #: the key to pull that request's span tree out of a trace log
        self.last_trace_id: str | None = None

    async def connect(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "ServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- request core ---------------------------------------------------------

    async def request(self, op: str, **params: Any) -> tuple[dict, bytes]:
        """One raw request/response; raises mapped service errors."""
        if self._writer is None or self._reader is None:
            raise ServiceError("client is not connected", code="internal")
        if self.deadline is not None and "deadline" not in params:
            params["deadline"] = self.deadline
        attempts = self.retries + 1
        for attempt in range(attempts):
            self._next_id += 1
            header = {
                "op": op,
                "id": self._next_id,
                "tenant": self.tenant,
                **params,
            }
            # each attempt is its own span; the server parents its
            # request span to the context shipped in header["trace"]
            with start_span("client.request", attrs={"op": op}) as span:
                ctx = span.context()
                if ctx is not None:
                    header["trace"] = ctx.to_wire()
                write_frame(self._writer, header)
                await self._writer.drain()
                resp, blob = await read_frame(self._reader, self.max_frame)
                tid = resp.get("trace_id")
                if isinstance(tid, str) and tid:
                    self.last_trace_id = tid
                if not resp.get("ok"):
                    span.set_status(f"error:{resp.get('code')}")
            if resp.get("ok"):
                if resp.get("id") != header["id"]:
                    raise ServiceError(
                        f"response id {resp.get('id')!r} != request id "
                        f"{header['id']!r}",
                        code="internal",
                    )
                return resp, blob
            code = resp.get("code", "internal")
            message = resp.get("error", "service error")
            if code in ("admission", "overload"):
                retry_after = float(resp.get("retry_after", 0.05))
                if attempt + 1 < attempts:
                    # jittered + capped: rejected herds must de-correlate
                    await asyncio.sleep(
                        jittered_backoff(
                            attempt,
                            base=retry_after,
                            cap=self.max_retry_sleep,
                            rng=self._rng,
                        )
                    )
                    continue
                if code == "admission":
                    raise AdmissionError(message, retry_after=retry_after)
                raise OverloadError(message, retry_after=retry_after)
            if code in ("expired", "deadline"):
                raise DeadlineError(message, code=code)
            raise ServiceError(message, code=code)
        raise AssertionError("unreachable")

    # -- single-connection control ops ---------------------------------------

    async def reload(self) -> dict:
        resp, _ = await self.request("reload")
        return resp

    async def shutdown(self) -> dict:
        resp, _ = await self.request("shutdown")
        return resp


class SyncServiceClient:
    """Blocking facade over an async client (CLI / scripts).

    Owns a private event loop; every call connects lazily and runs one
    request to completion.  ``cls`` selects the wrapped client —
    :class:`ServiceClient` by default, or
    :class:`~repro.service.failover.FailoverClient` for a replica set.
    Not for concurrent use — open real async connections for load.
    """

    def __init__(self, cls: type | None = None, **kwargs: Any) -> None:
        self._cls = cls or ServiceClient
        self._kwargs = kwargs
        self._loop = asyncio.new_event_loop()
        self._client: Any = None

    def _run(self, coro):
        return self._loop.run_until_complete(coro)

    def _ensure(self):
        if self._client is None:
            client = self._cls(**self._kwargs)
            self._run(client.connect())
            self._client = client
        return self._client

    def close(self) -> None:
        if self._client is not None:
            self._run(self._client.close())
            self._client = None
        if not self._loop.is_closed():
            self._loop.close()

    def __enter__(self) -> "SyncServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __getattr__(self, name: str):
        """Expose every async query method synchronously."""
        target = getattr(self._cls, name, None)
        if target is None or name.startswith("_"):
            raise AttributeError(name)

        def call(*args: Any, **kwargs: Any):
            client = self._ensure()
            return self._run(getattr(client, name)(*args, **kwargs))

        return call
