"""Replica failover client for the network-query service.

:class:`FailoverClient` exposes the same typed query surface as
:class:`~repro.service.client.ServiceClient` but fans a *replica set*:
every request walks the replicas round-robin, skipping those whose
:class:`~repro.service.resilience.CircuitBreaker` is open, retrying
idempotent queries on the next healthy replica after connection
failures, frame corruption, timeouts, or overload rejections, with
jittered exponential backoff between full cycles.

Design points
-------------
* **Only idempotent ops.**  Every query op (``ping``/``live``/``ready``/
  ``stats``/``window``/``layer``/``ego``/``degrees``) is read-only and
  safe to repeat; ``reload`` and ``shutdown`` are deliberately *not*
  exposed — retrying a mutation against a different replica is how
  split-brain stories start.
* **Per-replica circuit breakers.**  Connection errors and timeouts trip
  the breaker; an open breaker removes the replica from rotation until
  ``reset_timeout`` grants a half-open probe.  When *every* breaker is
  open the client force-probes the one closest to its reset — a fully
  open set must degrade to probing, not to instant failure.
* **Deadline aware.**  The client-side ``deadline`` bounds the *whole*
  failover dance: each attempt gets ``min(attempt_timeout, remaining)``
  and forwards the remaining budget in the frame header so the server
  sheds work this client will no longer wait for.
* **Tail-request hedging** (optional).  When ``hedge_after`` seconds
  pass without a primary answer, the same request is raced on the next
  healthy replica and the first answer wins — the loser is cancelled
  and its connection reset (the abandoned response would otherwise
  desynchronize the stream).
* **Errors**: deadline and domain errors (``bad-request`` etc.) are
  terminal — another replica would answer the same.  Exhausting every
  replica across ``retries`` cycles raises
  :class:`~repro.errors.ReplicaSetError` with the last failure as
  ``__cause__``.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any

from ..errors import (
    AdmissionError,
    DeadlineError,
    FrameError,
    OverloadError,
    ReplicaSetError,
    ServiceError,
)
from .client import QueryMethods, ServiceClient
from .protocol import MAX_FRAME
from .resilience import CircuitBreaker, Deadline, jittered_backoff

__all__ = ["FailoverClient"]

#: exceptions that mean "this replica (or the path to it) is unhealthy"
_REPLICA_FAULTS = (
    ConnectionError,
    OSError,
    asyncio.IncompleteReadError,
    asyncio.TimeoutError,
    FrameError,
)


class _Replica:
    """One replica address, its breaker, and a lazily opened connection."""

    __slots__ = ("host", "port", "breaker", "client")

    def __init__(self, host: str, port: int, breaker: CircuitBreaker) -> None:
        self.host = host
        self.port = int(port)
        self.breaker = breaker
        self.client: ServiceClient | None = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def ensure(self, tenant: str, max_frame: int) -> ServiceClient:
        if self.client is None:
            client = ServiceClient(
                host=self.host,
                port=self.port,
                tenant=tenant,
                retries=0,
                max_frame=max_frame,
            )
            await client.connect()
            self.client = client
        return self.client

    async def reset(self) -> None:
        """Drop the connection; the next attempt reconnects fresh.  A
        connection that errored (or was abandoned mid-response) has lost
        stream phase and must not be reused."""
        if self.client is not None:
            client, self.client = self.client, None
            try:
                await client.close()
            except (ConnectionError, OSError):
                pass


class FailoverClient(QueryMethods):
    """Query a replica set with circuit breaking, retries, and hedging.

    Parameters
    ----------
    replicas:
        ``(host, port)`` pairs (or ``"host:port"`` strings), tried in
        round-robin order starting after the last replica that answered.
    retries:
        Full cycles over the replica set before giving up.
    attempt_timeout:
        Per-attempt bound, seconds; also trips the breaker of a replica
        that accepts connections but never answers (black hole).
    deadline:
        End-to-end budget per request (seconds), forwarded to servers as
        the remaining budget.  ``None`` relies on ``attempt_timeout``
        and ``retries`` alone.
    hedge_after:
        Race a second replica after this many seconds without a primary
        answer; ``None`` disables hedging.
    breaker_kwargs:
        Overrides for each replica's :class:`CircuitBreaker`.
    """

    def __init__(
        self,
        replicas: list,
        tenant: str = "anon",
        retries: int = 3,
        attempt_timeout: float | None = 5.0,
        deadline: float | None = None,
        hedge_after: float | None = None,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        breaker_kwargs: dict | None = None,
        max_frame: int = MAX_FRAME,
        rng: random.Random | None = None,
    ) -> None:
        if not replicas:
            raise ServiceError(
                "a failover client needs at least one replica",
                code="bad-request",
            )
        self.tenant = tenant
        self.retries = int(retries)
        self.attempt_timeout = attempt_timeout
        self.deadline = deadline
        self.hedge_after = hedge_after
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.max_frame = max_frame
        self._rng = rng
        bk = breaker_kwargs or {}
        self.replicas: list[_Replica] = []
        for rep in replicas:
            if isinstance(rep, str):
                host, _, port = rep.rpartition(":")
                rep = (host or "127.0.0.1", int(port))
            host, port = rep
            self.replicas.append(
                _Replica(host, port, CircuitBreaker(**bk))
            )
        self._rr = 0
        self.counters = {
            "attempts": 0,
            "failovers": 0,
            "hedges": 0,
            "hedged_wins": 0,
            "breaker_skips": 0,
        }

    # connect() is a no-op so SyncServiceClient can wrap either client
    # class; connections open lazily per replica on first use.
    async def connect(self) -> "FailoverClient":
        return self

    async def close(self) -> None:
        for rep in self.replicas:
            await rep.reset()

    async def __aenter__(self) -> "FailoverClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- one attempt ----------------------------------------------------------

    async def _attempt_on(
        self, rep: _Replica, op: str, params: dict, dl: Deadline
    ) -> tuple[dict, bytes]:
        """One bounded request on one replica; faults trip its breaker."""
        self.counters["attempts"] += 1
        loop = asyncio.get_running_loop()
        started = loop.time()
        timeout = dl.bound(self.attempt_timeout)
        send = dict(params)
        rem = dl.remaining()
        if rem is not None and "deadline" not in send:
            # forward the remaining budget so the server sheds work this
            # client will no longer wait for
            send["deadline"] = max(rem, 0.001)
        try:
            client = await rep.ensure(self.tenant, self.max_frame)
            result = await asyncio.wait_for(
                client.request(op, **send), timeout
            )
        except _REPLICA_FAULTS:
            await rep.reset()
            rep.breaker.record_failure()
            raise
        except asyncio.CancelledError:
            # a hedged loser: its response (if any) is still in flight
            # on this connection — drop the connection, keep the breaker
            await rep.reset()
            raise
        except (AdmissionError, OverloadError):
            # the replica is healthy, just busy — that is not a breaker
            # failure, or a shed burst would open every breaker at once
            rep.breaker.record_success(loop.time() - started)
            raise
        rep.breaker.record_success(loop.time() - started)
        return result

    def _next_healthy(self, exclude: "_Replica | None" = None):
        """The next breaker-approved replica in round-robin order."""
        n = len(self.replicas)
        for i in range(n):
            rep = self.replicas[(self._rr + i) % n]
            if rep is exclude:
                continue
            if rep.breaker.allow():
                self._rr = (self._rr + i + 1) % n
                return rep
            self.counters["breaker_skips"] += 1
        return None

    def _force_probe(self):
        """Every breaker is open: probe the one closest to reset."""
        return min(self.replicas, key=lambda r: r.breaker.reopen_in())

    # -- request with failover ------------------------------------------------

    async def request(self, op: str, **params: Any) -> tuple[dict, bytes]:
        if op in ("reload", "shutdown"):
            raise ServiceError(
                f"op {op!r} is not idempotent; send it to one replica "
                "with ServiceClient",
                code="bad-request",
            )
        dl = Deadline.after(
            params.pop("deadline", None) or self.deadline
        )
        last_fault: BaseException | None = None
        cycles = self.retries + 1
        for cycle in range(cycles):
            if dl.expired:
                raise DeadlineError(
                    f"deadline exhausted after {self.counters['attempts']} "
                    f"attempt(s) on {op!r}",
                    code="expired",
                )
            tried = 0
            while tried < len(self.replicas):
                rep = self._next_healthy()
                if rep is None:
                    rep = self._force_probe()
                tried += 1
                try:
                    return await self._hedged_attempt(rep, op, params, dl)
                except _REPLICA_FAULTS as exc:
                    last_fault = exc
                    self.counters["failovers"] += 1
                    continue  # next replica, same cycle
                except (AdmissionError, OverloadError) as exc:
                    last_fault = exc
                    break  # back off, then a fresh cycle
                # DeadlineError and other ServiceErrors propagate: every
                # replica would answer a bad request the same way
            if cycle + 1 < cycles:
                sleep = jittered_backoff(
                    cycle,
                    base=self.backoff_base,
                    cap=self.backoff_cap,
                    rng=self._rng,
                )
                bounded = dl.bound(sleep)
                if bounded is not None and bounded <= 0:
                    break
                await asyncio.sleep(bounded if bounded is not None else sleep)
        raise ReplicaSetError(
            f"all {len(self.replicas)} replica(s) failed {op!r} after "
            f"{self.counters['attempts']} attempt(s)"
        ) from last_fault

    async def _hedged_attempt(
        self, rep: _Replica, op: str, params: dict, dl: Deadline
    ) -> tuple[dict, bytes]:
        """One attempt, optionally racing a second replica on a slow tail."""
        if self.hedge_after is None or len(self.replicas) < 2:
            return await self._attempt_on(rep, op, params, dl)
        primary = asyncio.ensure_future(
            self._attempt_on(rep, op, params, dl)
        )
        try:
            wait = dl.bound(self.hedge_after)
            return await asyncio.wait_for(asyncio.shield(primary), wait)
        except asyncio.TimeoutError:
            pass  # slow tail: hedge below
        except BaseException:
            primary.cancel()
            raise
        backup_rep = self._next_healthy(exclude=rep)
        if backup_rep is None:
            return await primary
        self.counters["hedges"] += 1
        backup = asyncio.ensure_future(
            self._attempt_on(backup_rep, op, params, dl)
        )
        done, pending = await asyncio.wait(
            {primary, backup}, return_when=asyncio.FIRST_COMPLETED
        )
        # prefer a successful winner; a failed first-finisher falls
        # through to whichever is still running
        winner = None
        for fut in done:
            if fut.exception() is None:
                winner = fut
                break
        if winner is None and pending:
            winner = next(iter(pending))
            pending = set()
            try:
                await asyncio.shield(winner)
            except BaseException:
                pass
        for fut in {primary, backup} - {winner}:
            fut.cancel()
            try:
                await fut
            except BaseException:
                pass
        if winner is backup and winner.exception() is None:
            self.counters["hedged_wins"] += 1
        if winner is None:
            return primary.result()  # both failed: surface the primary
        return winner.result()
