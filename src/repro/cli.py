"""Command-line interface: the full pipeline as composable subcommands.

The paper's workflow is a chain of batch jobs (simulate on the cluster →
per-rank logs → synthesis jobs → analysis scripts); this CLI mirrors that
chain so each stage can run, be inspected, and be re-run independently::

    python -m repro generate  --persons 10000 --out world.npz
    python -m repro simulate  --population world.npz --ranks 8 \\
                              --log-dir logs/ --weeks 1
    python -m repro synthesize --log-dir logs/ --population world.npz \\
                              --out week.net.npz
    python -m repro analyze   --network week.net.npz --population world.npz
    python -m repro epidemic  --population world.npz --beta 0.01 --weeks 2
    python -m repro export-ego --network week.net.npz --person 123 \\
                              --out ego.gexf
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext
from pathlib import Path

import numpy as np

from . import (
    CollocationNetwork,
    DiseaseConfig,
    HOURS_PER_WEEK,
    RetryPolicy,
    ScaleConfig,
    Simulation,
    SimulationConfig,
    DistributedSimulation,
    compare_fits,
    degree_distribution,
    ego_network,
    generate_population,
    load_population,
    make_pool,
    save_population,
    spatial_partition,
    summarize,
    synthesize_from_logs,
)
from .evlog import salvage_rank_logs
from .analysis import (
    age_group_degree_distributions,
    clustering_histogram,
    local_clustering,
)
from .sim import PrevalenceObserver
from .viz import ascii_histogram, ascii_loglog, ascii_series, write_gexf
from .viz.forceatlas2 import forceatlas2_layout

__all__ = ["main", "build_parser"]


def _cmd_generate(args: argparse.Namespace) -> int:
    pop = generate_population(
        ScaleConfig(n_persons=args.persons, seed=args.seed)
    )
    path = save_population(pop, args.out)
    print(f"wrote {path}")
    for key, value in pop.summary().items():
        print(f"  {key:>20}: {value}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    pop = load_population(args.population)
    config = SimulationConfig(
        scale=pop.scale,
        duration_hours=args.weeks * HOURS_PER_WEEK,
        n_ranks=args.ranks,
        log_cache_records=args.cache,
        log_durability=args.durability,
        checkpoint_every_hours=args.checkpoint_every,
        heartbeat_timeout=args.heartbeat,
    )
    log_dir = Path(args.log_dir)
    checkpointing = args.checkpoint is not None
    if args.resume and not checkpointing:
        print("error: --resume requires --checkpoint DIR", file=sys.stderr)
        return 2
    if args.ranks == 1:
        log_dir.mkdir(parents=True, exist_ok=True)
        log_path = log_dir / "rank_0000.evl"
        if checkpointing:
            # the per-hour engine supports snapshots; the fast path does not
            result = Simulation(pop, config).run(
                log_path=log_path,
                checkpoint_dir=args.checkpoint,
                resume=args.resume,
            )
            extra = f", {result.checkpoints_written} checkpoint(s)"
            if result.resumed_from_hour is not None:
                extra += f", resumed from hour {result.resumed_from_hour}"
            print(f"serial run: {result.n_events:,} events{extra}")
        else:
            result = Simulation(pop, config).run_fast(log_path=log_path)
            print(f"serial run: {result.n_events:,} events")
    else:
        part = spatial_partition(
            pop.places.coords(), pop.places.capacity.astype(float), args.ranks
        )
        result = DistributedSimulation(pop, config, part).run(
            log_dir=log_dir,
            checkpoint_dir=args.checkpoint,
            max_restarts=args.max_restarts,
        )
        print(
            f"distributed run on {args.ranks} ranks: "
            f"{result.total_events:,} events, "
            f"{result.total_migrations:,} migrations, "
            f"{result.traffic.bytes_sent:,} comm bytes, "
            f"{result.checkpoints_written} checkpoint(s), "
            f"{result.restarts} restart(s)"
        )
    print(f"logs in {log_dir}")
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    repaired = salvage_rank_logs(args.log_dir)
    if not repaired:
        print("nothing to repair: all rank logs are clean")
        return 0
    for path, salvaged in repaired:
        detail = (
            f"{salvaged} record(s) recovered from the WAL sidecar"
            if salvaged
            else "torn tail trimmed, index/trailer rebuilt"
        )
        print(f"repaired {path}: {detail}")
    print(f"{len(repaired)} file(s) repaired")
    return 0


def _synthesize_sharded(args: argparse.Namespace, pop, t0: int, t1: int) -> int:
    from .core.plan import SynthesisPlan
    from .distrib.shardsynth import shard_synthesize

    if args.kernel != "intervals":
        print(
            "error: --shards requires the intervals kernel "
            f"(got --kernel {args.kernel})",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint is not None or args.resume is not None:
        print(
            "error: --checkpoint/--resume are not supported with --shards",
            file=sys.stderr,
        )
        return 2
    plan = SynthesisPlan(
        kernel="intervals",
        dispatch="zero-copy",
        backend=args.backend,
        strict=args.strict,
    )
    net, report = shard_synthesize(
        args.log_dir,
        pop.n_persons,
        t0,
        t1,
        n_shards=args.shards,
        strategy=args.partition,
        plan=plan,
        coords=pop.places.coords(),
    )
    print(report.summary())
    if report.quarantined:
        print(
            f"warning: {len(report.quarantined)} damaged log file(s) "
            "quarantined (re-run with --strict to fail instead)"
        )
    path = net.save(args.out)
    print(f"\nwrote {path}")
    print(summarize(net).report())
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    pop = load_population(args.population)
    t0 = args.t0
    t1 = args.t1 if args.t1 is not None else t0 + HOURS_PER_WEEK
    if args.shards > 1:
        return _synthesize_sharded(args, pop, t0, t1)
    pool = None
    if args.pool != "serial" or args.retries > 1:
        retry = None
        if args.retries > 1:
            retry = RetryPolicy(
                max_attempts=args.retries, base_delay=args.retry_delay
            )
        pool = make_pool(args.pool, args.workers, retry=retry)
    probe = None
    profile_cm: "object" = nullcontext()
    if args.profile:
        from .obs import CollectingProbe, push_probe

        probe = CollectingProbe()
        profile_cm = push_probe(probe)
    from .core.plan import SynthesisPlan

    plan = SynthesisPlan(
        kernel=args.kernel,
        dispatch=args.dispatch,
        backend=args.backend,
        batch_size=args.batch_size,
        strict=args.strict,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    try:
        with profile_cm:
            net, report = synthesize_from_logs(
                args.log_dir,
                pop.n_persons,
                t0,
                t1,
                pool=pool,
                plan=plan,
            )
    finally:
        if pool is not None:
            pool.close()
    if probe is not None:
        from .core.kernels import backend_info

        info = backend_info()
        print("--- kernel backend ---")
        for key, value in info.items():
            print(f"  {key:>14}: {value}")
        print("\n--- profile ---")
        for name, e in sorted(probe.stages.items()):
            print(
                f"  {name:>24}: {e['seconds']:.3f}s "
                f"over {e['calls']} call(s)"
            )
        for stage, e in sorted(probe.kernel.items()):
            print(
                f"  {'kernel.' + stage:>24}: {e['seconds']:.3f}s "
                f"over {e['tasks']} task(s)"
            )
        prof_path = Path(args.out).with_suffix(".profile.json")
        prof_path.write_text(
            json.dumps(
                {"backend": info, **probe.to_dict()},
                indent=2,
                sort_keys=True,
                default=str,
            )
            + "\n"
        )
        print(f"wrote profile {prof_path}")
        print()
    print(report.summary())
    if report.quarantined:
        print(
            f"warning: {len(report.quarantined)} damaged log file(s) "
            "quarantined (re-run with --strict to fail instead)"
        )
    path = net.save(args.out)
    print(f"\nwrote {path}")
    print(summarize(net).report())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .core.tilecache import TileCache

    pop = load_population(args.population)
    pool = None
    if args.pool != "serial":
        pool = make_pool(args.pool, args.workers)
    cache = TileCache(
        args.log_dir,
        pop.n_persons,
        tile_hours=args.tile_hours,
        budget_nnz=args.budget_nnz,
        cache_dir=args.cache_dir,
        pool=pool,
        dispatch=args.dispatch,
        strict=args.strict,
        backend=args.backend,
    )
    try:
        if cache.quarantined:
            print(
                f"warning: {len(cache.quarantined)} damaged log file(s) "
                "quarantined (re-run with --strict to fail instead)"
            )
        for i, (t0, t1) in enumerate(args.window):
            net = cache.query_window(t0, t1)
            print(
                f"[{t0:>6}, {t1:>6}): {net.n_edges:,} edges, "
                f"{net.total_weight:,} collocated person-pair hours"
            )
            if args.out is not None:
                out = Path(args.out)
                if len(args.window) > 1:
                    out = out.with_name(f"{out.stem}_{t0}_{t1}{out.suffix}")
                print(f"  wrote {net.save(out)}")
        print()
        print(cache.stats.summary())
    finally:
        cache.close()
        if pool is not None:
            pool.close()
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    net = CollocationNetwork.load(args.network)
    print(summarize(net).report())

    dist = degree_distribution(net.degrees())
    print("\n--- Figure 3: degree distribution fits ---")
    for name, fit in compare_fits(dist).items():
        print(f"  {name:>22}: {fit!r}")
    print(ascii_loglog(dist.degrees, dist.counts, title="degree counts"))

    print("\n--- Figure 4: clustering ---")
    coeffs = local_clustering(net)
    edges, counts = clustering_histogram(coeffs, degrees=net.degrees())
    print(ascii_histogram(edges, counts, log_counts=True))

    if args.population:
        pop = load_population(args.population)
        print("\n--- Figure 5: age-group degree distributions ---")
        for label, d in age_group_degree_distributions(net, pop.persons).items():
            print(
                f"  {label:>6}: members={d.n_vertices:>8,} "
                f"mean_k={d.mean_degree:>6.1f} max_k={d.max_degree}"
            )
    return 0


def _cmd_epidemic(args: argparse.Namespace) -> int:
    pop = load_population(args.population)
    config = SimulationConfig(
        scale=pop.scale,
        duration_hours=args.weeks * HOURS_PER_WEEK,
        disease=DiseaseConfig(
            transmissibility=args.beta, initial_infected=args.seeds
        ),
    )
    observer = PrevalenceObserver()
    result = Simulation(pop, config).run(observers=[observer])
    disease = result.disease
    assert disease is not None
    print(f"final: {disease.counts()}")
    print(f"attack rate: {disease.attack_rate():.1%}")
    print(ascii_series(
        np.array(observer.series["infectious"]), title="infectious over time"
    ))
    return 0


def _cmd_export_ego(args: argparse.Namespace) -> int:
    net = CollocationNetwork.load(args.network)
    person = args.person
    if person is None:
        person = int(np.argmax(net.degrees()))
        print(f"no --person given; using max-degree person {person}")
    ego = ego_network(net, person, radius=args.radius)
    print(f"ego: {ego.n_nodes:,} nodes, {ego.n_edges:,} edges")
    positions = forceatlas2_layout(ego.matrix, iterations=args.iterations)
    path = write_gexf(
        args.out, ego.matrix, positions=positions, node_labels=ego.persons
    )
    print(f"wrote {path} (open in Gephi)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import NetworkQueryService, ServiceConfig

    pop = load_population(args.population)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        tile_hours=args.tile_hours,
        cache_budget_nnz=args.budget_nnz,
        cache_dir=args.cache_dir,
        dispatch=args.dispatch,
        strict=args.strict,
        backend=args.backend,
        tenant_budget_nnz=args.tenant_budget_nnz,
        executor_threads=args.threads,
        prefetch_tiles=args.prefetch,
        default_deadline=args.deadline,
        write_timeout=args.write_timeout,
        queue_limit=args.queue_limit,
        shed_inflight_age=args.shed_age,
        trace_log=args.trace_log,
        shards=args.shards,
        shard_partition=args.shard_partition,
    )
    service = NetworkQueryService(
        args.log_dir, pop.n_persons, places=pop.places, config=config
    )

    async def run() -> None:
        await service.start()
        print(
            f"serving network queries on {config.host}:{service.port} "
            f"({pop.n_persons:,} persons, logs in {args.log_dir})"
        )
        try:
            await service.wait_stopped()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\ninterrupted; drained and stopped")
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from .service import FailoverClient, SyncServiceClient

    if args.replicas:
        if args.op in ("reload", "shutdown"):
            print(
                f"error: {args.op!r} is not idempotent; send it to one "
                "replica with --host/--port, not --replicas",
                file=sys.stderr,
            )
            return 2
        replicas = [r.strip() for r in args.replicas.split(",") if r.strip()]
        client = SyncServiceClient(
            cls=FailoverClient, replicas=replicas, tenant=args.tenant,
            retries=args.retries, deadline=args.deadline,
        )
    else:
        client = SyncServiceClient(
            host=args.host, port=args.port, tenant=args.tenant,
            retries=args.retries, deadline=args.deadline,
        )
    try:
        op = args.op
        if op == "ping":
            print(client.ping())
        elif op == "live":
            print(client.liveness())
        elif op == "ready":
            print(client.readiness())
        elif op == "stats":
            stats = client.stats()
            for key, value in sorted(stats["stats"].items()):
                print(f"  {key:>18}: {value}")
            for tenant, usage in sorted(stats.get("tenants", {}).items()):
                print(f"  tenant {tenant}: {usage}")
        elif op == "metrics":
            from .obs import render_metrics

            print(render_metrics(client.metrics()["metrics"]))
        elif op == "reload":
            print(client.reload())
        elif op == "shutdown":
            print(client.shutdown())
        elif op == "window":
            net = client.query_window(args.t0, args.t1)
            print(
                f"[{net.t0:>6}, {net.t1:>6}): {net.n_edges:,} edges, "
                f"{net.total_weight:,} collocated person-pair hours"
            )
            if args.out:
                print(f"wrote {net.save(args.out)}")
        elif op == "layer":
            net = client.query_layer(args.kind, args.t0, args.t1)
            print(
                f"{args.kind} [{net.t0:>6}, {net.t1:>6}): "
                f"{net.n_edges:,} edges"
            )
            if args.out:
                print(f"wrote {net.save(args.out)}")
        elif op == "ego":
            ego = client.query_ego(args.person, args.t0, args.t1)
            print(
                f"ego of person {args.person}: {ego.n_nodes:,} nodes, "
                f"{ego.n_edges:,} edges"
            )
        elif op == "degrees":
            summary = client.degree_summary(args.t0, args.t1)
            for key in (
                "n_vertices", "n_isolated", "n_edges",
                "mean_degree", "max_degree",
            ):
                print(f"  {key:>12}: {summary[key]}")
        else:  # pragma: no cover - argparse restricts choices
            raise AssertionError(op)
    finally:
        client.close()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import read_spans_jsonl, render_traces

    spans = read_spans_jsonl(args.spans)
    if not spans:
        print(f"no spans in {args.spans}", file=sys.stderr)
        return 1
    print(render_traces(spans, trace_id=args.id, last=args.last))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import render_metrics

    if args.file:
        snapshot = json.loads(Path(args.file).read_text())
        # accept both a raw registry snapshot and a `metrics` response
        snapshot = snapshot.get("metrics", snapshot)
    else:
        from .service import SyncServiceClient

        client = SyncServiceClient(host=args.host, port=args.port)
        try:
            snapshot = client.metrics()["metrics"]
        finally:
            client.close()
    print(render_metrics(snapshot))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Endogenous social networks from agent-based models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic population")
    p.add_argument("--persons", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--out", required=True)
    p.set_defaults(fn=_cmd_generate)

    p = sub.add_parser("simulate", help="run the model, writing EVL logs")
    p.add_argument("--population", required=True)
    p.add_argument("--weeks", type=int, default=1)
    p.add_argument("--ranks", type=int, default=1)
    p.add_argument("--cache", type=int, default=10_000)
    p.add_argument("--log-dir", required=True)
    p.add_argument(
        "--durability", choices=["none", "fsync", "wal"], default="none",
        help="event-log durability: none (fast), fsync per chunk, or a "
        "write-ahead journal that makes every acknowledged record "
        "crash-safe",
    )
    p.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="commit resumable snapshots to DIR (see --checkpoint-every)",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=24, metavar="HOURS",
        help="simulated hours between snapshots (default: 24)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="serial only: continue from the snapshot in --checkpoint DIR",
    )
    p.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="distributed only: rank liveness deadline per collective",
    )
    p.add_argument(
        "--max-restarts", type=int, default=0,
        help="distributed only: supervised restarts from the last "
        "checkpoint after a detected rank failure",
    )
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser(
        "repair", help="salvage torn EVL rank logs after a crash"
    )
    p.add_argument("--log-dir", required=True)
    p.set_defaults(fn=_cmd_repair)

    p = sub.add_parser("synthesize", help="logs → collocation network")
    p.add_argument("--log-dir", required=True)
    p.add_argument("--population", required=True)
    p.add_argument("--t0", type=int, default=0)
    p.add_argument("--t1", type=int, default=None)
    p.add_argument("--batch-size", type=int, default=16)
    p.add_argument("--out", required=True)
    p.add_argument(
        "--pool", choices=["serial", "thread", "process"], default="serial",
        help="worker pool backend for the per-batch synthesis stages",
    )
    p.add_argument("--workers", type=int, default=None)
    p.add_argument(
        "--retries", type=int, default=3,
        help="total attempts per worker task (1 disables retries)",
    )
    p.add_argument(
        "--retry-delay", type=float, default=0.05,
        help="base backoff before the first retry, seconds",
    )
    p.add_argument(
        "--kernel", choices=["intervals", "dense-hours"], default="intervals",
        help="collocation kernel: interval-overlap (default, window-length "
        "independent) or the paper's per-hour expansion; outputs are "
        "bit-identical",
    )
    p.add_argument(
        "--dispatch", choices=["value", "zero-copy"], default="value",
        help="how records reach workers: pickled arrays (value) or mmap "
        "byte-range descriptors (zero-copy)",
    )
    p.add_argument(
        "--backend", choices=["auto", "scipy", "masked"], default="auto",
        help="kernel backend: compiled masked-triangular SpGEMM (masked), "
        "the scipy reference, or whichever is available (auto); outputs "
        "are bit-identical",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="print the resolved kernel backend and per-stage kernel "
        "timings alongside the synthesis report",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="fail on the first damaged log file instead of quarantining it",
    )
    p.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="persist a resumable checkpoint after every completed batch",
    )
    p.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume from a checkpoint directory (config must match)",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="partition places across N forked shard processes, each "
        "owning its own log slices and interval packs; the reduce stage "
        "merges per-shard CSRs bit-identically to single-process "
        "synthesis (default: 1, sharding off)",
    )
    p.add_argument(
        "--partition", choices=["spatial", "refined", "round-robin"],
        default="refined",
        help="place→shard partition strategy for --shards: weighted "
        "recursive coordinate bisection (spatial), bisection plus "
        "greedy work rebalancing (refined, default), or round-robin",
    )
    p.set_defaults(fn=_cmd_synthesize)

    p = sub.add_parser(
        "query",
        help="arbitrary-window network queries through the temporal "
        "tile cache",
    )
    p.add_argument("--log-dir", required=True)
    p.add_argument("--population", required=True)
    p.add_argument(
        "--window", type=int, nargs=2, action="append", required=True,
        metavar=("T0", "T1"),
        help="query window [T0, T1) in simulation hours; repeatable — "
        "later windows reuse tiles built for earlier ones",
    )
    p.add_argument(
        "--tile-hours", type=int, default=24,
        help="base tile width in simulation hours (default: 24)",
    )
    p.add_argument(
        "--budget-nnz", type=int, default=None,
        help="in-memory cache budget in stored matrix nonzeros "
        "(default: unbounded)",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist tiles to DIR; a stale log-set digest invalidates "
        "them automatically",
    )
    p.add_argument(
        "--pool", choices=["serial", "thread", "process"], default="serial",
        help="worker pool backend for tile construction",
    )
    p.add_argument("--workers", type=int, default=None)
    p.add_argument(
        "--dispatch", choices=["value", "zero-copy"], default="value",
        help="how records reach tile-building workers",
    )
    p.add_argument(
        "--backend", choices=["auto", "scipy", "masked"], default="auto",
        help="kernel backend for tile construction (bit-identical outputs)",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="fail on the first damaged log file instead of quarantining it",
    )
    p.add_argument(
        "--out", default=None,
        help="save the queried network(s); multiple windows get a "
        "_T0_T1 suffix",
    )
    p.set_defaults(fn=_cmd_query)

    p = sub.add_parser(
        "serve",
        help="long-running network-query service over warm tile caches",
    )
    p.add_argument("--log-dir", required=True)
    p.add_argument("--population", required=True)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=7227,
        help="listen port (0 picks an ephemeral port; default: 7227)",
    )
    p.add_argument("--tile-hours", type=int, default=24)
    p.add_argument(
        "--budget-nnz", type=int, default=None,
        help="per-cache in-memory tile budget in stored nonzeros",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist tiles under DIR (one subdirectory per cache)",
    )
    p.add_argument(
        "--dispatch", choices=["value", "zero-copy"], default="value",
    )
    p.add_argument(
        "--backend", choices=["auto", "scipy", "masked"], default="auto",
        help="kernel backend for tile construction (bit-identical outputs)",
    )
    p.add_argument("--strict", action="store_true")
    p.add_argument(
        "--tenant-budget-nnz", type=int, default=None,
        help="admission control: cap each tenant's estimated in-flight "
        "result nonzeros; over-budget queries are rejected with a "
        "retry-after hint",
    )
    p.add_argument(
        "--threads", type=int, default=2,
        help="executor threads composing windows (default: 2)",
    )
    p.add_argument(
        "--prefetch", type=int, default=1,
        help="tiles to warm ahead/behind each queried span (0 disables)",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="server-side cap on every request's deadline budget (also "
        "the default for requests carrying none)",
    )
    p.add_argument(
        "--write-timeout", type=float, default=30.0, metavar="SECONDS",
        help="abort a connection whose response write stalls this long "
        "(default: 30)",
    )
    p.add_argument(
        "--queue-limit", type=int, default=256,
        help="load shedding: max admitted-but-unfinished queries before "
        "new ones are rejected with code=overload (default: 256)",
    )
    p.add_argument(
        "--shed-age", type=float, default=None, metavar="SECONDS",
        help="load shedding: also shed while the oldest in-flight "
        "request is older than this",
    )
    p.add_argument(
        "--trace-log", default=None, metavar="FILE",
        help="append every finished request span to FILE as JSONL "
        "(render with `repro trace FILE`)",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="serve from a place-sharded tile cache: partition places "
        "across N shards, each with its own TileCache; answers are "
        "reduced bit-identically to the single-cache mode (default: 1)",
    )
    p.add_argument(
        "--shard-partition",
        choices=["spatial", "refined", "round-robin"], default="refined",
        help="place→shard partition strategy for --shards "
        "(default: refined)",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "client", help="query a running `repro serve` instance"
    )
    p.add_argument(
        "op",
        choices=[
            "ping", "live", "ready", "window", "layer", "ego", "degrees",
            "stats", "metrics", "reload", "shutdown",
        ],
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7227)
    p.add_argument(
        "--replicas", default=None, metavar="HOST:PORT,HOST:PORT,...",
        help="query a replica set with circuit-breaking failover "
        "instead of a single server (idempotent ops only)",
    )
    p.add_argument("--tenant", default="cli")
    p.add_argument("--t0", type=int, default=0)
    p.add_argument("--t1", type=int, default=HOURS_PER_WEEK)
    p.add_argument(
        "--kind", default="home",
        choices=["home", "school", "workplace", "other"],
        help="layer op: place kind to query",
    )
    p.add_argument("--person", type=int, default=0, help="ego op: center")
    p.add_argument(
        "--retries", type=int, default=3,
        help="automatic retries after admission/overload rejections "
        "(default: 3)",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-request budget; the server rejects work it cannot "
        "finish in time instead of queueing it",
    )
    p.add_argument("--out", default=None, help="save the fetched network")
    p.set_defaults(fn=_cmd_client)

    p = sub.add_parser(
        "trace", help="render span trees from a JSONL trace log"
    )
    p.add_argument(
        "spans", metavar="SPANS_JSONL",
        help="trace log written by `repro serve --trace-log` or any "
        "JsonlSpanSink",
    )
    p.add_argument(
        "--id", default=None, metavar="TRACE_ID",
        help="render one trace (e.g. the trace_id echoed in a service "
        "response); default renders the most recent ones",
    )
    p.add_argument(
        "--last", type=int, default=5,
        help="without --id: how many of the most recent traces to "
        "render (default: 5)",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "metrics",
        help="dump a metrics-registry snapshot (live service or file)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7227)
    p.add_argument(
        "--file", default=None, metavar="JSON",
        help="render a saved snapshot (e.g. a --profile artifact or "
        "a saved `metrics` response) instead of querying a server",
    )
    p.set_defaults(fn=_cmd_metrics)

    p = sub.add_parser("analyze", help="network statistics and figures")
    p.add_argument("--network", required=True)
    p.add_argument("--population", default=None)
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("epidemic", help="run an SEIR outbreak")
    p.add_argument("--population", required=True)
    p.add_argument("--weeks", type=int, default=2)
    p.add_argument("--beta", type=float, default=0.01)
    p.add_argument("--seeds", type=int, default=3)
    p.set_defaults(fn=_cmd_epidemic)

    p = sub.add_parser("export-ego", help="ego network → GEXF for Gephi")
    p.add_argument("--network", required=True)
    p.add_argument("--person", type=int, default=None)
    p.add_argument("--radius", type=int, default=2)
    p.add_argument("--iterations", type=int, default=80)
    p.add_argument("--out", required=True)
    p.set_defaults(fn=_cmd_export_ego)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
