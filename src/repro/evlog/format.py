"""The EVL container format: header, chunks, index, trailer.

Layout (all integers little-endian)::

    +----------------------+
    | file header (24 B)   |  magic 'EVLG', version, flags, record size, rank
    +----------------------+
    | chunk 0              |  'CHNK' + counts + crc32 + payload
    | chunk 1              |
    | ...                  |
    +----------------------+
    | index                |  'INDX' + per-chunk (offset, n, tmin, tmax)
    +----------------------+
    | trailer (20 B)       |  index offset + total records + 'EVLE'
    +----------------------+

The index stores each chunk's **time envelope** — the minimum ``start`` and
maximum ``stop`` across its records — so a time-sliced read can skip chunks
that cannot overlap the query window, which is the "fast index-based read
performance" the paper gets from HDF5 chunking.

A file without a valid trailer (writer crashed before ``close``) is still
readable: chunks are self-delimiting and CRC-protected, so recovery scans
forward and keeps every intact chunk.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from ..errors import LogCorruptError, LogFormatError, LogTruncatedError
from .schema import RECORD_BYTES

__all__ = [
    "EVL_MAGIC",
    "EVL_VERSION",
    "FLAG_ZLIB",
    "EvlHeader",
    "ChunkInfo",
    "pack_header",
    "unpack_header",
    "pack_chunk",
    "read_chunk_at",
    "check_chunk_at",
    "pack_index",
    "unpack_index",
    "pack_trailer",
    "unpack_trailer",
    "pack_wal_header",
    "unpack_wal_header",
    "pack_wal_frame",
    "scan_wal_frames",
    "HEADER_BYTES",
    "CHUNK_HEADER_BYTES",
    "TRAILER_BYTES",
    "WAL_HEADER_BYTES",
    "WAL_FRAME_HEADER_BYTES",
]

EVL_MAGIC = b"EVLG"
CHUNK_MAGIC = b"CHNK"
INDEX_MAGIC = b"INDX"
TRAILER_MAGIC = b"EVLE"
WAL_MAGIC = b"EVLW"
WAL_FRAME_MAGIC = b"WREC"
EVL_VERSION = 1

FLAG_ZLIB = 0x0001

_HEADER = struct.Struct("<4sHHHHIQ")  # magic, version, flags, recsize, pad, rank, reserved
_CHUNK_HEADER = struct.Struct("<4sIII")  # magic, n_records, payload_bytes, crc32
_INDEX_HEADER = struct.Struct("<4sI")  # magic, n_chunks
_INDEX_ENTRY = struct.Struct("<QIII")  # offset, n_records, tmin, tmax
_TRAILER = struct.Struct("<QQ4s")  # index_offset, total_records, magic
_WAL_HEADER = struct.Struct("<4sHHI")  # magic, version, recsize, rank
_WAL_FRAME = struct.Struct("<4sQII")  # magic, base_record, n_records, crc32

HEADER_BYTES = _HEADER.size
CHUNK_HEADER_BYTES = _CHUNK_HEADER.size
TRAILER_BYTES = _TRAILER.size
WAL_HEADER_BYTES = _WAL_HEADER.size
WAL_FRAME_HEADER_BYTES = _WAL_FRAME.size


@dataclass(frozen=True)
class EvlHeader:
    """Parsed file header."""

    version: int
    flags: int
    record_bytes: int
    rank: int

    @property
    def compressed(self) -> bool:
        return bool(self.flags & FLAG_ZLIB)


@dataclass(frozen=True)
class ChunkInfo:
    """One index entry: where a chunk lives and its time envelope."""

    offset: int
    n_records: int
    t_min: int
    t_max: int

    def overlaps(self, t0: int, t1: int) -> bool:
        """Could any record interval [start, stop) intersect [t0, t1)?"""
        return self.t_min < t1 and self.t_max > t0


def pack_header(rank: int, compressed: bool) -> bytes:
    """Serialize the 24-byte file header."""
    flags = FLAG_ZLIB if compressed else 0
    return _HEADER.pack(EVL_MAGIC, EVL_VERSION, flags, RECORD_BYTES, 0, rank, 0)


def unpack_header(buf: bytes) -> EvlHeader:
    """Parse and validate the file header."""
    if len(buf) < HEADER_BYTES:
        raise LogTruncatedError("file shorter than EVL header")
    magic, version, flags, recsize, _pad, rank, _res = _HEADER.unpack_from(buf)
    if magic != EVL_MAGIC:
        raise LogFormatError(f"bad magic {magic!r}: not an EVL file")
    if version != EVL_VERSION:
        raise LogFormatError(f"unsupported EVL version {version}")
    if recsize != RECORD_BYTES:
        raise LogFormatError(
            f"record size {recsize} does not match schema ({RECORD_BYTES})"
        )
    return EvlHeader(version=version, flags=flags, record_bytes=recsize, rank=rank)


def pack_chunk(record_bytes_image: bytes, n_records: int, compress: bool) -> bytes:
    """Frame a chunk: header + (optionally compressed) payload."""
    payload = zlib.compress(record_bytes_image, 6) if compress else record_bytes_image
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _CHUNK_HEADER.pack(CHUNK_MAGIC, n_records, len(payload), crc) + payload


def read_chunk_at(
    buf: bytes | memoryview, offset: int, compressed: bool
) -> tuple[bytes, int, int]:
    """Read the chunk at *offset*.

    Returns ``(record_bytes_image, n_records, next_offset)``.

    Raises :class:`LogTruncatedError` if the chunk extends past the end of
    the buffer and :class:`LogCorruptError` on a CRC mismatch.
    """
    end = offset + CHUNK_HEADER_BYTES
    if end > len(buf):
        raise LogTruncatedError("chunk header extends past end of file")
    magic, n_records, payload_bytes, crc = _CHUNK_HEADER.unpack_from(buf, offset)
    if magic != CHUNK_MAGIC:
        raise LogFormatError(f"expected chunk at offset {offset}, found {magic!r}")
    if end + payload_bytes > len(buf):
        raise LogTruncatedError("chunk payload extends past end of file")
    payload = bytes(buf[end : end + payload_bytes])
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise LogCorruptError(f"chunk at offset {offset} failed CRC check")
    image = zlib.decompress(payload) if compressed else payload
    if len(image) != n_records * RECORD_BYTES:
        raise LogCorruptError(
            f"chunk at offset {offset} declares {n_records} records but "
            f"payload decodes to {len(image)} bytes"
        )
    return image, n_records, end + payload_bytes


def check_chunk_at(buf: bytes | memoryview, offset: int) -> tuple[int, int]:
    """CRC-verify the chunk at *offset* without decoding its payload.

    Returns ``(n_records, next_offset)``.  This is the cheap integrity
    check zero-copy dispatch runs at the root: framing + CRC catch
    truncation and bit rot, while the decompress/decode cost stays with
    the worker that actually consumes the records.
    """
    end = offset + CHUNK_HEADER_BYTES
    if end > len(buf):
        raise LogTruncatedError("chunk header extends past end of file")
    magic, n_records, payload_bytes, crc = _CHUNK_HEADER.unpack_from(buf, offset)
    if magic != CHUNK_MAGIC:
        raise LogFormatError(f"expected chunk at offset {offset}, found {magic!r}")
    if end + payload_bytes > len(buf):
        raise LogTruncatedError("chunk payload extends past end of file")
    if (zlib.crc32(buf[end : end + payload_bytes]) & 0xFFFFFFFF) != crc:
        raise LogCorruptError(f"chunk at offset {offset} failed CRC check")
    return n_records, end + payload_bytes


def pack_index(chunks: list[ChunkInfo]) -> bytes:
    """Serialize the chunk index (offset, count, time envelope per chunk)."""
    parts = [_INDEX_HEADER.pack(INDEX_MAGIC, len(chunks))]
    parts.extend(
        _INDEX_ENTRY.pack(c.offset, c.n_records, c.t_min, c.t_max) for c in chunks
    )
    return b"".join(parts)


def unpack_index(buf: bytes | memoryview, offset: int) -> list[ChunkInfo]:
    """Parse the chunk index at *offset*."""
    if offset + _INDEX_HEADER.size > len(buf):
        raise LogTruncatedError("index header extends past end of file")
    magic, n_chunks = _INDEX_HEADER.unpack_from(buf, offset)
    if magic != INDEX_MAGIC:
        raise LogFormatError(f"expected index at offset {offset}, found {magic!r}")
    pos = offset + _INDEX_HEADER.size
    need = pos + n_chunks * _INDEX_ENTRY.size
    if need > len(buf):
        raise LogTruncatedError("index entries extend past end of file")
    chunks = []
    for _ in range(n_chunks):
        off, n, tmin, tmax = _INDEX_ENTRY.unpack_from(buf, pos)
        chunks.append(ChunkInfo(offset=off, n_records=n, t_min=tmin, t_max=tmax))
        pos += _INDEX_ENTRY.size
    return chunks


def pack_trailer(index_offset: int, total_records: int) -> bytes:
    """Serialize the 20-byte trailer locating the index."""
    return _TRAILER.pack(index_offset, total_records, TRAILER_MAGIC)


def unpack_trailer(buf: bytes | memoryview) -> tuple[int, int] | None:
    """Parse the trailer; returns ``(index_offset, total_records)`` or
    ``None`` if the file has no valid trailer (truncated write)."""
    if len(buf) < HEADER_BYTES + TRAILER_BYTES:
        return None
    index_offset, total_records, magic = _TRAILER.unpack_from(
        buf, len(buf) - TRAILER_BYTES
    )
    if magic != TRAILER_MAGIC:
        return None
    if index_offset < HEADER_BYTES or index_offset > len(buf) - TRAILER_BYTES:
        return None
    return index_offset, total_records


# -- write-ahead log sidecar --------------------------------------------------
#
# The WAL journals the writer's un-chunked cache records to ``<file>.wal``:
# one CRC-framed append per logging call, fsynced before the call returns.
# Each frame carries ``base_record`` — how many records preceded it in the
# writer's lifetime — so salvage can compute exactly which frame rows are
# missing from the main file's intact chunks, even when a crash lands
# between a chunk commit and the WAL reset that follows it.


def pack_wal_header(rank: int) -> bytes:
    """Serialize the 12-byte WAL sidecar header."""
    return _WAL_HEADER.pack(WAL_MAGIC, EVL_VERSION, RECORD_BYTES, rank)


def unpack_wal_header(buf: bytes | memoryview) -> int:
    """Validate a WAL header; returns the writer rank."""
    if len(buf) < WAL_HEADER_BYTES:
        raise LogTruncatedError("sidecar shorter than WAL header")
    magic, version, recsize, rank = _WAL_HEADER.unpack_from(buf)
    if magic != WAL_MAGIC:
        raise LogFormatError(f"bad magic {magic!r}: not an EVL WAL sidecar")
    if version != EVL_VERSION:
        raise LogFormatError(f"unsupported WAL version {version}")
    if recsize != RECORD_BYTES:
        raise LogFormatError(
            f"WAL record size {recsize} does not match schema ({RECORD_BYTES})"
        )
    return rank


def pack_wal_frame(record_bytes_image: bytes, base_record: int) -> bytes:
    """Frame one journal append (never compressed: latency over size)."""
    n_records, rem = divmod(len(record_bytes_image), RECORD_BYTES)
    if rem:
        raise LogFormatError("WAL frame payload is not whole records")
    crc = zlib.crc32(record_bytes_image) & 0xFFFFFFFF
    return (
        _WAL_FRAME.pack(WAL_FRAME_MAGIC, base_record, n_records, crc)
        + record_bytes_image
    )


def scan_wal_frames(buf: bytes | memoryview) -> list[tuple[int, bytes]]:
    """Recover ``(base_record, record_bytes_image)`` for every intact frame.

    Scans forward from the WAL header and stops silently at the first torn
    or corrupt frame — a kill mid-append leaves exactly such a tail, and
    everything before it was acknowledged.  A sidecar too short for its
    header yields no frames.
    """
    frames: list[tuple[int, bytes]] = []
    try:
        unpack_wal_header(buf)
    except (LogTruncatedError, LogFormatError):
        return frames
    offset = WAL_HEADER_BYTES
    while offset + WAL_FRAME_HEADER_BYTES <= len(buf):
        magic, base, n_records, crc = _WAL_FRAME.unpack_from(buf, offset)
        if magic != WAL_FRAME_MAGIC:
            break
        start = offset + WAL_FRAME_HEADER_BYTES
        end = start + n_records * RECORD_BYTES
        if end > len(buf):
            break
        payload = bytes(buf[start:end])
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            break
        frames.append((base, payload))
        offset = end
    return frames
