"""Event-based activity logging — the paper's Section III substrate.

The paper logs a fixed 20-byte record *(start, stop, person, activity,
place)* — five 4-byte unsigned integers — each time an agent changes
activity, caches ~10,000 records in memory per rank, and flushes full
caches to chunked HDF5 files (one file per rank).

HDF5 is not available in this environment, so this subpackage implements an
equivalent chunked binary container (the **EVL format**) preserving every
property the paper's pipeline relies on:

* fixed-width 20-byte uint32 records (:mod:`repro.evlog.schema`);
* a bounded in-memory write cache with the memory/IO tradeoff the paper
  describes (:mod:`repro.evlog.writer`);
* chunked storage with a per-chunk index enabling fast index-based and
  time-sliced reads (:mod:`repro.evlog.format`, :mod:`repro.evlog.reader`);
* one file per rank, batched multi-file iteration
  (:mod:`repro.evlog.multifile`);
* CRC-protected chunks and recovery of files truncated by a crashed writer.

:mod:`repro.evlog.textlog` implements the naive string logger the paper
uses as its size strawman.
"""

from .schema import LOG_DTYPE, RECORD_BYTES, LogRecordArray, empty_records, make_records
from .format import EvlHeader, ChunkInfo
from .writer import CachedLogWriter, WriterStats, DurabilityPolicy
from .reader import LogReader
from .multifile import LogSet, salvage_rank_logs, try_read_time_slice, write_rank_logs
from .textlog import TextLogWriter, text_log_size

__all__ = [
    "LOG_DTYPE",
    "RECORD_BYTES",
    "LogRecordArray",
    "empty_records",
    "make_records",
    "EvlHeader",
    "ChunkInfo",
    "CachedLogWriter",
    "WriterStats",
    "DurabilityPolicy",
    "LogReader",
    "LogSet",
    "salvage_rank_logs",
    "try_read_time_slice",
    "write_rank_logs",
    "TextLogWriter",
    "text_log_size",
]
