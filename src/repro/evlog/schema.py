"""The 20-byte log record schema.

Exactly the paper's layout: "the start and stop times of the activity and
unique identification numbers for the person, activity and location, which
are stored as 4-byte unsigned integers" — 20 bytes per entry, numerically
adequate for "very large scale simulations" (ids up to 2³²-1).

Records are handled as numpy structured arrays with this dtype so that a
chunk of N records is one contiguous ``20·N``-byte buffer: zero-copy to
serialize, zero-copy to parse.
"""

from __future__ import annotations

import numpy as np

from .._util import check_uint32
from ..errors import LogFormatError

__all__ = [
    "LOG_DTYPE",
    "LOG_FIELDS",
    "RECORD_BYTES",
    "LogRecordArray",
    "empty_records",
    "make_records",
    "validate_records",
    "records_to_bytes",
    "records_from_bytes",
]

LOG_FIELDS = ("start", "stop", "person", "activity", "place")

#: little-endian so files are portable across hosts
LOG_DTYPE = np.dtype([(name, "<u4") for name in LOG_FIELDS])

RECORD_BYTES = LOG_DTYPE.itemsize
assert RECORD_BYTES == 20, "paper schema is exactly 20 bytes per entry"

#: alias for annotation readability
LogRecordArray = np.ndarray


def empty_records(n: int = 0) -> LogRecordArray:
    """Allocate an uninitialized record array of length *n*."""
    return np.empty(n, dtype=LOG_DTYPE)


def make_records(
    start: np.ndarray,
    stop: np.ndarray,
    person: np.ndarray,
    activity: np.ndarray,
    place: np.ndarray,
) -> LogRecordArray:
    """Build a validated record array from five parallel columns.

    Raises ``ValueError`` if any column does not fit uint32 and
    :class:`~repro.errors.LogFormatError` if any ``stop <= start`` (an
    activity spell must cover at least one time unit).
    """
    cols = {
        "start": check_uint32(start, "start"),
        "stop": check_uint32(stop, "stop"),
        "person": check_uint32(person, "person"),
        "activity": check_uint32(activity, "activity"),
        "place": check_uint32(place, "place"),
    }
    n = len(cols["start"])
    for name, col in cols.items():
        if len(col) != n:
            raise LogFormatError(
                f"column {name!r} has length {len(col)}, expected {n}"
            )
    if np.any(cols["stop"] <= cols["start"]):
        raise LogFormatError("log records require stop > start")
    rec = empty_records(n)
    for name in LOG_FIELDS:
        rec[name] = cols[name]
    return rec


def validate_records(records: LogRecordArray) -> LogRecordArray:
    """Check dtype and interval sanity of an existing record array."""
    records = np.asarray(records)
    if records.dtype != LOG_DTYPE:
        raise LogFormatError(
            f"expected log dtype {LOG_DTYPE}, got {records.dtype}"
        )
    if np.any(records["stop"] <= records["start"]):
        raise LogFormatError("log records require stop > start")
    return records


def records_to_bytes(records: LogRecordArray) -> bytes:
    """Serialize records to their on-disk little-endian byte image."""
    records = np.ascontiguousarray(np.asarray(records, dtype=LOG_DTYPE))
    return records.tobytes()


def records_from_bytes(buf: bytes | memoryview) -> LogRecordArray:
    """Parse an on-disk byte image back into a record array."""
    if len(buf) % RECORD_BYTES:
        raise LogFormatError(
            f"byte buffer of {len(buf)} bytes is not a whole number of "
            f"{RECORD_BYTES}-byte records"
        )
    return np.frombuffer(bytes(buf), dtype=LOG_DTYPE).copy()
