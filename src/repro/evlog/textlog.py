"""Naive string logging — the paper's size strawman.

Section III: the binary format "is also much smaller than simply logging
the associated activity, location, or agent state descriptions as a string
format".  This writer logs exactly that — human-readable CSV lines with
string descriptions — so the EVL-vs-text size/throughput comparison in the
TXT-LOG benchmark has a real implementation on both sides.
"""

from __future__ import annotations

from pathlib import Path
from types import TracebackType

import numpy as np

from .schema import LOG_DTYPE, LogRecordArray

__all__ = ["TextLogWriter", "text_log_size"]

_HEADER_LINE = "start,stop,person,activity,place\n"


class TextLogWriter:
    """CSV event logger with string descriptions.

    Each record becomes a line like::

        2026-sim-hour-0034,2026-sim-hour-0042,person-0001234,at_work,place-0005678

    which is what an unoptimized agent-based model logger typically emits.
    """

    def __init__(self, path: str | Path, activity_names: dict[int, str]) -> None:
        self.path = Path(path)
        self._file = self.path.open("w", encoding="utf-8")
        self._file.write(_HEADER_LINE)
        self._names = dict(activity_names)
        self.records = 0
        self.bytes_written = len(_HEADER_LINE)

    def _activity_name(self, code: int) -> str:
        return self._names.get(code, f"activity-{code}")

    def log_batch(self, records: LogRecordArray) -> None:
        records = np.asarray(records, dtype=LOG_DTYPE)
        lines = []
        for rec in records:
            line = (
                f"sim-hour-{int(rec['start']):06d},"
                f"sim-hour-{int(rec['stop']):06d},"
                f"person-{int(rec['person']):07d},"
                f"{self._activity_name(int(rec['activity']))},"
                f"place-{int(rec['place']):07d}\n"
            )
            lines.append(line)
        blob = "".join(lines)
        self._file.write(blob)
        self.records += len(records)
        self.bytes_written += len(blob.encode())

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "TextLogWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


def text_log_size(records: LogRecordArray, activity_names: dict[int, str]) -> int:
    """Bytes the text strawman would use for *records*, without touching disk."""
    # sample-based exact computation: line length varies only with the
    # activity name, so compute per-activity counts and lengths.
    records = np.asarray(records, dtype=LOG_DTYPE)
    fixed = len("sim-hour-000000,") * 2 + len("person-0000000,") + len("place-0000000\n")
    total = len(_HEADER_LINE)
    acts, counts = np.unique(records["activity"], return_counts=True)
    for act, count in zip(acts, counts):
        name = activity_names.get(int(act), f"activity-{int(act)}")
        total += int(count) * (fixed + len(name) + 1)  # +1 comma after name
    return total
