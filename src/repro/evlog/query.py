"""Demographic and structural queries over event logs.

Paper Section III: "The unique ID numbers recorded in the log data can be
cross-referenced to the model input data for persons, activities and
locations for the purpose of looking up the string description for entries
and for filtering simulation results via queries on the input data, e.g.,
to create a subset of results for persons matching certain demographic
criteria."

This module is that cross-reference layer: filters joining log records to
the :class:`~repro.synthpop.person.PersonTable` and
:class:`~repro.synthpop.places.PlaceTable`, plus the aggregations built on
them (activity time budgets, contact counting, per-place-kind exposure).
All filters are pure functions over record arrays — composable and
vectorized.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError
from ..synthpop.person import PersonTable
from ..synthpop.places import PlaceKind, PlaceTable
from .schema import LOG_DTYPE, LogRecordArray

__all__ = [
    "filter_by_persons",
    "filter_by_person_mask",
    "filter_by_place_kind",
    "filter_by_activity",
    "describe_records",
    "activity_time_budget",
    "place_kind_exposure",
    "contacts_of_person",
]


def _records(records: LogRecordArray) -> LogRecordArray:
    records = np.asarray(records)
    if records.dtype != LOG_DTYPE:
        raise AnalysisError(f"expected log records, got dtype {records.dtype}")
    return records


def filter_by_persons(
    records: LogRecordArray, person_ids: np.ndarray
) -> LogRecordArray:
    """Records belonging to an explicit person-id set."""
    records = _records(records)
    ids = np.unique(np.asarray(person_ids, dtype=np.uint32))
    hit = np.isin(records["person"], ids)
    return records[hit]


def filter_by_person_mask(
    records: LogRecordArray, persons: PersonTable, mask: np.ndarray
) -> LogRecordArray:
    """Records for persons matching a demographic boolean mask.

    Example — the paper's demographic subset query::

        seniors = persons.age >= 65
        filter_by_person_mask(records, persons, seniors)
    """
    records = _records(records)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (len(persons),):
        raise AnalysisError("mask must cover the whole person table")
    if records.size and int(records["person"].max()) >= len(persons):
        raise AnalysisError("records reference persons outside the table")
    return records[mask[records["person"].astype(np.int64)]]


def filter_by_place_kind(
    records: LogRecordArray, places: PlaceTable, kind: PlaceKind
) -> LogRecordArray:
    """Records whose place is of the given kind (home/school/work/other)."""
    records = _records(records)
    if records.size and int(records["place"].max()) >= len(places):
        raise AnalysisError("records reference places outside the table")
    hit = places.kind[records["place"].astype(np.int64)] == int(kind)
    return records[hit]


def filter_by_activity(
    records: LogRecordArray, activities: np.ndarray | list[int]
) -> LogRecordArray:
    """Records whose activity code is in the given set."""
    records = _records(records)
    acts = np.unique(np.asarray(activities, dtype=np.uint32))
    return records[np.isin(records["activity"], acts)]


def describe_records(
    records: LogRecordArray,
    activity_names: dict[int, str],
    limit: int = 20,
) -> list[str]:
    """Human-readable record descriptions (the string lookup the compact
    uint32 schema deliberately avoids storing)."""
    records = _records(records)
    out = []
    for rec in records[:limit]:
        name = activity_names.get(
            int(rec["activity"]), f"activity-{int(rec['activity'])}"
        )
        out.append(
            f"person {int(rec['person'])} did {name} at place "
            f"{int(rec['place'])} during hours "
            f"[{int(rec['start'])}, {int(rec['stop'])})"
        )
    return out


def activity_time_budget(
    records: LogRecordArray, n_activities: int | None = None
) -> np.ndarray:
    """Total person-hours per activity code."""
    records = _records(records)
    hours = (records["stop"] - records["start"]).astype(np.int64)
    acts = records["activity"].astype(np.int64)
    n = n_activities or (int(acts.max()) + 1 if acts.size else 1)
    return np.bincount(acts, weights=hours, minlength=n).astype(np.int64)


def place_kind_exposure(
    records: LogRecordArray, places: PlaceTable
) -> dict[str, int]:
    """Person-hours spent at each place kind."""
    records = _records(records)
    if records.size and int(records["place"].max()) >= len(places):
        raise AnalysisError("records reference places outside the table")
    hours = (records["stop"] - records["start"]).astype(np.int64)
    kinds = places.kind[records["place"].astype(np.int64)].astype(np.int64)
    totals = np.bincount(kinds, weights=hours, minlength=len(PlaceKind))
    return {
        kind.name.lower(): int(totals[int(kind)]) for kind in PlaceKind
    }


def contacts_of_person(
    records: LogRecordArray, person: int, t0: int, t1: int
) -> np.ndarray:
    """All persons who shared a place-hour with *person* in ``[t0, t1)``.

    The paper's contact-reconstruction primitive ("reconstruct all the
    agents that an agent had contact with"), computed directly from
    records via interval intersection per shared place — no grid
    materialization.
    """
    records = _records(records)
    window = records[(records["start"] < t1) & (records["stop"] > t0)]
    mine = window[window["person"] == person]
    if len(mine) == 0:
        return np.empty(0, dtype=np.uint32)
    others = window[window["person"] != person]
    contacts: set[int] = set()
    for spell in mine:
        same_place = others[others["place"] == spell["place"]]
        overlap = (same_place["start"] < spell["stop"]) & (
            same_place["stop"] > spell["start"]
        )
        contacts.update(int(p) for p in same_place["person"][overlap])
    return np.array(sorted(contacts), dtype=np.uint32)
