"""Per-rank log directories and batched multi-file iteration.

A distributed run produces one EVL file per rank ("this scenario generates
64 log files which can then be easily loaded ... in an iterative or batch
fashion").  :class:`LogSet` wraps such a directory and reproduces the
paper's batch processing: the synthesis script processes "batches of 16
files at a time", each batch independent of the others.

Quarantine
----------
At cluster scale, one rank file out of hundreds may be truncated (a writer
killed mid-flush) or corrupted (a bad disk block flipping bits under a
CRC).  A multi-hour synthesis run should not die for one bad input: the
quarantine helpers here read each file under full verification and report
damaged files instead of raising, so the pipeline can skip exactly the bad
files and record them in its :class:`~repro.core.pipeline.SynthesisReport`.
Strict mode (raise on the first bad file) remains available.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from ..errors import LogFormatError
from .reader import LogReader, SliceDescriptor
from .schema import LogRecordArray, empty_records
from .writer import CachedLogWriter, wal_sidecar_path

__all__ = [
    "LogSet",
    "rank_log_path",
    "write_rank_logs",
    "try_read_time_slice",
    "try_slice_descriptor",
    "salvage_rank_logs",
]


def try_read_time_slice(
    path: str | Path, t0: int, t1: int
) -> tuple[LogRecordArray | None, str | None]:
    """Fully-verified time-sliced read of one EVL file.

    Returns ``(records, None)`` on success or ``(None, reason)`` when the
    file is unusable (missing trailer, framing damage, CRC mismatch).  The
    whole file is CRC-verified, not just the chunks overlapping the window,
    so a file is deterministically either good or quarantined regardless of
    the query window.
    """
    try:
        reader = LogReader(path, strict=True)
        reader.verify()
        return reader.read_time_slice(t0, t1), None
    except LogFormatError as exc:
        return None, f"{type(exc).__name__}: {exc}"


def try_slice_descriptor(
    path: str | Path, t0: int, t1: int
) -> tuple[SliceDescriptor | None, str | None]:
    """Zero-copy twin of :func:`try_read_time_slice`.

    Returns ``(descriptor, None)`` on success or ``(None, reason)`` when
    the file must be quarantined.  The same whole-file determinism holds:
    every chunk is CRC-checked (framing + checksum, no payload decode), so
    a damaged file is rejected regardless of the query window — matching
    the by-value path's verdict for any corruption a CRC can see.
    """
    try:
        with LogReader(path, strict=True, use_mmap=True) as reader:
            reader.check_crc()
            return reader.slice_descriptor(t0, t1), None
    except LogFormatError as exc:
        return None, f"{type(exc).__name__}: {exc}"


_RANK_FILE_RE = re.compile(r"^rank_(\d+)\.evl$")


def rank_log_path(directory: str | Path, rank: int) -> Path:
    """Canonical per-rank log filename: ``rank_0007.evl``."""
    return Path(directory) / f"rank_{rank:04d}.evl"


def write_rank_logs(
    directory: str | Path,
    per_rank_records: Sequence[LogRecordArray],
    cache_records: int = 10_000,
    compress: bool = False,
) -> list[Path]:
    """Write one EVL file per rank from in-memory record arrays.

    Convenience used by the serial engine and tests; the distributed engine
    writes through per-rank :class:`CachedLogWriter` instances directly.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for rank, records in enumerate(per_rank_records):
        path = rank_log_path(directory, rank)
        with CachedLogWriter(
            path, rank=rank, cache_records=cache_records, compress=compress
        ) as writer:
            writer.log_batch(records)
        paths.append(path)
    return paths


def salvage_rank_logs(directory: str | Path) -> list[tuple[Path, int]]:
    """Repair every torn ``rank_NNNN.evl`` file in *directory* in place.

    A file is torn when its writer died before ``close``: it has no valid
    trailer, and under WAL durability it may have a ``.wal`` sidecar with
    acknowledged records that never made it into a chunk.  Each torn file
    is reopened with :meth:`CachedLogWriter.open_resume` (which salvages
    intact chunks plus the WAL tail) and cleanly closed, leaving a valid
    EVL file that strict readers accept.

    Returns ``(path, salvaged_wal_records)`` for every file that was
    repaired; files already cleanly closed (and without a stale sidecar)
    are untouched.  This is the recovery step a supervisor runs before
    feeding a crashed run's log directory to synthesis.
    """
    directory = Path(directory)
    repaired: list[tuple[Path, int]] = []
    for path in sorted(directory.iterdir()):
        if not _RANK_FILE_RE.match(path.name):
            continue
        needs_repair = wal_sidecar_path(path).is_file()
        if not needs_repair:
            try:
                LogReader(path, strict=True)
            except LogFormatError:
                needs_repair = True
        if not needs_repair:
            continue
        writer = CachedLogWriter.open_resume(path)
        stats = writer.close()
        repaired.append((path, stats.salvaged_records))
    return repaired


class LogSet:
    """A directory of per-rank EVL files.

    Files are discovered by the ``rank_NNNN.evl`` pattern and ordered by
    rank.  All multi-file reads are per-file (bounded memory) unless the
    caller asks for a concatenated load.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise LogFormatError(f"{self.directory} is not a directory")
        found: list[tuple[int, Path]] = []
        for path in self.directory.iterdir():
            m = _RANK_FILE_RE.match(path.name)
            if m:
                found.append((int(m.group(1)), path))
        found.sort()
        if not found:
            raise LogFormatError(f"no rank_NNNN.evl files in {self.directory}")
        self.paths = [p for _, p in found]
        self.ranks = [r for r, _ in found]

    def __len__(self) -> int:
        return len(self.paths)

    def reader(self, index: int) -> LogReader:
        return LogReader(self.paths[index])

    def iter_readers(self) -> Iterator[LogReader]:
        for path in self.paths:
            yield LogReader(path)

    def batches(self, batch_size: int) -> Iterator[list[Path]]:
        """File batches, the paper's unit of independent synthesis jobs."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        for i in range(0, len(self.paths), batch_size):
            yield self.paths[i : i + batch_size]

    def total_records(self) -> int:
        return sum(r.n_records for r in self.iter_readers())

    def total_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.paths)

    def read_all(self) -> LogRecordArray:
        """Concatenate every record from every rank file."""
        parts = [r.read_all() for r in self.iter_readers()]
        parts = [p for p in parts if len(p)]
        if not parts:
            return empty_records(0)
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def read_time_slice(
        self,
        t0: int,
        t1: int,
        on_error: str = "raise",
        quarantined: list[tuple[Path, str]] | None = None,
    ) -> LogRecordArray:
        """Time-sliced records across all rank files.

        ``on_error='raise'`` (default) propagates the first
        :class:`~repro.errors.LogFormatError`; ``on_error='skip'`` reads
        each file under full verification, skips damaged files, and appends
        ``(path, reason)`` for each to *quarantined* when given.
        """
        if on_error not in ("raise", "skip"):
            raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
        parts = []
        for path in self.paths:
            if on_error == "skip":
                rec, reason = try_read_time_slice(path, t0, t1)
                if rec is None:
                    if quarantined is not None:
                        quarantined.append((path, reason or "unreadable"))
                    continue
            else:
                rec = LogReader(path).read_time_slice(t0, t1)
            if len(rec):
                parts.append(rec)
        if not parts:
            return empty_records(0)
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def quarantine_scan(self) -> list[tuple[Path, str]]:
        """Verify every file end to end; return ``(path, reason)`` for each
        damaged one.  An empty list means the whole directory is clean."""
        bad: list[tuple[Path, str]] = []
        for path in self.paths:
            try:
                LogReader(path, strict=True).verify()
            except LogFormatError as exc:
                bad.append((path, f"{type(exc).__name__}: {exc}"))
        return bad
