"""Cached per-rank log writer.

Mirrors the paper's logging architecture: "a static logger instance is
created for each process ... Each logger stores entries in memory in a
cache that is implemented as a 2D integer array.  The log cache size is
variable although a nominal size of 10,000 log entries is used ... A
smaller cache will reduce memory usage but will result in more individual
write operations ... a larger cache will require more memory but will
provide a speed tradeoff as fewer write operations are required."

The cache here is literally a ``(cache_records, 5)`` uint32 array; a full
cache is framed as one chunk and appended to the file in a single write,
the EVL equivalent of HDF5's chunked dataset append.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from types import TracebackType

import numpy as np

from ..errors import LogFormatError
from .format import ChunkInfo, pack_chunk, pack_header, pack_index, pack_trailer
from .schema import LOG_DTYPE, LOG_FIELDS, RECORD_BYTES, LogRecordArray

__all__ = ["CachedLogWriter", "WriterStats"]

DEFAULT_CACHE_RECORDS = 10_000


@dataclass
class WriterStats:
    """Observable cost counters for the cache-size tradeoff experiments."""

    records: int = 0
    flushes: int = 0
    bytes_written: int = 0
    cache_records: int = 0
    cache_bytes: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.cache_bytes = self.cache_records * RECORD_BYTES


class CachedLogWriter:
    """Append-only EVL writer with a bounded in-memory record cache.

    Parameters
    ----------
    path:
        Output file; created/truncated on open.
    rank:
        Id of the owning process, stored in the header (one file per rank).
    cache_records:
        Cache capacity in records; a full cache triggers one chunk write.
    compress:
        zlib-compress chunk payloads (smaller files, more CPU).

    Use as a context manager; the index and trailer are written on
    :meth:`close`.  A writer that dies before ``close`` leaves a file that
    :class:`~repro.evlog.reader.LogReader` can still recover chunk-by-chunk.
    """

    def __init__(
        self,
        path: str | Path,
        rank: int = 0,
        cache_records: int = DEFAULT_CACHE_RECORDS,
        compress: bool = False,
    ) -> None:
        if cache_records < 1:
            raise LogFormatError("cache_records must be >= 1")
        if rank < 0:
            raise LogFormatError("rank must be >= 0")
        self.path = Path(path)
        self.rank = rank
        self.compress = compress
        self.cache_records = cache_records
        self._cache = np.empty((cache_records, len(LOG_FIELDS)), dtype=np.uint32)
        self._fill = 0
        self._chunks: list[ChunkInfo] = []
        self._file: io.BufferedWriter | None = self.path.open("wb")
        self._offset = 0
        self.stats = WriterStats(cache_records=cache_records)
        self._write(pack_header(rank, compress))

    # -- plumbing -----------------------------------------------------------

    def _write(self, buf: bytes) -> None:
        assert self._file is not None
        self._file.write(buf)
        self._offset += len(buf)
        self.stats.bytes_written += len(buf)

    def _require_open(self) -> None:
        if self._file is None:
            raise LogFormatError(f"writer for {self.path} is closed")

    # -- logging API --------------------------------------------------------

    def log(
        self, start: int, stop: int, person: int, activity: int, place: int
    ) -> None:
        """Append one activity-change record (hot path, scalar)."""
        self._require_open()
        if stop <= start:
            raise LogFormatError(f"stop ({stop}) must exceed start ({start})")
        row = self._cache[self._fill]
        row[0] = start
        row[1] = stop
        row[2] = person
        row[3] = activity
        row[4] = place
        self._fill += 1
        self.stats.records += 1
        if self._fill == self.cache_records:
            self.flush()

    def log_batch(self, records: LogRecordArray) -> None:
        """Append a validated structured record array (vectorized path).

        Fills the cache in slices so flush boundaries behave exactly as if
        the records had been logged one by one.
        """
        self._require_open()
        records = np.asarray(records)
        if records.dtype != LOG_DTYPE:
            raise LogFormatError(
                f"log_batch expects dtype {LOG_DTYPE}, got {records.dtype}"
            )
        flat = (
            np.ascontiguousarray(records)
            .view(np.uint32)
            .reshape(-1, len(LOG_FIELDS))
        )
        pos = 0
        n = len(flat)
        while pos < n:
            take = min(n - pos, self.cache_records - self._fill)
            self._cache[self._fill : self._fill + take] = flat[pos : pos + take]
            self._fill += take
            pos += take
            self.stats.records += take
            if self._fill == self.cache_records:
                self.flush()

    def flush(self) -> None:
        """Write the cached records (if any) as one chunk."""
        self._require_open()
        if self._fill == 0:
            return
        block = self._cache[: self._fill]
        image = np.ascontiguousarray(block).tobytes()
        t_min = int(block[:, 0].min())
        t_max = int(block[:, 1].max())
        chunk_offset = self._offset
        self._write(pack_chunk(image, self._fill, self.compress))
        self._chunks.append(
            ChunkInfo(
                offset=chunk_offset,
                n_records=self._fill,
                t_min=t_min,
                t_max=t_max,
            )
        )
        self.stats.flushes += 1
        self._fill = 0

    def close(self) -> WriterStats:
        """Flush, write index + trailer, and close the file."""
        if self._file is None:
            return self.stats
        self.flush()
        index_offset = self._offset
        self._write(pack_index(self._chunks))
        self._write(pack_trailer(index_offset, self.stats.records))
        self._file.close()
        self._file = None
        return self.stats

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "CachedLogWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is None:
            self.close()
        elif self._file is not None:
            # on error, leave a truncated-but-recoverable file
            self._file.close()
            self._file = None
