"""Cached per-rank log writer.

Mirrors the paper's logging architecture: "a static logger instance is
created for each process ... Each logger stores entries in memory in a
cache that is implemented as a 2D integer array.  The log cache size is
variable although a nominal size of 10,000 log entries is used ... A
smaller cache will reduce memory usage but will result in more individual
write operations ... a larger cache will require more memory but will
provide a speed tradeoff as fewer write operations are required."

The cache here is literally a ``(cache_records, 5)`` uint32 array; a full
cache is framed as one chunk and appended to the file in a single write,
the EVL equivalent of HDF5's chunked dataset append.

Durability
----------
The cache is also the failure window: a rank killed between flushes loses
up to ``cache_records`` acknowledged records.  :class:`DurabilityPolicy`
trades write cost against that window:

* ``NONE`` — the paper's behavior: buffered writes, up to a full cache of
  records at risk, minimum cost.
* ``FSYNC`` — every flushed chunk is fsynced; only the un-flushed cache is
  at risk.
* ``WAL`` — every logging call is journaled to a CRC-framed ``.wal``
  sidecar and fsynced before it returns, so a hard kill (SIGKILL, OOM,
  node loss) loses **zero** acknowledged records; the sidecar is reset at
  each chunk commit so it stays bounded by the cache size.

:meth:`CachedLogWriter.open_resume` reopens a torn file — intact chunks
are kept, the WAL tail is salvaged, and appending continues — making
per-rank log files restartable across crashes.
"""

from __future__ import annotations

import enum
import io
import os
from dataclasses import dataclass, field
from pathlib import Path
from types import TracebackType

import numpy as np

from ..errors import LogFormatError
from .format import (
    ChunkInfo,
    pack_chunk,
    pack_header,
    pack_index,
    pack_trailer,
    pack_wal_frame,
    pack_wal_header,
    scan_wal_frames,
    unpack_header,
    unpack_index,
    unpack_trailer,
)
from .schema import LOG_DTYPE, LOG_FIELDS, RECORD_BYTES, LogRecordArray

__all__ = ["CachedLogWriter", "WriterStats", "DurabilityPolicy"]

DEFAULT_CACHE_RECORDS = 10_000


class DurabilityPolicy(str, enum.Enum):
    """How much of the cache-size failure window to close (see module doc)."""

    NONE = "none"
    FSYNC = "fsync"
    WAL = "wal"

    @classmethod
    def coerce(cls, value: "DurabilityPolicy | str") -> "DurabilityPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise LogFormatError(
                f"unknown durability policy {value!r}; "
                f"expected one of {[p.value for p in cls]}"
            ) from None


@dataclass
class WriterStats:
    """Observable cost counters for the cache-size tradeoff experiments."""

    records: int = 0
    flushes: int = 0
    bytes_written: int = 0
    cache_records: int = 0
    cache_bytes: int = field(init=False, default=0)
    #: fsync calls issued (chunk commits and WAL appends)
    fsyncs: int = 0
    #: journal frames appended to the WAL sidecar
    wal_frames: int = 0
    #: journal bytes written to the WAL sidecar
    wal_bytes: int = 0
    #: acknowledged records recovered from a torn file by ``open_resume``
    salvaged_records: int = 0

    def __post_init__(self) -> None:
        self.cache_bytes = self.cache_records * RECORD_BYTES

    def records_at_risk(self, durability: "DurabilityPolicy") -> int:
        """Worst-case acknowledged records a hard kill loses right now."""
        if durability is DurabilityPolicy.WAL:
            return 0
        return self.cache_records


def wal_sidecar_path(path: str | Path) -> Path:
    """The WAL sidecar filename for an EVL file: ``rank_0000.evl.wal``."""
    path = Path(path)
    return path.with_name(path.name + ".wal")


class CachedLogWriter:
    """Append-only EVL writer with a bounded in-memory record cache.

    Parameters
    ----------
    path:
        Output file; created/truncated on open.
    rank:
        Id of the owning process, stored in the header (one file per rank).
    cache_records:
        Cache capacity in records; a full cache triggers one chunk write.
    compress:
        zlib-compress chunk payloads (smaller files, more CPU).
    durability:
        A :class:`DurabilityPolicy` (or its string value) bounding how many
        acknowledged records a hard kill can lose.

    Use as a context manager; the index and trailer are written on
    :meth:`close`.  A writer that dies before ``close`` leaves a file that
    :class:`~repro.evlog.reader.LogReader` can still recover chunk-by-chunk
    and that :meth:`open_resume` can reopen for appending.
    """

    def __init__(
        self,
        path: str | Path,
        rank: int = 0,
        cache_records: int = DEFAULT_CACHE_RECORDS,
        compress: bool = False,
        durability: DurabilityPolicy | str = DurabilityPolicy.NONE,
    ) -> None:
        if cache_records < 1:
            raise LogFormatError("cache_records must be >= 1")
        if rank < 0:
            raise LogFormatError("rank must be >= 0")
        self.path = Path(path)
        self.rank = rank
        self.compress = compress
        self.cache_records = cache_records
        self.durability = DurabilityPolicy.coerce(durability)
        self._cache = np.empty((cache_records, len(LOG_FIELDS)), dtype=np.uint32)
        self._fill = 0
        self._chunks: list[ChunkInfo] = []
        self._file: io.BufferedWriter | None = self.path.open("wb")
        self._wal_file: io.BufferedWriter | None = None
        self._offset = 0
        self.stats = WriterStats(cache_records=cache_records)
        self._write(pack_header(rank, compress))
        if self.durability is DurabilityPolicy.WAL:
            self._open_wal()

    @property
    def wal_path(self) -> Path:
        return wal_sidecar_path(self.path)

    @property
    def offset(self) -> int:
        """Current append position in bytes.

        Immediately after :meth:`flush` this is a chunk boundary — the
        value a checkpoint records so :meth:`open_resume` can truncate the
        file back to this exact commit point (``at_offset``)."""
        return self._offset

    # -- plumbing -----------------------------------------------------------

    def _write(self, buf: bytes) -> None:
        assert self._file is not None
        self._file.write(buf)
        self._offset += len(buf)
        self.stats.bytes_written += len(buf)

    def _require_open(self) -> None:
        if self._file is None:
            raise LogFormatError(f"writer for {self.path} is closed")

    def _sync(self, fh: io.BufferedWriter) -> None:
        fh.flush()
        os.fsync(fh.fileno())
        self.stats.fsyncs += 1

    def _open_wal(self) -> None:
        """(Re)create the sidecar with a fresh header, durably."""
        self._wal_file = self.wal_path.open("wb")
        self._wal_file.write(pack_wal_header(self.rank))
        self._sync(self._wal_file)

    def _journal(self, image: bytes, base_record: int) -> None:
        """Durably append one frame of acknowledged records to the WAL."""
        if self._wal_file is None:
            return
        frame = pack_wal_frame(image, base_record)
        self._wal_file.write(frame)
        self._sync(self._wal_file)
        self.stats.wal_frames += 1
        self.stats.wal_bytes += len(frame)

    def _reset_wal(self) -> None:
        """Discard journaled frames now secured in a committed chunk."""
        assert self._wal_file is not None
        self._wal_file.seek(0)
        self._wal_file.truncate()
        self._wal_file.write(pack_wal_header(self.rank))
        self._sync(self._wal_file)

    # -- logging API --------------------------------------------------------

    def log(
        self, start: int, stop: int, person: int, activity: int, place: int
    ) -> None:
        """Append one activity-change record (hot path, scalar).

        Under ``WAL`` durability every scalar call costs a journal fsync;
        prefer :meth:`log_batch`, which journals a whole batch per fsync.
        """
        self._require_open()
        if stop <= start:
            raise LogFormatError(f"stop ({stop}) must exceed start ({start})")
        row = self._cache[self._fill]
        row[0] = start
        row[1] = stop
        row[2] = person
        row[3] = activity
        row[4] = place
        if self._wal_file is not None:
            self._journal(
                np.ascontiguousarray(row).tobytes(), self.stats.records
            )
        self._fill += 1
        self.stats.records += 1
        if self._fill == self.cache_records:
            self.flush()

    def log_batch(self, records: LogRecordArray) -> None:
        """Append a validated structured record array (vectorized path).

        Fills the cache in slices so flush boundaries behave exactly as if
        the records had been logged one by one.  The batch is validated as
        a unit before any record enters the cache; under ``WAL`` durability
        each cache slice is journaled just before insertion (a slice that
        triggers a flush is secured by its chunk, and the WAL reset must
        not discard coverage of the batch's still-cached tail).
        """
        self._require_open()
        records = np.asarray(records)
        if records.dtype != LOG_DTYPE:
            raise LogFormatError(
                f"log_batch expects dtype {LOG_DTYPE}, got {records.dtype}"
            )
        flat = (
            np.ascontiguousarray(records)
            .view(np.uint32)
            .reshape(-1, len(LOG_FIELDS))
        )
        if np.any(flat[:, 1] <= flat[:, 0]):
            raise LogFormatError("log records require stop > start")
        pos = 0
        n = len(flat)
        while pos < n:
            take = min(n - pos, self.cache_records - self._fill)
            if self._wal_file is not None:
                self._journal(
                    flat[pos : pos + take].tobytes(), self.stats.records
                )
            self._cache[self._fill : self._fill + take] = flat[pos : pos + take]
            self._fill += take
            pos += take
            self.stats.records += take
            if self._fill == self.cache_records:
                self.flush()

    def flush(self) -> None:
        """Write the cached records (if any) as one chunk.

        Under ``FSYNC``/``WAL`` durability the chunk is fsynced; under
        ``WAL`` the sidecar is then reset, since its frames are now secured
        in the main file.
        """
        self._require_open()
        if self._fill == 0:
            return
        block = self._cache[: self._fill]
        image = np.ascontiguousarray(block).tobytes()
        t_min = int(block[:, 0].min())
        t_max = int(block[:, 1].max())
        chunk_offset = self._offset
        self._write(pack_chunk(image, self._fill, self.compress))
        if self.durability is not DurabilityPolicy.NONE:
            assert self._file is not None
            self._sync(self._file)
        self._chunks.append(
            ChunkInfo(
                offset=chunk_offset,
                n_records=self._fill,
                t_min=t_min,
                t_max=t_max,
            )
        )
        self.stats.flushes += 1
        self._fill = 0
        if self._wal_file is not None:
            self._reset_wal()

    def close(self) -> WriterStats:
        """Flush, write index + trailer, and close the file.

        A cleanly closed file needs no journal: the WAL sidecar is removed.
        """
        if self._file is None:
            return self.stats
        self.flush()
        index_offset = self._offset
        self._write(pack_index(self._chunks))
        self._write(pack_trailer(index_offset, self.stats.records))
        if self.durability is not DurabilityPolicy.NONE:
            self._sync(self._file)
        self._file.close()
        self._file = None
        if self._wal_file is not None:
            self._wal_file.close()
            self._wal_file = None
            self.wal_path.unlink(missing_ok=True)
        return self.stats

    # -- crash recovery ------------------------------------------------------

    @classmethod
    def open_resume(
        cls,
        path: str | Path,
        cache_records: int = DEFAULT_CACHE_RECORDS,
        durability: DurabilityPolicy | str = DurabilityPolicy.NONE,
        rank: int = 0,
        at_offset: int | None = None,
    ) -> "CachedLogWriter":
        """Reopen an EVL file for appending, salvaging a torn tail.

        The file is scanned for intact chunks (a valid index/trailer, if
        present, is consumed and stripped — appending resumes after the
        last chunk).  Any acknowledged records found only in the WAL
        sidecar are re-appended and immediately committed as a chunk, so
        they never lose durability protection across the resume; the count
        is reported in ``stats.salvaged_records``.

        Parameters
        ----------
        at_offset:
            Restore to an exact prior commit point instead of salvaging:
            the file is truncated to this byte offset (which must be a
            chunk boundary recorded after a flush) and the WAL sidecar is
            discarded — the checkpoint, not the journal, is the authority.
            This is what makes checkpointed runs bit-for-bit resumable.
        rank:
            Used only when *path* does not exist yet (fresh start during a
            recovery that never checkpointed); an existing header wins.
        """
        path = Path(path)
        durability = DurabilityPolicy.coerce(durability)
        if not path.is_file():
            if at_offset is not None:
                raise LogFormatError(
                    f"cannot restore {path} to offset {at_offset}: no file"
                )
            return cls(
                path,
                rank=rank,
                cache_records=cache_records,
                durability=durability,
            )

        buf = path.read_bytes()
        header = unpack_header(buf)
        trailer = unpack_trailer(buf)
        if trailer is not None:
            index_offset, _total = trailer
            chunks = unpack_index(buf, index_offset)
            data_end = index_offset
        else:
            from .reader import scan_intact_chunks

            chunks, data_end = scan_intact_chunks(buf, header.compressed)

        salvage_rows: np.ndarray | None = None
        sidecar = wal_sidecar_path(path)
        if at_offset is not None:
            boundaries = {c.offset for c in chunks} | {data_end}
            if at_offset not in boundaries:
                raise LogFormatError(
                    f"{path}: offset {at_offset} is not a chunk boundary; "
                    "refusing to truncate mid-chunk"
                )
            chunks = [c for c in chunks if c.offset < at_offset]
            data_end = at_offset
        elif sidecar.is_file():
            in_chunks = sum(c.n_records for c in chunks)
            frames = scan_wal_frames(sidecar.read_bytes())
            missing: list[np.ndarray] = []
            for base, image in frames:
                rows = np.frombuffer(image, dtype=np.uint32).reshape(
                    -1, len(LOG_FIELDS)
                )
                # rows [base, base + n) minus those already inside chunks
                skip = max(0, in_chunks - base)
                if skip < len(rows):
                    missing.append(rows[skip:])
                    in_chunks = base + len(rows)
            if missing:
                salvage_rows = np.concatenate(missing)

        writer = cls.__new__(cls)
        writer.path = path
        writer.rank = header.rank
        writer.compress = header.compressed
        writer.cache_records = cache_records
        writer.durability = durability
        writer._cache = np.empty(
            (cache_records, len(LOG_FIELDS)), dtype=np.uint32
        )
        writer._fill = 0
        writer._chunks = list(chunks)
        writer._wal_file = None
        fh = path.open("r+b")
        fh.truncate(data_end)
        fh.seek(data_end)
        writer._file = fh
        writer._offset = data_end
        writer.stats = WriterStats(cache_records=cache_records)
        writer.stats.records = sum(c.n_records for c in chunks)

        if salvage_rows is not None:
            # re-append through the normal path (WAL not yet open, so no
            # double journaling), then commit as a chunk before touching
            # the old sidecar — the salvaged records never go unprotected.
            structured = (
                np.ascontiguousarray(salvage_rows)
                .view(LOG_DTYPE)
                .reshape(-1)
            )
            writer.log_batch(structured)
            writer.flush()
            if writer.durability is not DurabilityPolicy.NONE:
                writer._sync(fh)
            writer.stats.salvaged_records = len(salvage_rows)
        sidecar.unlink(missing_ok=True)
        if writer.durability is DurabilityPolicy.WAL:
            writer._open_wal()
        return writer

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "CachedLogWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is None:
            self.close()
        elif self._file is not None:
            # on error, best-effort flush the buffered records and write
            # the index/trailer — crashing with a clean file beats silently
            # discarding up to a whole cache of acknowledged records
            try:
                self.close()
            except Exception:
                # fall back to leaving a truncated-but-recoverable file;
                # never mask the original exception
                if self._file is not None:
                    self._file.close()
                    self._file = None
                if self._wal_file is not None:
                    self._wal_file.close()
                    self._wal_file = None
