"""EVL log reader: whole-file, chunk-iterative, and time-sliced access.

Post-simulation network synthesis reads logs in two patterns, both from the
paper:

* **batch**: load everything (or a file at a time) for a synthesis run;
* **time slice**: "sub-setting the table into time slices, e.g. one week,
  based on the start and stop times of the log entries" — served here from
  the chunk index, which records each chunk's time envelope, so only
  overlapping chunks are decoded.

Files truncated by a crashed writer (no trailer) are recovered by scanning
chunks forward until the first incomplete one.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from ..errors import LogFormatError, LogTruncatedError
from .format import (
    ChunkInfo,
    EvlHeader,
    HEADER_BYTES,
    check_chunk_at,
    read_chunk_at,
    unpack_header,
    unpack_index,
    unpack_trailer,
)
from .schema import LOG_DTYPE, LogRecordArray, empty_records, records_from_bytes

__all__ = [
    "LogReader",
    "SliceDescriptor",
    "read_slice_descriptor",
    "read_slice_columns",
    "scan_intact_chunks",
]


@dataclass(frozen=True)
class SliceDescriptor:
    """A zero-copy work order: *where* a window's records live, not the
    records themselves.

    The root builds one per file from the chunk index (plus a CRC scan —
    no payload decode) and ships it to a worker, which mmaps the file and
    decodes exactly the listed chunks.  Pickled size is O(chunks), not
    O(records): a few dozen bytes per task instead of the full record
    array.
    """

    path: str
    t0: int
    t1: int
    #: byte offsets of the chunks whose time envelope overlaps the window
    chunk_offsets: tuple[int, ...]
    #: declared record count across those chunks (upper bound on the slice)
    n_records: int


def read_slice_descriptor(descriptor: SliceDescriptor) -> LogRecordArray:
    """Worker side of zero-copy dispatch: materialize a descriptor.

    Maps the file, decodes only the listed chunks, and applies the window
    mask — byte-identical to
    :meth:`LogReader.read_time_slice` on the same file and window.
    """
    parts = []
    with LogReader(descriptor.path, use_mmap=True) as reader:
        for offset in descriptor.chunk_offsets:
            image, _n, _next = read_chunk_at(
                reader._buf, offset, reader.header.compressed
            )
            rec = records_from_bytes(image)
            mask = (rec["start"] < descriptor.t1) & (rec["stop"] > descriptor.t0)
            if mask.any():
                parts.append(rec[mask])
    if not parts:
        return empty_records(0)
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


def read_slice_columns(
    descriptor: SliceDescriptor,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Columnar twin of :func:`read_slice_descriptor` for the interval
    kernel: ``(starts, stops, person, place)`` int64 columns, window-masked
    and clipped to ``[t0, t1)``.

    Value-identical to ``clip_records(read_slice_descriptor(d), t0, t1)``
    pulled apart into columns, but built without materializing struct
    records: each mmap'd chunk is viewed in place (``np.frombuffer``, no
    payload copy for uncompressed files) and its fields are cast-copied
    straight into four preallocated int64 columns — no per-chunk record
    copies, no fancy-indexed struct gather, no final concatenate.  The
    columns land exactly where :func:`~repro.core.intervals.
    build_interval_pack_columns` wants them.
    """
    cap = descriptor.n_records
    starts = np.empty(cap, dtype=np.int64)
    stops = np.empty(cap, dtype=np.int64)
    person = np.empty(cap, dtype=np.int64)
    place = np.empty(cap, dtype=np.int64)
    n = 0
    with LogReader(descriptor.path, use_mmap=True) as reader:
        for offset in descriptor.chunk_offsets:
            image, _n, _next = read_chunk_at(
                reader._buf, offset, reader.header.compressed
            )
            rec = np.frombuffer(image, dtype=LOG_DTYPE)
            s, e = rec["start"], rec["stop"]
            mask = (s < descriptor.t1) & (e > descriptor.t0)
            if mask.all():
                k = len(rec)
            else:
                idx = np.flatnonzero(mask)
                k = len(idx)
                if not k:
                    continue
                rec = rec[idx]
                s, e = rec["start"], rec["stop"]
            end = n + k
            starts[n:end] = s
            stops[n:end] = e
            person[n:end] = rec["person"]
            place[n:end] = rec["place"]
            n = end
    starts, stops = starts[:n], stops[:n]
    np.maximum(starts, descriptor.t0, out=starts)
    np.minimum(stops, descriptor.t1, out=stops)
    return starts, stops, person[:n], place[:n]


def scan_intact_chunks(
    buf: bytes | memoryview, compressed: bool, start: int = HEADER_BYTES
) -> tuple[list[ChunkInfo], int]:
    """Recover chunk locations by scanning forward from *start*.

    Returns ``(chunks, end_offset)`` where ``end_offset`` is the byte just
    past the last intact chunk — the safe truncation point for salvage.
    The scan stops at the first torn or corrupt chunk (and at the index,
    whose magic differs), so everything before ``end_offset`` is verified.

    Shared by :class:`LogReader` (recovering trailer-less files) and
    :meth:`~repro.evlog.writer.CachedLogWriter.open_resume` (reopening a
    torn file for appending).
    """
    chunks: list[ChunkInfo] = []
    offset = start
    while offset < len(buf):
        try:
            image, n, next_offset = read_chunk_at(buf, offset, compressed)
        except (LogTruncatedError, LogFormatError):
            break  # first damaged/incomplete chunk ends recovery
        rec = records_from_bytes(image)
        t_min = int(rec["start"].min()) if n else 0
        t_max = int(rec["stop"].max()) if n else 0
        chunks.append(
            ChunkInfo(offset=offset, n_records=n, t_min=t_min, t_max=t_max)
        )
        offset = next_offset
    return chunks, offset


class LogReader:
    """Reader for one EVL file.

    Parameters
    ----------
    path:
        The log file.
    strict:
        When true, a file without a valid trailer raises
        :class:`~repro.errors.LogTruncatedError`; when false (default) the
        reader recovers all intact chunks and exposes
        :attr:`recovered` = True.
    """

    def __init__(
        self, path: str | Path, strict: bool = False, use_mmap: bool = False
    ) -> None:
        """``use_mmap`` maps the file instead of reading it into memory —
        the right mode for the paper's multi-GB per-rank files, where a
        time-sliced read touches only the overlapping chunks' pages."""
        self.path = Path(path)
        if use_mmap:
            import mmap

            with self.path.open("rb") as fh:
                try:
                    self._mmap = mmap.mmap(
                        fh.fileno(), 0, access=mmap.ACCESS_READ
                    )
                    self._buf: bytes | memoryview = memoryview(self._mmap)
                except ValueError:  # zero-length file cannot be mapped
                    self._mmap = None
                    self._buf = b""
        else:
            self._mmap = None
            self._buf = self.path.read_bytes()
        self.header: EvlHeader = unpack_header(self._buf)
        self.recovered = False
        trailer = unpack_trailer(self._buf)
        if trailer is not None:
            index_offset, total = trailer
            self.chunks: list[ChunkInfo] = unpack_index(self._buf, index_offset)
            declared = sum(c.n_records for c in self.chunks)
            if declared != total:
                raise LogFormatError(
                    f"{self.path}: index declares {declared} records, "
                    f"trailer says {total}"
                )
        else:
            if strict:
                raise LogTruncatedError(
                    f"{self.path} has no trailer (writer did not close)"
                )
            self.chunks = self._scan_chunks()
            self.recovered = True

    def close(self) -> None:
        """Release the mmap (no-op for in-memory readers)."""
        if self._mmap is not None:
            if isinstance(self._buf, memoryview):
                self._buf.release()
            self._buf = b""
            self._mmap.close()
            self._mmap = None

    def __enter__(self) -> "LogReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- construction helpers -------------------------------------------------

    def _scan_chunks(self) -> list[ChunkInfo]:
        """Recover chunk locations by scanning forward from the header."""
        chunks, _end = scan_intact_chunks(self._buf, self.header.compressed)
        return chunks

    # -- basic properties ------------------------------------------------------

    @property
    def rank(self) -> int:
        return self.header.rank

    @property
    def n_records(self) -> int:
        return sum(c.n_records for c in self.chunks)

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    @property
    def file_bytes(self) -> int:
        return len(self._buf)

    # -- reading ----------------------------------------------------------------

    def _decode(self, chunk: ChunkInfo) -> LogRecordArray:
        image, n, _ = read_chunk_at(self._buf, chunk.offset, self.header.compressed)
        if n != chunk.n_records:
            raise LogFormatError(
                f"{self.path}: chunk at {chunk.offset} holds {n} records, "
                f"index says {chunk.n_records}"
            )
        return records_from_bytes(image)

    def iter_chunks(self) -> Iterator[LogRecordArray]:
        """Yield each chunk's records in file order (bounded memory)."""
        for chunk in self.chunks:
            yield self._decode(chunk)

    def read_all(self) -> LogRecordArray:
        """Read every record in the file as one structured array."""
        if not self.chunks:
            return empty_records(0)
        parts = [self._decode(c) for c in self.chunks]
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def read_time_slice(self, t0: int, t1: int) -> LogRecordArray:
        """Records whose activity interval ``[start, stop)`` intersects
        ``[t0, t1)``, using the index to skip non-overlapping chunks."""
        if t1 <= t0:
            raise ValueError(f"empty time slice [{t0}, {t1})")
        parts = []
        for chunk in self.chunks:
            if not chunk.overlaps(t0, t1):
                continue
            rec = self._decode(chunk)
            mask = (rec["start"] < t1) & (rec["stop"] > t0)
            if mask.any():
                parts.append(rec[mask])
        if not parts:
            return empty_records(0)
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def chunks_overlapping(self, t0: int, t1: int) -> int:
        """How many chunks the index keeps for a window (observability for
        the chunk-pruning benchmark)."""
        return sum(1 for c in self.chunks if c.overlaps(t0, t1))

    def slice_descriptor(self, t0: int, t1: int) -> SliceDescriptor:
        """Describe the window's byte locations instead of reading them."""
        if t1 <= t0:
            raise ValueError(f"empty time slice [{t0}, {t1})")
        overlapping = [c for c in self.chunks if c.overlaps(t0, t1)]
        return SliceDescriptor(
            path=str(self.path),
            t0=int(t0),
            t1=int(t1),
            chunk_offsets=tuple(c.offset for c in overlapping),
            n_records=sum(c.n_records for c in overlapping),
        )

    # -- integrity ----------------------------------------------------------------

    def check_crc(self, t0: int | None = None, t1: int | None = None) -> int:
        """CRC-verify chunk framing without decoding payloads.

        With a window, only chunks overlapping ``[t0, t1)`` are checked
        (the chunks a strict sliced read would decode); without one, the
        whole file.  Returns the number of chunks checked; raises on the
        first damaged chunk.  This is the root-side integrity gate of
        zero-copy dispatch — same failure classes as :meth:`verify`, at a
        fraction of the cost.
        """
        checked = 0
        for chunk in self.chunks:
            if t0 is not None and t1 is not None and not chunk.overlaps(t0, t1):
                continue
            n, _next = check_chunk_at(self._buf, chunk.offset)
            if n != chunk.n_records:
                raise LogFormatError(
                    f"{self.path}: chunk at {chunk.offset} holds {n} records, "
                    f"index says {chunk.n_records}"
                )
            checked += 1
        return checked

    def verify(self) -> int:
        """Decode every chunk, checking framing and CRCs end to end.

        Returns the verified record count.  Raises
        :class:`~repro.errors.LogCorruptError` /
        :class:`~repro.errors.LogTruncatedError` on the first damaged
        chunk — the check the quarantine scan runs before trusting a file
        of unknown provenance.
        """
        total = 0
        for chunk in self.chunks:
            total += len(self._decode(chunk))
        return total
