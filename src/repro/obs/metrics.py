"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the cumulative side of the telemetry layer (spans in
:mod:`repro.obs.trace` are the per-request side).  Everything here is
dependency-free and cheap enough to stay on by default:

* metric objects are created once (``registry.counter(name)`` returns
  the same object for the same name) and held by the instrumented code,
  so the hot path is one ``inc()``/``observe()`` call;
* each metric carries its own small ``threading.Lock`` — recording never
  contends on a registry-wide lock, and never allocates beyond the
  bookkeeping ints;
* ``snapshot()`` takes each metric's lock in turn, so a reader never
  observes a half-applied update (a histogram whose ``count`` moved but
  whose bucket did not, say).

Histograms use fixed upper bounds with *less-or-equal* semantics: an
observation lands in the first bucket whose bound is ``>= value``; a
value above the last bound lands in the implicit overflow bucket.  That
makes bucket counts cumulative-friendly and keeps ``observe`` at a
single bisect plus five int updates.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "LATENCY_BUCKETS",
]

# Default histogram bounds (seconds): 100us .. ~2min, roughly 3x apart.
# Wide enough for both kernel stages and end-to-end service requests.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.0003,
    0.001,
    0.003,
    0.01,
    0.03,
    0.1,
    0.3,
    1.0,
    3.0,
    10.0,
    30.0,
    120.0,
)


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int | float = 1) -> None:
        with self._lock:
            self.value += n

    def get(self) -> int | float:
        with self._lock:
            return self.value


class Gauge:
    """Last-write-wins instantaneous value (also supports add/sub)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, v: float) -> None:
        with self._lock:
            self.value = v

    def add(self, n: float = 1) -> None:
        with self._lock:
            self.value += n

    def get(self) -> float:
        with self._lock:
            return self.value


class Histogram:
    """Fixed-bucket histogram with le-semantics buckets.

    ``bounds`` are the finite upper edges; ``counts`` has one extra slot
    for the overflow bucket (> last bound).  A value exactly equal to an
    edge is counted in that edge's bucket; anything below the first edge
    lands in bucket 0 (there is no separate underflow bucket — the first
    bound is the floor of interest).
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, v: float) -> None:
        i = bisect_left(self.bounds, v)
        with self._lock:
            self.counts[i] += 1
            self.count += 1
            self.sum += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket edges (upper edge of the
        bucket holding the q-th observation; overflow reports ``max``)."""
        with self._lock:
            total = self.count
            if total == 0:
                return 0.0
            rank = max(1, math.ceil(q * total))
            seen = 0
            for i, c in enumerate(self.counts):
                seen += c
                if seen >= rank:
                    return self.bounds[i] if i < len(self.bounds) else self.max
            return self.max


class MetricsRegistry:
    """Named metric namespace with get-or-create accessors.

    Accessors are safe to call from any thread; the same name always
    maps to the same object, and a name may not change kind.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory):
        m = self._metrics.get(name)
        if m is None:
            with self._lock:
                m = self._metrics.get(name)
                if m is None:
                    m = factory()
                    self._metrics[name] = m
        if not isinstance(m, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(m).__name__}, "
                f"not {kind.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def snapshot(self) -> dict:
        """Consistent point-in-time export of every metric.

        Per-metric consistency is guaranteed (each metric's lock is held
        while it is copied); the registry as a whole is copied in one
        pass without stopping writers.
        """
        with self._lock:
            items = sorted(self._metrics.items())
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, m in items:
            if isinstance(m, Counter):
                out["counters"][name] = m.get()
            elif isinstance(m, Gauge):
                out["gauges"][name] = m.get()
            else:
                with m._lock:
                    out["histograms"][name] = {
                        "bounds": list(m.bounds),
                        "counts": list(m.counts),
                        "count": m.count,
                        "sum": m.sum,
                        "min": None if m.count == 0 else m.min,
                        "max": None if m.count == 0 else m.max,
                    }
        return out

    @staticmethod
    def delta(before: dict, after: dict) -> dict:
        """Difference of two ``snapshot()`` exports (after - before).

        Counters and histogram counts subtract; gauges report the later
        value (an instantaneous reading has no meaningful difference);
        min/max come from the later snapshot.  Metrics absent from
        ``before`` are treated as zero.
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, v in after.get("counters", {}).items():
            out["counters"][name] = v - before.get("counters", {}).get(name, 0)
        out["gauges"] = dict(after.get("gauges", {}))
        for name, h in after.get("histograms", {}).items():
            prev = before.get("histograms", {}).get(name)
            if prev is None or prev.get("bounds") != h.get("bounds"):
                out["histograms"][name] = dict(h)
                continue
            out["histograms"][name] = {
                "bounds": list(h["bounds"]),
                "counts": [a - b for a, b in zip(h["counts"], prev["counts"])],
                "count": h["count"] - prev["count"],
                "sum": h["sum"] - prev["sum"],
                "min": h["min"],
                "max": h["max"],
            }
        return out

    def reset(self) -> None:
        """Drop every metric (test/benchmark isolation helper)."""
        with self._lock:
            self._metrics.clear()


_default = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry components attach to by default."""
    return _default


def set_default_registry(reg: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default
    prev = _default
    _default = reg
    return prev
