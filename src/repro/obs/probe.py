"""Profiling hooks: the Probe callback interface.

A :class:`Probe` is the single seam instrumented code calls into when
something measurable happens — a kernel stage finished, a tile hit or
missed the cache, a pool shipped bytes to a worker.  The default probe
(:class:`RegistryProbe`) folds every event into the process-wide
metrics registry; a custom probe (e.g. the one behind ``repro
synthesize --profile``) can additionally accumulate a structured
profile for export.

Instrumentation sites call ``get_probe()`` per event rather than
caching the probe, so a profile run can swap probes without re-wiring
the pipeline.  When telemetry is disabled the null probe is returned
and every event is a single attribute lookup plus a no-op call.
"""

from __future__ import annotations

import threading

from ._switch import enabled
from .metrics import MetricsRegistry, default_registry

__all__ = [
    "Probe",
    "NullProbe",
    "RegistryProbe",
    "CollectingProbe",
    "get_probe",
    "set_probe",
    "push_probe",
    "record_kernel_timings",
]


class Probe:
    """Callback interface for profiling events.  Subclass and override
    what you care about; every hook defaults to a no-op."""

    def stage(self, name: str, seconds: float) -> None:
        """A coarse timed stage finished; ``name`` arrives scoped, e.g.
        ``synthesis.slice`` or ``cache.compose``."""

    def kernel_stage(self, stage: str, seconds: float) -> None:
        """A kernel stage (pack_build/spgemm/accumulate) accumulated
        ``seconds`` of work (summed across one task's places)."""

    def cache_event(self, event: str, n: int = 1) -> None:
        """A tile-cache event: tile_hit, fringe_hit, disk_hit, miss,
        built, merged, evicted, invalidated, quarantined, query."""

    def pool_bytes(self, n: int) -> None:
        """A worker pool shipped ``n`` pickled bytes to/from workers."""

    def count(self, name: str, n: int = 1) -> None:
        """Generic named event counter."""

    def observe(self, name: str, value: float) -> None:
        """Generic named distribution observation (seconds, sizes...)."""


class NullProbe(Probe):
    """Probe that drops every event (telemetry off)."""

    __slots__ = ()


NULL_PROBE = NullProbe()


class RegistryProbe(Probe):
    """Default probe: every event becomes registry metrics.

    Seconds-valued events land both in a cumulative counter (cheap to
    ratio between snapshots) and a histogram (distribution shape).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else default_registry()

    def stage(self, name: str, seconds: float) -> None:
        self.registry.counter(f"stage.{name}.seconds").inc(seconds)
        self.registry.counter(f"stage.{name}.calls").inc()

    def kernel_stage(self, stage: str, seconds: float) -> None:
        self.registry.counter(f"kernel.{stage}.seconds").inc(seconds)
        self.registry.counter(f"kernel.{stage}.tasks").inc()
        self.registry.histogram(f"kernel.{stage}.task_seconds").observe(seconds)

    def cache_event(self, event: str, n: int = 1) -> None:
        self.registry.counter(f"cache.{event}").inc(n)

    def pool_bytes(self, n: int) -> None:
        self.registry.counter("pool.bytes_shipped").inc(n)

    def count(self, name: str, n: int = 1) -> None:
        self.registry.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        self.registry.histogram(name).observe(value)


class CollectingProbe(Probe):
    """Accumulates every event into plain dicts — the structured profile
    behind ``repro synthesize --profile``.  Events are additionally
    forwarded to a :class:`RegistryProbe` so a profile run still feeds
    the process registry.  :meth:`to_dict` is the JSON artifact."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._lock = threading.Lock()
        self._registry_probe = RegistryProbe(registry)
        self.stages: dict[str, dict] = {}
        self.kernel: dict[str, dict] = {}
        self.cache: dict[str, int] = {}
        self.counters: dict[str, float] = {}

    def stage(self, name: str, seconds: float) -> None:
        with self._lock:
            e = self.stages.setdefault(name, {"seconds": 0.0, "calls": 0})
            e["seconds"] += seconds
            e["calls"] += 1
        self._registry_probe.stage(name, seconds)

    def kernel_stage(self, stage: str, seconds: float) -> None:
        with self._lock:
            e = self.kernel.setdefault(stage, {"seconds": 0.0, "tasks": 0})
            e["seconds"] += seconds
            e["tasks"] += 1
        self._registry_probe.kernel_stage(stage, seconds)

    def cache_event(self, event: str, n: int = 1) -> None:
        with self._lock:
            self.cache[event] = self.cache.get(event, 0) + n
        self._registry_probe.cache_event(event, n)

    def pool_bytes(self, n: int) -> None:
        self.count("pool.bytes_shipped", n)

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n
        self._registry_probe.count(name, n)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.counters[f"{name}.sum"] = (
                self.counters.get(f"{name}.sum", 0.0) + value
            )
            self.counters[f"{name}.count"] = (
                self.counters.get(f"{name}.count", 0) + 1
            )
        self._registry_probe.observe(name, value)

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "stages": {k: dict(v) for k, v in self.stages.items()},
                "kernel": {k: dict(v) for k, v in self.kernel.items()},
                "cache": dict(self.cache),
                "counters": dict(self.counters),
            }


_lock = threading.Lock()
_probe: Probe = RegistryProbe()


def get_probe() -> Probe:
    """The active probe, or the null probe while telemetry is off."""
    return _probe if enabled() else NULL_PROBE


def set_probe(probe: Probe | None) -> Probe:
    """Install ``probe`` (None restores the registry default); returns
    the previously active probe."""
    global _probe
    with _lock:
        prev = _probe
        _probe = probe if probe is not None else RegistryProbe()
    return prev


class push_probe:
    """Context manager: install a probe for the duration of a block
    (used by ``--profile`` runs), restoring the previous one after."""

    def __init__(self, probe: Probe) -> None:
        self.probe = probe
        self._prev: Probe | None = None

    def __enter__(self) -> Probe:
        self._prev = set_probe(self.probe)
        return self.probe

    def __exit__(self, exc_type, exc, tb) -> None:
        set_probe(self._prev)


def record_kernel_timings(times: dict | None) -> None:
    """Emit one task's kernel stage timings through the active probe.

    Call exactly once per completed task result (not on batch→total
    merges — that would double-count).
    """
    if not times or not enabled():
        return
    probe = _probe
    for stage, secs in times.items():
        probe.kernel_stage(stage, secs)
