"""Exporters: JSONL span/metric streams and human-readable renderings.

The JSONL forms are the durable artifacts (`repro serve --trace-log`,
``--profile`` JSON profiles, metric snapshots); the render functions
back the ``repro trace`` and ``repro metrics`` CLI commands.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

__all__ = [
    "JsonlSpanSink",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "write_metrics_json",
    "render_trace",
    "render_traces",
    "render_metrics",
]


class JsonlSpanSink:
    """Collector sink appending one JSON object per finished span.

    Thread-safe (spans finish on the event loop, executor threads, and
    absorbed worker batches); line-buffered appends so a killed process
    loses at most the span being written — the chaos soak's "no dropped
    spans" bar is about completed requests, and their spans are flushed
    by the time the response frame goes out.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8", buffering=1)

    def __call__(self, span_dict: dict) -> None:
        line = json.dumps(span_dict, separators=(",", ":"), default=str)
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


def write_spans_jsonl(path: str | Path, spans: list[dict]) -> None:
    """Write spans as one JSON object per line (the ``repro trace`` form)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with open(p, "w", encoding="utf-8") as fh:
        for s in spans:
            fh.write(json.dumps(s, separators=(",", ":"), default=str) + "\n")


def read_spans_jsonl(path: str | Path) -> list[dict]:
    """Load spans, skipping unparseable lines (a truncated tail from a
    killed writer must not make the whole trace log unreadable)."""
    out: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(d, dict) and d.get("trace_id"):
                out.append(d)
    return out


def write_metrics_json(path: str | Path, snapshot: dict) -> None:
    """Write a registry snapshot as stable, indented JSON."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")


# --------------------------------------------------------------------------
# rendering


def _fmt_secs(s: float) -> str:
    if s >= 1.0:
        return f"{s:.2f}s"
    if s >= 0.001:
        return f"{s * 1e3:.1f}ms"
    return f"{s * 1e6:.0f}us"


def _fmt_attrs(attrs: dict | None) -> str:
    if not attrs:
        return ""
    parts = []
    for k in sorted(attrs):
        v = attrs[k]
        if isinstance(v, float):
            v = f"{v:.4g}"
        parts.append(f"{k}={v}")
    return "  " + " ".join(parts)


def render_trace(spans: list[dict], trace_id: str) -> str:
    """Render one trace as an indented tree, children by start time.

    Spans whose parent is missing (e.g. the client half of a service
    trace when only the server log is available) render as extra roots
    of the same tree rather than being dropped.
    """
    mine = [s for s in spans if s.get("trace_id") == trace_id]
    if not mine:
        return f"trace {trace_id}: no spans"
    by_id = {s["span_id"]: s for s in mine}
    children: dict[str | None, list[dict]] = {}
    roots: list[dict] = []
    for s in mine:
        parent = s.get("parent_id")
        if parent is None or parent not in by_id:
            roots.append(s)
        else:
            children.setdefault(parent, []).append(s)
    roots.sort(key=lambda s: s.get("start", 0.0))
    total = sum(s.get("duration", 0.0) for s in roots)
    lines = [f"trace {trace_id}  ({len(mine)} spans, {_fmt_secs(total)})"]

    def walk(span: dict, prefix: str, is_last: bool) -> None:
        branch = "`-" if is_last else "|-"
        status = span.get("status", "ok")
        flag = "" if status == "ok" else f" [{status}]"
        lines.append(
            f"{prefix}{branch} {span.get('name', '?')} "
            f"{_fmt_secs(span.get('duration', 0.0))}{flag}"
            f"{_fmt_attrs(span.get('attrs'))}"
        )
        kids = sorted(
            children.get(span["span_id"], []), key=lambda s: s.get("start", 0.0)
        )
        child_prefix = prefix + ("   " if is_last else "|  ")
        for i, kid in enumerate(kids):
            walk(kid, child_prefix, i == len(kids) - 1)

    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1)
    return "\n".join(lines)


def render_traces(
    spans: list[dict], trace_id: str | None = None, last: int | None = None
) -> str:
    """Render one trace, or the ``last`` most recently started ones."""
    if trace_id is not None:
        return render_trace(spans, trace_id)
    order: list[str] = []
    first_start: dict[str, float] = {}
    for s in spans:
        tid = s.get("trace_id")
        if tid not in first_start:
            first_start[tid] = s.get("start", 0.0)
            order.append(tid)
    order.sort(key=lambda t: first_start[t])
    if last is not None:
        order = order[-last:]
    return "\n\n".join(render_trace(spans, tid) for tid in order)


def render_metrics(snapshot: dict) -> str:
    """Human-readable registry snapshot (the ``repro metrics`` view)."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            v = counters[name]
            if isinstance(v, float):
                v = f"{v:.6g}"
            lines.append(f"  {name:<{width}}  {v}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            v = gauges[name]
            if isinstance(v, float):
                v = f"{v:.6g}"
            lines.append(f"  {name:<{width}}  {v}")
    hists = snapshot.get("histograms", {})
    if hists:
        lines.append("histograms:")
        for name in sorted(hists):
            h = hists[name]
            count = h.get("count", 0)
            if count == 0:
                lines.append(f"  {name}  (empty)")
                continue
            mean = h.get("sum", 0.0) / count
            lines.append(
                f"  {name}  count={count} mean={_fmt_secs(mean)}"
                f" min={_fmt_secs(h['min'])} max={_fmt_secs(h['max'])}"
                f" p50={_fmt_secs(_bucket_quantile(h, 0.5))}"
                f" p99={_fmt_secs(_bucket_quantile(h, 0.99))}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def _bucket_quantile(h: dict, q: float) -> float:
    total = h.get("count", 0)
    if total <= 0:
        return 0.0
    rank = max(1, -(-int(q * total * 1_000_000) // 1_000_000))  # ceil without float drift
    rank = max(1, min(total, rank))
    seen = 0
    bounds = h.get("bounds", [])
    for i, c in enumerate(h.get("counts", [])):
        seen += c
        if seen >= rank:
            return bounds[i] if i < len(bounds) else h.get("max", 0.0)
    return h.get("max", 0.0)
