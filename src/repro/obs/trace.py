"""Structured tracing: spans, trace contexts, and the span collector.

A :class:`Span` is one timed operation with a name, attributes, and a
status; spans nest through a :class:`TraceContext` (trace id + span id)
so a whole request renders as one tree.  Three propagation paths are
supported, matching how work actually moves in this codebase:

* **same task / thread** — ``start_span`` parents to the current
  context, tracked in a :class:`contextvars.ContextVar` (asyncio tasks
  each get their own copy, nested ``with`` blocks nest naturally);
* **executor / worker threads** — capture ``current_context()`` where
  the work is scheduled and wrap the thread body in
  ``use_context(ctx)``;
* **process-pool workers** — ship ``ctx.to_wire()`` inside the task
  arguments, run the worker body under ``capture_spans()``, and return
  the captured span dicts with the payload; the coordinator feeds them
  to ``collector.absorb()``.  The same wire form rides in service
  request frames (``header["trace"]``).

Finished spans land in the process-wide :class:`SpanCollector` — a
bounded ring buffer plus optional sinks (e.g. a JSONL file) — unless a
``capture_spans()`` block on the current thread claims them first.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator, NamedTuple

from ._switch import enabled

__all__ = [
    "TraceContext",
    "Span",
    "SpanCollector",
    "start_span",
    "current_context",
    "use_context",
    "capture_spans",
    "get_collector",
    "new_trace_id",
]


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return os.urandom(8).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


class TraceContext(NamedTuple):
    """Serializable (trace id, span id) pair — the parent link a child
    span needs, in a form that pickles into task args and JSON-encodes
    into frame headers."""

    trace_id: str
    span_id: str

    def to_wire(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, d: object) -> "TraceContext | None":
        if not isinstance(d, dict):
            return None
        tid = d.get("trace_id")
        sid = d.get("span_id")
        if not isinstance(tid, str) or not isinstance(sid, str):
            return None
        if not tid or not sid or len(tid) > 64 or len(sid) > 64:
            return None
        return cls(tid, sid)


_current: ContextVar[TraceContext | None] = ContextVar("repro_trace_ctx", default=None)


def current_context() -> TraceContext | None:
    """The trace context active on this task/thread, if any."""
    return _current.get()


@contextmanager
def use_context(ctx: TraceContext | None) -> Iterator[None]:
    """Install ``ctx`` as the current trace context (e.g. at the top of
    an executor-thread body, carrying the scheduling site's context)."""
    token = _current.set(ctx)
    try:
        yield
    finally:
        _current.reset(token)


class Span:
    """One timed operation.  Use as a context manager (the common case)
    or call :meth:`end` explicitly."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "status",
        "start",
        "duration",
        "_t0",
        "_token",
        "_ended",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None,
        attrs: dict | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.attrs = dict(attrs) if attrs else {}
        self.status = "ok"
        self.start = time.time()
        self.duration = 0.0
        self._t0 = time.perf_counter_ns()
        self._token = None
        self._ended = False

    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def set_status(self, status: str) -> None:
        self.status = status

    def end(self) -> None:
        if self._ended:
            return
        self._ended = True
        self.duration = (time.perf_counter_ns() - self._t0) / 1e9
        _deposit(self.to_dict())

    def to_dict(self) -> dict:
        d = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
        }
        if self.attrs:
            d["attrs"] = self.attrs
        return d

    def __enter__(self) -> "Span":
        self._token = _current.set(self.context())
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        if exc_type is not None and self.status == "ok":
            self.status = f"error:{exc_type.__name__}"
        self.end()


class _NoopSpan:
    """Shared do-nothing span returned while telemetry is off."""

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    status = "ok"
    duration = 0.0
    attrs: dict = {}

    def context(self) -> None:  # no context: children stay no-op too
        return None

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def set_status(self, status: str) -> None:
        pass

    def end(self) -> None:
        pass

    def to_dict(self) -> dict:
        return {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()

_UNSET = object()


def start_span(
    name: str,
    parent: TraceContext | None | object = _UNSET,
    attrs: dict | None = None,
):
    """Create a span parented to ``parent`` (default: current context).

    ``parent=None`` forces a new root trace.  Returns the shared no-op
    span when telemetry is disabled, so instrumentation sites need no
    guard of their own.
    """
    if not enabled():
        return NOOP_SPAN
    if parent is _UNSET:
        parent = _current.get()
    if parent is None:
        return Span(name, new_trace_id(), None, attrs)
    return Span(name, parent.trace_id, parent.span_id, attrs)


# --------------------------------------------------------------------------
# collection

_tls = threading.local()


def _deposit(span_dict: dict) -> None:
    stack = getattr(_tls, "capture", None)
    if stack:
        stack[-1].append(span_dict)
    else:
        _collector.add(span_dict)


@contextmanager
def capture_spans() -> Iterator[list[dict]]:
    """Divert spans finished on this thread into a local list instead of
    the global collector — the worker half of process-pool propagation.
    The task returns the list; the coordinator ``absorb()``s it."""
    buf: list[dict] = []
    stack = getattr(_tls, "capture", None)
    if stack is None:
        stack = _tls.capture = []
    stack.append(buf)
    try:
        yield buf
    finally:
        stack.pop()


class SpanCollector:
    """Bounded in-memory ring of finished spans, plus optional sinks.

    Sinks (callables taking one span dict) fire for locally finished
    spans *and* absorbed worker spans, so a JSONL sink sees the whole
    tree regardless of which process ran each piece.
    """

    def __init__(self, max_spans: int = 8192) -> None:
        self.max_spans = int(max_spans)
        self._lock = threading.Lock()
        self._spans: list[dict] = []
        self._dropped = 0
        self._sinks: list[Callable[[dict], None]] = []

    def add(self, span_dict: dict) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                # drop oldest: the ring favours recent traces
                del self._spans[: max(1, self.max_spans // 8)]
                self._dropped += 1
            self._spans.append(span_dict)
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink(span_dict)
            except Exception:
                pass  # a broken sink must never take down the workload

    def absorb(self, span_dicts: list[dict] | None) -> None:
        """Fold spans captured elsewhere (pool workers) into this
        collector, preserving their ids so parent links stay intact."""
        if not span_dicts:
            return
        for d in span_dicts:
            if isinstance(d, dict) and d.get("trace_id"):
                self.add(d)

    def spans(self, trace_id: str | None = None) -> list[dict]:
        with self._lock:
            if trace_id is None:
                return list(self._spans)
            return [s for s in self._spans if s.get("trace_id") == trace_id]

    def drain(self) -> list[dict]:
        with self._lock:
            out = self._spans
            self._spans = []
            return out

    def add_sink(self, sink: Callable[[dict], None]) -> None:
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[dict], None]) -> None:
        with self._lock:
            try:
                self._sinks.remove(sink)
            except ValueError:
                pass


_collector = SpanCollector()


def get_collector() -> SpanCollector:
    """The process-wide collector finished spans land in."""
    return _collector
