"""Unified telemetry: metrics registry, structured tracing, profiling hooks.

Zero-dependency observability for the synthesis pipeline, the tile
cache, and the query service.  Three coordinated pieces:

* :mod:`repro.obs.metrics` — named counters/gauges/fixed-bucket
  histograms in a process-wide registry, exported by the service
  ``metrics`` op and the ``repro metrics`` CLI;
* :mod:`repro.obs.trace` — spans with trace/span ids that propagate
  through asyncio tasks, executor threads, process-pool workers (via
  the descriptor path), and service request frames, rendered by
  ``repro trace``;
* :mod:`repro.obs.probe` — the Probe callback seam profiling events
  flow through (kernel stage timings, cache hits/evictions, pool
  bytes), feeding the registry by default and ``--profile`` artifacts
  on demand.

Recording stays on by default; ``REPRO_TELEMETRY=0`` or
``configure(False)`` disables it, and ``benchmarks/
bench_telemetry_overhead.py`` holds the enabled-vs-bare cost under 3%.
"""

from ._switch import configure, enabled
from .export import (
    JsonlSpanSink,
    read_spans_jsonl,
    render_metrics,
    render_trace,
    render_traces,
    write_metrics_json,
    write_spans_jsonl,
)
from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from .probe import (
    CollectingProbe,
    NullProbe,
    Probe,
    RegistryProbe,
    get_probe,
    push_probe,
    record_kernel_timings,
    set_probe,
)
from .trace import (
    Span,
    SpanCollector,
    TraceContext,
    capture_spans,
    current_context,
    get_collector,
    new_trace_id,
    start_span,
    use_context,
)

__all__ = [
    "configure",
    "enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "default_registry",
    "set_default_registry",
    "Probe",
    "NullProbe",
    "RegistryProbe",
    "CollectingProbe",
    "get_probe",
    "set_probe",
    "push_probe",
    "record_kernel_timings",
    "Span",
    "SpanCollector",
    "TraceContext",
    "start_span",
    "current_context",
    "use_context",
    "capture_spans",
    "get_collector",
    "new_trace_id",
    "JsonlSpanSink",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "write_metrics_json",
    "render_trace",
    "render_traces",
    "render_metrics",
]
